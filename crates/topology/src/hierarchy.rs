//! Bottom-up hierarchical grouping of ranks (§3.2.1 of the paper).
//!
//! Processes are grouped by the hardware level they share: ranks on one
//! socket form a *socket group*; the socket leaders on one node form a
//! *node group*; the node leaders form the single *cluster group*. A
//! leader belongs to its own group **and** to the group one level up —
//! it is the process that "glues" the levels together (P4 in the paper's
//! Figure 5).

use crate::placement::Placement;
use crate::spec::Rank;

/// One group of ranks that share a hardware domain and communicate over a
/// homogeneous lane.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// Members, sorted ascending. The first member is the leader.
    pub ranks: Vec<Rank>,
    /// Which level of the hierarchy the group belongs to.
    pub level: LevelKind,
}

impl Group {
    /// The group leader (lowest rank; deterministic).
    pub fn leader(&self) -> Rank {
        self.ranks[0]
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the group has a single member (degenerate).
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }
}

/// The hardware level a group's lane corresponds with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LevelKind {
    /// Ranks sharing a socket (shared-memory lane).
    Socket,
    /// Socket leaders sharing a node (inter-socket lane).
    Node,
    /// Node leaders across the cluster (inter-node lane).
    Cluster,
}

/// The full multi-level grouping of a job.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// Socket-level groups (one per occupied socket), cluster order.
    pub socket_groups: Vec<Group>,
    /// Node-level groups of socket leaders (one per occupied node).
    pub node_groups: Vec<Group>,
    /// The cluster-level group of node leaders.
    pub cluster_group: Group,
}

impl Hierarchy {
    /// Build the grouping bottom-up from a placement, with `root` elected
    /// leader of every group it belongs to (so a tree rooted anywhere can
    /// still glue the levels through its leaders).
    pub fn build_rooted(placement: &Placement, root: Rank) -> Hierarchy {
        let mut h = Hierarchy::build(placement);
        if root == h.cluster_group.leader() {
            return h;
        }
        // Original leaders along root's path up the hierarchy.
        let s0 = h
            .socket_group_of(root)
            .expect("root placed on a socket")
            .leader();
        let node = placement.location(root).node;
        let n0 = h
            .node_groups
            .iter()
            .find(|g| placement.location(g.leader()).node == node)
            .expect("root's node has a group")
            .leader();

        // Move `root` to the front of `ranks`, first substituting
        // `replace` by `root` if root is not already a member.
        let install = |ranks: &mut Vec<Rank>, replace: Rank, root: Rank| {
            if !ranks.contains(&root) {
                let pos = ranks
                    .iter()
                    .position(|&x| x == replace)
                    .expect("displaced leader listed");
                ranks[pos] = root;
            }
            ranks.retain(|&x| x != root);
            let mut rest = std::mem::take(ranks);
            rest.sort_unstable();
            ranks.push(root);
            ranks.append(&mut rest);
        };

        for g in &mut h.socket_groups {
            if g.ranks.contains(&root) {
                install(&mut g.ranks, root, root);
            }
        }
        for g in &mut h.node_groups {
            if placement.location(g.leader()).node == node {
                install(&mut g.ranks, s0, root);
            }
        }
        install(&mut h.cluster_group.ranks, n0, root);
        h
    }

    /// Build the grouping bottom-up from a placement.
    pub fn build(placement: &Placement) -> Hierarchy {
        let shape = *placement.shape();
        // Socket groups: bucket ranks by global socket.
        let mut sockets: Vec<(u32, Vec<Rank>)> = Vec::new();
        for (rank, loc) in placement.iter() {
            let gs = loc.global_socket(&shape);
            match sockets.iter_mut().find(|(s, _)| *s == gs) {
                Some((_, v)) => v.push(rank),
                None => sockets.push((gs, vec![rank])),
            }
        }
        sockets.sort_by_key(|(s, _)| *s);
        let socket_groups: Vec<Group> = sockets
            .into_iter()
            .map(|(_, mut ranks)| {
                ranks.sort_unstable();
                Group {
                    ranks,
                    level: LevelKind::Socket,
                }
            })
            .collect();

        // Node groups: bucket socket leaders by node.
        let mut nodes: Vec<(u32, Vec<Rank>)> = Vec::new();
        for g in &socket_groups {
            let leader = g.leader();
            let node = placement.location(leader).node;
            match nodes.iter_mut().find(|(n, _)| *n == node) {
                Some((_, v)) => v.push(leader),
                None => nodes.push((node, vec![leader])),
            }
        }
        nodes.sort_by_key(|(n, _)| *n);
        let node_groups: Vec<Group> = nodes
            .into_iter()
            .map(|(_, mut ranks)| {
                ranks.sort_unstable();
                Group {
                    ranks,
                    level: LevelKind::Node,
                }
            })
            .collect();

        // Cluster group: node leaders.
        let mut leaders: Vec<Rank> = node_groups.iter().map(|g| g.leader()).collect();
        leaders.sort_unstable();
        let cluster_group = Group {
            ranks: leaders,
            level: LevelKind::Cluster,
        };

        Hierarchy {
            socket_groups,
            node_groups,
            cluster_group,
        }
    }

    /// All groups, top level first (cluster, then node, then socket groups) —
    /// the order a one-to-all operation flows through them.
    pub fn top_down(&self) -> Vec<&Group> {
        let mut out: Vec<&Group> = vec![&self.cluster_group];
        out.extend(self.node_groups.iter());
        out.extend(self.socket_groups.iter());
        out
    }

    /// The socket group containing `rank`, if any.
    pub fn socket_group_of(&self, rank: Rank) -> Option<&Group> {
        self.socket_groups.iter().find(|g| g.ranks.contains(&rank))
    }

    /// True if `rank` leads its socket group.
    pub fn is_socket_leader(&self, rank: Rank) -> bool {
        self.socket_groups.iter().any(|g| g.leader() == rank)
    }

    /// True if `rank` leads its node (i.e. leads the node group of socket
    /// leaders).
    pub fn is_node_leader(&self, rank: Rank) -> bool {
        self.node_groups.iter().any(|g| g.leader() == rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterShape;

    fn paper_shape() -> ClusterShape {
        // Figure 5: 4 cores per socket, 2 sockets per node, 3 nodes, 24 ranks.
        ClusterShape {
            nodes: 3,
            sockets_per_node: 2,
            cores_per_socket: 4,
            gpus_per_socket: 0,
        }
    }

    #[test]
    fn figure5_grouping() {
        let p = Placement::block_cpu(paper_shape(), 24);
        let h = Hierarchy::build(&p);
        assert_eq!(h.socket_groups.len(), 6);
        assert_eq!(h.socket_groups[1].ranks, vec![4, 5, 6, 7]);
        assert_eq!(h.node_groups.len(), 3);
        // Node 0's socket leaders are 0 and 4; P4 glues socket 1 to node 0.
        assert_eq!(h.node_groups[0].ranks, vec![0, 4]);
        assert_eq!(h.cluster_group.ranks, vec![0, 8, 16]);
    }

    #[test]
    fn leaders() {
        let p = Placement::block_cpu(paper_shape(), 24);
        let h = Hierarchy::build(&p);
        assert!(h.is_socket_leader(0));
        assert!(h.is_socket_leader(4));
        assert!(!h.is_socket_leader(5));
        assert!(h.is_node_leader(0));
        assert!(h.is_node_leader(8));
        assert!(!h.is_node_leader(4));
    }

    #[test]
    fn partial_job_grouping() {
        // 10 ranks only: socket 0 (0-3), socket 1 (4-7), node 1 socket 0 (8,9).
        let p = Placement::block_cpu(paper_shape(), 10);
        let h = Hierarchy::build(&p);
        assert_eq!(h.socket_groups.len(), 3);
        assert_eq!(h.socket_groups[2].ranks, vec![8, 9]);
        assert_eq!(h.cluster_group.ranks, vec![0, 8]);
    }

    #[test]
    fn top_down_order() {
        let p = Placement::block_cpu(paper_shape(), 24);
        let h = Hierarchy::build(&p);
        let groups = h.top_down();
        assert_eq!(groups[0].level, LevelKind::Cluster);
        assert_eq!(groups[1].level, LevelKind::Node);
        assert_eq!(groups.last().unwrap().level, LevelKind::Socket);
        assert_eq!(groups.len(), 1 + 3 + 6);
    }

    #[test]
    fn rooted_hierarchy_promotes_root_to_every_level() {
        let p = Placement::block_cpu(paper_shape(), 24);
        // Root 13 lives on node 1, socket 1 (ranks 12-15).
        let h = Hierarchy::build_rooted(&p, 13);
        assert_eq!(h.cluster_group.leader(), 13);
        assert!(h.is_node_leader(13));
        assert!(h.is_socket_leader(13));
        // Its socket group keeps all members, root first.
        let sg = h.socket_group_of(13).unwrap();
        assert_eq!(sg.ranks[0], 13);
        let mut sorted = sg.ranks.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![12, 13, 14, 15]);
        // Node 1's group now glues through 13 instead of 12.
        let ng = h
            .node_groups
            .iter()
            .find(|g| g.ranks.contains(&13))
            .unwrap();
        assert_eq!(ng.leader(), 13);
        assert!(ng.ranks.contains(&8));
        assert!(!ng.ranks.contains(&12));
        // Cluster group: 13 replaced node 1's old leader 8? No — 8 leads
        // socket (8..11); 13 displaced 8 as *node* leader, so the cluster
        // group lists 13 for node 1.
        assert!(h.cluster_group.ranks.contains(&13));
        assert!(!h.cluster_group.ranks.contains(&8));
        assert!(h.cluster_group.ranks.contains(&0));
        assert!(h.cluster_group.ranks.contains(&16));
    }

    #[test]
    fn rooted_hierarchy_with_leader_root_is_unchanged() {
        let p = Placement::block_cpu(paper_shape(), 24);
        let a = Hierarchy::build(&p);
        let b = Hierarchy::build_rooted(&p, 0);
        assert_eq!(a.cluster_group, b.cluster_group);
        assert_eq!(a.socket_groups, b.socket_groups);
    }

    #[test]
    fn rooted_hierarchy_when_root_is_socket_but_not_node_leader() {
        let p = Placement::block_cpu(paper_shape(), 24);
        // Rank 4 leads socket 1 of node 0 but not node 0.
        let h = Hierarchy::build_rooted(&p, 4);
        assert_eq!(h.cluster_group.leader(), 4);
        let ng = h.node_groups.iter().find(|g| g.ranks.contains(&4)).unwrap();
        assert_eq!(ng.leader(), 4);
        assert!(ng.ranks.contains(&0), "old leader 0 stays as socket leader");
    }

    #[test]
    fn socket_group_of_lookup() {
        let p = Placement::block_cpu(paper_shape(), 24);
        let h = Hierarchy::build(&p);
        assert_eq!(h.socket_group_of(6).unwrap().ranks, vec![4, 5, 6, 7]);
        assert!(h.socket_group_of(99).is_none());
    }
}
