//! Human-readable machine descriptions and distance queries — the
//! `lstopo`-style view of a simulated machine.

use crate::placement::{Distance, Placement};
use crate::spec::MachineSpec;

/// A text rendering of the machine: shape, lanes, and software parameters.
pub fn describe_machine(spec: &MachineSpec) -> String {
    let mut out = String::new();
    let s = &spec.shape;
    out.push_str(&format!(
        "Machine \"{}\": {} nodes x {} sockets x {} cores",
        spec.name, s.nodes, s.sockets_per_node, s.cores_per_socket
    ));
    if s.gpus_per_socket > 0 {
        out.push_str(&format!(" x {} GPUs/socket", s.gpus_per_socket));
    }
    out.push('\n');
    let lane = |name: &str, p: &crate::spec::LinkParams| {
        format!(
            "  {:<14} {:>7.2} GB/s, {:>6.2} us\n",
            name,
            p.bandwidth / 1e9,
            p.latency.as_micros_f64()
        )
    };
    out.push_str(&lane("shm (socket)", &spec.shm));
    out.push_str(&lane("core engine", &spec.core));
    out.push_str(&lane("inter-socket", &spec.inter_socket));
    out.push_str(&lane("NIC", &spec.nic));
    if let Some(p) = &spec.pcie {
        out.push_str(&lane("PCIe (dir)", p));
    }
    if let Some(p) = &spec.nvlink {
        out.push_str(&lane("NVLink", p));
    }
    out.push_str(&format!(
        "  eager limit {} KiB, send/recv overhead {:.2}/{:.2} us, cpu-reduce {:.1} GB/s",
        spec.eager_limit >> 10,
        spec.send_overhead.as_micros_f64(),
        spec.recv_overhead.as_micros_f64(),
        spec.cpu_reduce_bandwidth / 1e9,
    ));
    if spec.gpu_reduce_bandwidth > 0.0 {
        out.push_str(&format!(
            ", gpu-reduce {:.0} GB/s",
            spec.gpu_reduce_bandwidth / 1e9
        ));
    }
    out.push('\n');
    out
}

/// The full pairwise distance matrix of a placement (hierarchical
/// distance classes, not latencies).
pub fn distance_matrix(placement: &Placement) -> Vec<Vec<Distance>> {
    let n = placement.len();
    (0..n)
        .map(|a| (0..n).map(|b| placement.distance(a, b)).collect())
        .collect()
}

/// Histogram of pairwise distances: how many ordered rank pairs fall in
/// each class `(intra-socket, inter-socket, inter-node)` — a quick check
/// that a placement exercises every lane.
pub fn distance_histogram(placement: &Placement) -> (u64, u64, u64) {
    let n = placement.len();
    let (mut intra, mut socket, mut node) = (0u64, 0u64, 0u64);
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            match placement.distance(a, b) {
                Distance::IntraSocket => intra += 1,
                Distance::InterSocket => socket += 1,
                Distance::InterNode => node += 1,
                Distance::Self_ => unreachable!(),
            }
        }
    }
    (intra, socket, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::Placement;

    #[test]
    fn describe_mentions_all_lanes() {
        let d = describe_machine(&profiles::cori(4));
        assert!(d.contains("4 nodes x 2 sockets x 16 cores"));
        assert!(d.contains("shm (socket)"));
        assert!(d.contains("NIC"));
        assert!(!d.contains("PCIe"), "cori has no GPUs");
        let g = describe_machine(&profiles::psg(2));
        assert!(g.contains("PCIe"));
        assert!(g.contains("gpu-reduce"));
    }

    #[test]
    fn distance_histogram_counts_pairs() {
        // 2 nodes x 2 sockets x 2 cores = 8 ranks.
        let p = Placement::block_cpu(profiles::minicluster(2, 2, 2).shape, 8);
        let (intra, socket, node) = distance_histogram(&p);
        // Each rank: 1 intra-socket peer, 2 inter-socket, 4 inter-node.
        assert_eq!(intra, 8);
        assert_eq!(socket, 16);
        assert_eq!(node, 32);
        assert_eq!(intra + socket + node, 8 * 7);
    }

    #[test]
    fn distance_matrix_is_symmetric() {
        let p = Placement::block_cpu(profiles::minicluster(2, 2, 3).shape, 12);
        let m = distance_matrix(&p);
        for (a, row) in m.iter().enumerate() {
            for (b, &d) in row.iter().enumerate() {
                assert_eq!(d, m[b][a]);
            }
        }
    }
}
