//! Cluster shape and per-level hardware parameters.

use adapt_sim::time::Duration;

/// Rank identifier within a simulated job (dense, 0-based).
pub type Rank = u32;

/// The regular shape of a simulated cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterShape {
    /// Number of compute nodes.
    pub nodes: u32,
    /// CPU sockets per node.
    pub sockets_per_node: u32,
    /// Cores per socket (each hosting at most one rank in CPU jobs).
    pub cores_per_socket: u32,
    /// GPUs per socket (0 for CPU clusters; GPU jobs bind one rank per GPU).
    pub gpus_per_socket: u32,
}

impl ClusterShape {
    /// Total core count.
    pub fn total_cores(&self) -> u32 {
        self.nodes * self.sockets_per_node * self.cores_per_socket
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.sockets_per_node * self.gpus_per_socket
    }
}

/// Hockney parameters of one communication lane.
///
/// A transfer of `m` bytes over a lane costs `latency + m / bandwidth`
/// when the lane is uncontended; under contention the flow-level network
/// model shares `bandwidth` max-min fairly among concurrent flows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: Duration,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkParams {
    /// Convenience constructor from microseconds and GB/s (decimal).
    pub fn from_us_gbs(latency_us: f64, bandwidth_gbs: f64) -> Self {
        LinkParams {
            latency: Duration::from_secs_f64(latency_us * 1e-6),
            bandwidth: bandwidth_gbs * 1e9,
        }
    }

    /// Uncontended transfer duration for `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// The full description of a simulated machine: shape plus the parameters of
/// every lane class and of the software stack (overheads, protocol limits,
/// reduction throughput).
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Human-readable profile name ("cori", "stampede2", "psg").
    pub name: &'static str,
    /// Shape of the cluster.
    pub shape: ClusterShape,
    /// Intra-socket (shared-memory) aggregate lane, one per socket.
    pub shm: LinkParams,
    /// Per-core copy engine: each core's ingress and egress are separate
    /// lanes of this speed (cores are full duplex), so one rank's send and
    /// receive overlap while the socket aggregate still caps the sum.
    pub core: LinkParams,
    /// Inter-socket lane (QPI / UPI / HyperTransport), one per node.
    pub inter_socket: LinkParams,
    /// Inter-node NIC, one per node and direction (tx and rx modelled as
    /// separate resources, as on real adapters).
    pub nic: LinkParams,
    /// Network backbone (aggregate fabric). Modelled as a very fat shared
    /// link; `None` means a non-blocking fabric.
    pub backbone: Option<LinkParams>,
    /// PCI-Express lane per (node, socket, direction); present on GPU
    /// machines.
    pub pcie: Option<LinkParams>,
    /// NVLink peer lane per socket (same-socket GPU↔GPU traffic bypasses
    /// PCIe when present) — post-paper hardware, used by the NVLink
    /// sensitivity study.
    pub nvlink: Option<LinkParams>,
    /// Sender-side per-message CPU overhead (the `o` of LogP).
    pub send_overhead: Duration,
    /// Receiver-side per-message CPU overhead.
    pub recv_overhead: Duration,
    /// Messages at or below this size use the eager protocol.
    pub eager_limit: u64,
    /// Extra copy bandwidth paid when an eager message arrives before its
    /// receive is posted (unexpected-message buffering), bytes/sec.
    pub unexpected_copy_bandwidth: f64,
    /// Fixed cost of claiming an unexpected message (allocation + matching).
    pub unexpected_overhead: Duration,
    /// CPU reduction throughput, bytes/sec (the reciprocal of Hockney's γ).
    pub cpu_reduce_bandwidth: f64,
    /// GPU reduction throughput, bytes/sec; only meaningful on GPU machines.
    pub gpu_reduce_bandwidth: f64,
}

impl MachineSpec {
    /// Number of ranks a CPU job occupies when fully packed (one per core).
    pub fn cpu_job_size(&self) -> u32 {
        self.shape.total_cores()
    }

    /// Number of ranks a GPU job occupies (one per GPU).
    pub fn gpu_job_size(&self) -> u32 {
        self.shape.total_gpus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_totals() {
        let s = ClusterShape {
            nodes: 4,
            sockets_per_node: 2,
            cores_per_socket: 16,
            gpus_per_socket: 2,
        };
        assert_eq!(s.total_cores(), 128);
        assert_eq!(s.total_gpus(), 16);
    }

    #[test]
    fn link_params_transfer_time() {
        let l = LinkParams::from_us_gbs(1.0, 10.0);
        // 10 MB at 10 GB/s = 1 ms, plus 1 us latency.
        let t = l.transfer_time(10_000_000);
        assert_eq!(t.as_nanos(), 1_000_000 + 1_000);
    }
}
