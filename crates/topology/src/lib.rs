//! # adapt-topology — hardware topology model
//!
//! An hwloc-like description of the simulated machines: cluster shape,
//! per-lane Hockney parameters, rank placement, hierarchical distance
//! classification, and the bottom-up grouping (socket → node → cluster)
//! that the topology-aware communication trees of §3.2 are built from.
//!
//! Profiles for the paper's three evaluation platforms (Cori, Stampede2,
//! and the NVIDIA PSG GPU cluster) live in [`profiles`].

pub mod describe;
pub mod hierarchy;
pub mod placement;
pub mod profiles;
pub mod spec;

pub use describe::{describe_machine, distance_histogram, distance_matrix};
pub use hierarchy::{Group, Hierarchy, LevelKind};
pub use placement::{Distance, Location, MemSpace, Placement};
pub use spec::{ClusterShape, LinkParams, MachineSpec, Rank};
