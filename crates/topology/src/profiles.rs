//! Machine profiles mirroring the paper's three evaluation platforms.
//!
//! Parameters are public figures for the respective interconnects and CPU
//! generations (NIC/link bandwidths and latencies, memory-copy rates); they
//! set the *scale* of results, while the relative behaviour of the
//! algorithms comes from the simulation itself.

use crate::spec::{ClusterShape, LinkParams, MachineSpec};
use adapt_sim::time::Duration;

/// "Cori"-like CPU cluster: 2× Xeon E5-2698v3-class sockets (the paper says
/// E5-2689 v3) with 16 cores each, Cray Aries interconnect.
///
/// `nodes` is configurable so strong-scaling sweeps (Figure 10: 8–32 nodes)
/// reuse one profile; the paper's 1K-core runs use 32 nodes.
pub fn cori(nodes: u32) -> MachineSpec {
    MachineSpec {
        name: "cori",
        shape: ClusterShape {
            nodes,
            sockets_per_node: 2,
            cores_per_socket: 16,
            gpus_per_socket: 0,
        },
        // Shared-memory aggregate per socket: ~0.3 us, ~45 GB/s; each
        // core's copy engine sustains ~12 GB/s per direction.
        shm: LinkParams::from_us_gbs(0.3, 45.0),
        core: LinkParams::from_us_gbs(0.0, 12.0),
        // QPI between sockets: ~0.6 us, ~12 GB/s per direction.
        inter_socket: LinkParams::from_us_gbs(0.6, 12.0),
        // Aries NIC: ~1.3 us, ~9 GB/s injection per node.
        nic: LinkParams::from_us_gbs(1.3, 9.0),
        backbone: None, // Aries dragonfly ≈ non-blocking at 32 nodes
        pcie: None,
        nvlink: None,
        send_overhead: Duration::from_nanos(400),
        recv_overhead: Duration::from_nanos(400),
        eager_limit: 8 * 1024,
        unexpected_copy_bandwidth: 6.0e9,
        unexpected_overhead: Duration::from_nanos(900),
        // Single-core vectorized (AVX2) f64 sum: ~9 GB/s of operand data.
        cpu_reduce_bandwidth: 9.0e9,
        gpu_reduce_bandwidth: 0.0,
    }
}

/// "Stampede2"-like CPU cluster: 2× Xeon Platinum 8160 sockets with 24 cores
/// each, Intel Omni-Path (100 Gb/s) interconnect. The paper's 1.5K-core runs
/// use 32 nodes.
pub fn stampede2(nodes: u32) -> MachineSpec {
    MachineSpec {
        name: "stampede2",
        shape: ClusterShape {
            nodes,
            sockets_per_node: 2,
            cores_per_socket: 24,
            gpus_per_socket: 0,
        },
        shm: LinkParams::from_us_gbs(0.25, 55.0),
        core: LinkParams::from_us_gbs(0.0, 13.0),
        inter_socket: LinkParams::from_us_gbs(0.5, 16.0),
        // Omni-Path: ~1.1 us, 100 Gb/s ≈ 12.5 GB/s.
        nic: LinkParams::from_us_gbs(1.1, 12.5),
        backbone: None,
        pcie: None,
        nvlink: None,
        send_overhead: Duration::from_nanos(350),
        recv_overhead: Duration::from_nanos(350),
        eager_limit: 16 * 1024,
        unexpected_copy_bandwidth: 8.0e9,
        unexpected_overhead: Duration::from_nanos(800),
        // AVX-512 Skylake core: ~11 GB/s of operand data.
        cpu_reduce_bandwidth: 11.0e9,
        gpu_reduce_bandwidth: 0.0,
    }
}

/// NVIDIA PSG-like GPU cluster: 10 nodes, each with 2 deca-core Ivy Bridge
/// sockets and 4 K40 GPUs (2 per socket), nodes connected by FDR InfiniBand
/// (40 Gb/s ≈ 5 GB/s after encoding).
pub fn psg(nodes: u32) -> MachineSpec {
    MachineSpec {
        name: "psg",
        shape: ClusterShape {
            nodes,
            sockets_per_node: 2,
            cores_per_socket: 10,
            gpus_per_socket: 2,
        },
        shm: LinkParams::from_us_gbs(0.3, 40.0),
        core: LinkParams::from_us_gbs(0.0, 10.0),
        inter_socket: LinkParams::from_us_gbs(0.6, 11.0),
        // FDR IB: ~1.7 us, ~5 GB/s.
        nic: LinkParams::from_us_gbs(1.7, 5.0),
        backbone: None,
        // PCIe gen3 x16 to each K40: ~10 GB/s effective per direction,
        // ~1 us DMA setup.
        pcie: Some(LinkParams::from_us_gbs(1.0, 10.0)),
        nvlink: None, // K40 era: no NVLink
        send_overhead: Duration::from_nanos(500),
        recv_overhead: Duration::from_nanos(500),
        eager_limit: 8 * 1024,
        unexpected_copy_bandwidth: 5.0e9,
        unexpected_overhead: Duration::from_nanos(1000),
        // CPU-side reduce of GPU data (after staging): memory bound ~3 GB/s.
        cpu_reduce_bandwidth: 3.0e9,
        // K40 device-memory-bound reduce: ~180 GB/s, but reading two operands
        // and writing one ⇒ ~60 GB/s of result throughput.
        gpu_reduce_bandwidth: 60.0e9,
    }
}

/// A small laptop-scale profile used by tests and the quickstart example.
pub fn minicluster(nodes: u32, sockets_per_node: u32, cores_per_socket: u32) -> MachineSpec {
    MachineSpec {
        name: "minicluster",
        shape: ClusterShape {
            nodes,
            sockets_per_node,
            cores_per_socket,
            gpus_per_socket: 0,
        },
        shm: LinkParams::from_us_gbs(0.3, 40.0),
        core: LinkParams::from_us_gbs(0.0, 10.0),
        inter_socket: LinkParams::from_us_gbs(0.6, 10.0),
        nic: LinkParams::from_us_gbs(1.5, 6.0),
        backbone: None,
        pcie: None,
        nvlink: None,
        send_overhead: Duration::from_nanos(400),
        recv_overhead: Duration::from_nanos(400),
        eager_limit: 4 * 1024,
        unexpected_copy_bandwidth: 5.0e9,
        unexpected_overhead: Duration::from_nanos(900),
        cpu_reduce_bandwidth: 4.0e9,
        gpu_reduce_bandwidth: 0.0,
    }
}

/// A small GPU profile used by tests (2 GPUs per socket like PSG).
pub fn mini_gpu(nodes: u32) -> MachineSpec {
    let mut spec = psg(nodes);
    spec.name = "mini-gpu";
    spec.shape.cores_per_socket = 4;
    spec
}

/// A V100-era GPU cluster: PSG's shape, but same-socket GPU pairs talk
/// over NVLink (~23 GB/s effective per direction) instead of sharing the
/// PCIe switch, PCIe gen3 stays for host traffic, and the fabric is EDR
/// InfiniBand. Used by the NVLink sensitivity study (post-paper hardware).
pub fn nvlink_cluster(nodes: u32) -> MachineSpec {
    let mut spec = psg(nodes);
    spec.name = "nvlink";
    spec.nvlink = Some(LinkParams::from_us_gbs(0.7, 23.0));
    // EDR IB: ~12 GB/s.
    spec.nic = LinkParams::from_us_gbs(1.3, 12.0);
    // V100 device-memory reduce throughput.
    spec.gpu_reduce_bandwidth = 250.0e9;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_job_sizes() {
        assert_eq!(cori(32).cpu_job_size(), 1024);
        assert_eq!(stampede2(32).cpu_job_size(), 1536);
        assert_eq!(psg(8).gpu_job_size(), 32);
        assert_eq!(psg(10).shape.nodes, 10);
    }

    #[test]
    fn lane_speed_ordering() {
        // Within a machine the lanes must be ordered shm ≥ qpi ≥ nic in
        // bandwidth and the reverse in latency — the heterogeneity the
        // topology-aware tree exploits.
        for spec in [cori(32), stampede2(32), psg(8)] {
            assert!(spec.shm.bandwidth >= spec.inter_socket.bandwidth);
            assert!(spec.inter_socket.bandwidth >= spec.nic.bandwidth);
            assert!(spec.shm.latency <= spec.nic.latency);
        }
    }

    #[test]
    fn gpu_profile_has_pcie() {
        assert!(psg(8).pcie.is_some());
        assert!(cori(32).pcie.is_none());
        assert!(psg(8).gpu_reduce_bandwidth > psg(8).cpu_reduce_bandwidth);
    }
}
