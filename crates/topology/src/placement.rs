//! Rank placement: which core/GPU hosts which rank, and memory spaces.

use crate::spec::{ClusterShape, Rank};

/// Physical location of a rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Location {
    /// Node index.
    pub node: u32,
    /// Socket index within the node.
    pub socket: u32,
    /// Core index within the socket.
    pub core: u32,
    /// GPU index within the socket, when the rank is GPU-bound.
    pub gpu: Option<u32>,
}

impl Location {
    /// Global socket index (unique across the cluster).
    pub fn global_socket(&self, shape: &ClusterShape) -> u32 {
        self.node * shape.sockets_per_node + self.socket
    }

    /// Global GPU index (unique across the cluster), if GPU-bound.
    pub fn global_gpu(&self, shape: &ClusterShape) -> Option<u32> {
        self.gpu
            .map(|g| self.global_socket(shape) * shape.gpus_per_socket + g)
    }
}

/// A memory space a message buffer can live in. CPU jobs only use `Host`;
/// GPU jobs move data between `Device` memories, possibly staged through
/// `Host` memory (§4.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Host (CPU) memory attached to a socket.
    Host { node: u32, socket: u32 },
    /// GPU device memory.
    Device { node: u32, socket: u32, gpu: u32 },
}

impl MemSpace {
    /// Node the memory is attached to.
    pub fn node(&self) -> u32 {
        match *self {
            MemSpace::Host { node, .. } | MemSpace::Device { node, .. } => node,
        }
    }

    /// Socket the memory is attached to.
    pub fn socket(&self) -> u32 {
        match *self {
            MemSpace::Host { socket, .. } | MemSpace::Device { socket, .. } => socket,
        }
    }

    /// True for device (GPU) memory.
    pub fn is_device(&self) -> bool {
        matches!(self, MemSpace::Device { .. })
    }
}

/// Relationship between two ranks in the hardware hierarchy, ordered from
/// closest to farthest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Distance {
    /// Same rank.
    Self_,
    /// Same socket (shared-memory reachable).
    IntraSocket,
    /// Same node, different socket.
    InterSocket,
    /// Different nodes.
    InterNode,
}

/// Placement of an entire job: rank → location.
#[derive(Clone, Debug)]
pub struct Placement {
    shape: ClusterShape,
    by_rank: Vec<Location>,
}

impl Placement {
    /// Block placement for a CPU job: ranks fill cores within a socket,
    /// sockets within a node, then the next node — matching the paper's
    /// Figure 5 numbering (ranks 0–3 on socket 0 of node 0, 4–7 on socket 1,
    /// 8–11 on node 1 socket 0, ...).
    pub fn block_cpu(shape: ClusterShape, ranks: u32) -> Placement {
        assert!(
            ranks <= shape.total_cores(),
            "job of {ranks} ranks does not fit {} cores",
            shape.total_cores()
        );
        let by_rank = (0..ranks)
            .map(|r| {
                let core = r % shape.cores_per_socket;
                let sock_lin = r / shape.cores_per_socket;
                let socket = sock_lin % shape.sockets_per_node;
                let node = sock_lin / shape.sockets_per_node;
                Location {
                    node,
                    socket,
                    core,
                    gpu: None,
                }
            })
            .collect();
        Placement { shape, by_rank }
    }

    /// Placement for a GPU job: one rank per GPU, filling GPUs within a
    /// socket, sockets within a node, then the next node.
    pub fn block_gpu(shape: ClusterShape, ranks: u32) -> Placement {
        assert!(shape.gpus_per_socket > 0, "shape has no GPUs");
        assert!(
            ranks <= shape.total_gpus(),
            "job of {ranks} ranks does not fit {} GPUs",
            shape.total_gpus()
        );
        let by_rank = (0..ranks)
            .map(|r| {
                let gpu = r % shape.gpus_per_socket;
                let sock_lin = r / shape.gpus_per_socket;
                let socket = sock_lin % shape.sockets_per_node;
                let node = sock_lin / shape.sockets_per_node;
                Location {
                    node,
                    socket,
                    core: gpu, // one core drives each GPU
                    gpu: Some(gpu),
                }
            })
            .collect();
        Placement { shape, by_rank }
    }

    /// Number of ranks in the job.
    pub fn len(&self) -> u32 {
        self.by_rank.len() as u32
    }

    /// True for an empty job (never used in practice; completes the API).
    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    /// The cluster shape this placement lives on.
    pub fn shape(&self) -> &ClusterShape {
        &self.shape
    }

    /// Location of `rank`.
    pub fn location(&self, rank: Rank) -> Location {
        self.by_rank[rank as usize]
    }

    /// The memory space a rank's communication buffers live in by default:
    /// device memory for GPU-bound ranks, host memory otherwise.
    pub fn default_mem(&self, rank: Rank) -> MemSpace {
        let loc = self.location(rank);
        match loc.gpu {
            Some(gpu) => MemSpace::Device {
                node: loc.node,
                socket: loc.socket,
                gpu,
            },
            None => MemSpace::Host {
                node: loc.node,
                socket: loc.socket,
            },
        }
    }

    /// Host memory space on a rank's socket (staging buffers live here).
    pub fn host_mem(&self, rank: Rank) -> MemSpace {
        let loc = self.location(rank);
        MemSpace::Host {
            node: loc.node,
            socket: loc.socket,
        }
    }

    /// Hierarchical distance between two ranks.
    pub fn distance(&self, a: Rank, b: Rank) -> Distance {
        if a == b {
            return Distance::Self_;
        }
        let la = self.location(a);
        let lb = self.location(b);
        if la.node != lb.node {
            Distance::InterNode
        } else if la.socket != lb.socket {
            Distance::InterSocket
        } else {
            Distance::IntraSocket
        }
    }

    /// Iterate over `(rank, location)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, Location)> + '_ {
        self.by_rank
            .iter()
            .enumerate()
            .map(|(r, loc)| (r as Rank, *loc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ClusterShape {
        ClusterShape {
            nodes: 3,
            sockets_per_node: 2,
            cores_per_socket: 4,
            gpus_per_socket: 2,
        }
    }

    #[test]
    fn block_cpu_matches_paper_figure5() {
        // Figure 5: 4 cores/socket, 2 sockets/node; ranks 0-3 socket 0,
        // 4-7 socket 1, 8.. next node.
        let p = Placement::block_cpu(shape(), 24);
        assert_eq!(
            p.location(0),
            Location {
                node: 0,
                socket: 0,
                core: 0,
                gpu: None
            }
        );
        assert_eq!(p.location(5).socket, 1);
        assert_eq!(p.location(5).node, 0);
        assert_eq!(p.location(8).node, 1);
        assert_eq!(p.location(8).socket, 0);
        assert_eq!(p.location(23).node, 2);
    }

    #[test]
    fn distances() {
        let p = Placement::block_cpu(shape(), 24);
        assert_eq!(p.distance(0, 0), Distance::Self_);
        assert_eq!(p.distance(0, 1), Distance::IntraSocket);
        assert_eq!(p.distance(0, 4), Distance::InterSocket);
        assert_eq!(p.distance(0, 8), Distance::InterNode);
        // Symmetry.
        assert_eq!(p.distance(8, 0), Distance::InterNode);
    }

    #[test]
    fn gpu_placement_binds_one_rank_per_gpu() {
        let p = Placement::block_gpu(shape(), 12);
        let l0 = p.location(0);
        assert_eq!(l0.gpu, Some(0));
        let l1 = p.location(1);
        assert_eq!(l1.gpu, Some(1));
        assert_eq!(l1.socket, 0);
        let l2 = p.location(2);
        assert_eq!(l2.gpu, Some(0));
        assert_eq!(l2.socket, 1);
        let l4 = p.location(4);
        assert_eq!(l4.node, 1);
        // Memory spaces.
        assert!(p.default_mem(0).is_device());
        assert!(!p.host_mem(0).is_device());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overfull_job_panics() {
        let _ = Placement::block_cpu(shape(), 25);
    }

    #[test]
    fn global_indices() {
        let s = shape();
        let p = Placement::block_gpu(s, 12);
        assert_eq!(p.location(3).global_socket(&s), 1);
        assert_eq!(p.location(3).global_gpu(&s), Some(3));
        assert_eq!(p.location(11).global_gpu(&s), Some(11));
    }
}
