//! Criterion benches mirroring the paper's figures at reduced scale, so
//! `cargo bench` finishes in minutes. One group per figure/table; the
//! full-scale numbers come from the `fig*`/`table1` binaries.

use adapt_apps::{run_asp, AspConfig};
use adapt_collectives::{
    run_once, run_once_scoped, CollectiveCase, IntelAlg, Library, NoiseScope, OpKind,
};
use adapt_gpu::{run_gpu_once, GpuCase, GpuLibrary};
use adapt_sim::time::Duration as SimDuration;
use adapt_topology::profiles;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn cpu_case(library: Library, op: OpKind, msg_bytes: u64) -> CollectiveCase {
    let machine = profiles::cori(4); // 128 ranks
    CollectiveCase {
        nranks: machine.cpu_job_size(),
        machine,
        op,
        library,
        msg_bytes,
    }
}

/// Figure 7 (reduced): noise impact on a 4 MB broadcast.
fn fig7_noise_impact(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_noise_bcast_4MB");
    g.sample_size(10);
    for lib in [Library::OmpiAdapt, Library::OmpiDefault, Library::Mvapich] {
        for noise in [0.0, 10.0] {
            g.bench_with_input(
                BenchmarkId::new(lib.label(), format!("{noise}%")),
                &(lib, noise),
                |b, &(lib, noise)| {
                    let case = cpu_case(lib, OpKind::Bcast, 4 << 20);
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        run_once_scoped(&case, NoiseScope::PerNode, noise, seed)
                    });
                },
            );
        }
    }
    g.finish();
}

/// Figure 8 (reduced): topology-aware algorithms at 4 MB.
fn fig8_topology_aware(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_topo_bcast_4MB");
    g.sample_size(10);
    for lib in [
        Library::IntelTopo(IntelAlg::Binomial),
        Library::IntelTopo(IntelAlg::Ring),
        Library::IntelTopo(IntelAlg::ShmKnomial),
        Library::OmpiDefaultTopo,
        Library::OmpiAdapt,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(lib.label()), &lib, |b, &lib| {
            let case = cpu_case(lib, OpKind::Bcast, 4 << 20);
            b.iter(|| run_once(&case, 0.0, 1));
        });
    }
    g.finish();
}

/// Figure 9 (reduced): end-to-end sweep over message sizes.
fn fig9_message_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_bcast_sweep");
    g.sample_size(10);
    for msg_kb in [64u64, 512, 4096] {
        for lib in [Library::OmpiAdapt, Library::OmpiDefault] {
            g.bench_with_input(
                BenchmarkId::new(lib.label(), format!("{msg_kb}K")),
                &(lib, msg_kb),
                |b, &(lib, kb)| {
                    let case = cpu_case(lib, OpKind::Bcast, kb << 10);
                    b.iter(|| run_once(&case, 0.0, 1));
                },
            );
        }
    }
    g.finish();
}

/// Figure 10 (reduced): strong scaling of the ADAPT broadcast.
fn fig10_strong_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_adapt_scaling");
    g.sample_size(10);
    for nodes in [2u32, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes * 32), &nodes, |b, &n| {
            let machine = profiles::cori(n);
            let case = CollectiveCase {
                nranks: machine.cpu_job_size(),
                machine,
                op: OpKind::Bcast,
                library: Library::OmpiAdapt,
                msg_bytes: 4 << 20,
            };
            b.iter(|| run_once(&case, 0.0, 1));
        });
    }
    g.finish();
}

/// Figure 11 (reduced): GPU broadcast and reduce at 8 MB on 2 nodes.
fn fig11_gpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_gpu_8MB");
    g.sample_size(10);
    for op in [OpKind::Bcast, OpKind::Reduce] {
        for lib in [GpuLibrary::OmpiAdapt, GpuLibrary::Mvapich] {
            g.bench_with_input(
                BenchmarkId::new(format!("{op:?}"), lib.label()),
                &(op, lib),
                |b, &(op, lib)| {
                    let machine = profiles::psg(2);
                    let case = GpuCase {
                        nranks: machine.gpu_job_size(),
                        machine,
                        op,
                        library: lib,
                        msg_bytes: 8 << 20,
                    };
                    b.iter(|| run_gpu_once(&case));
                },
            );
        }
    }
    g.finish();
}

/// Table 1 (reduced): ASP under two libraries.
fn table1_asp(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_asp");
    g.sample_size(10);
    for lib in [Library::OmpiAdapt, Library::OmpiDefault] {
        g.bench_with_input(BenchmarkId::from_parameter(lib.label()), &lib, |b, &lib| {
            let machine = profiles::cori(2);
            b.iter(|| {
                run_asp(&AspConfig {
                    machine: machine.clone(),
                    nranks: machine.cpu_job_size(),
                    library: lib,
                    row_bytes: 1 << 20,
                    iterations: 8,
                    compute_per_iter: SimDuration::from_micros(200),
                })
            });
        });
    }
    g.finish();
}

/// Extension collectives (§7 coverage): ring allreduce vs reduce+bcast.
fn e16_extensions(c: &mut Criterion) {
    use adapt_apps::{run_training, GradStrategy, TrainConfig};
    let mut g = c.benchmark_group("e16_gradient_exchange");
    g.sample_size(10);
    for (label, strategy) in [
        ("ring_allreduce", GradStrategy::RingAllreduce),
        ("reduce_bcast", GradStrategy::ReduceBcast),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &strategy,
            |b, &strategy| {
                let machine = profiles::cori(2);
                b.iter(|| {
                    run_training(&TrainConfig {
                        nranks: machine.cpu_job_size(),
                        machine: machine.clone(),
                        grad_bytes: 8 << 20,
                        steps: 2,
                        compute_per_step: SimDuration::from_micros(500),
                        strategy,
                    })
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    figures,
    fig7_noise_impact,
    fig8_topology_aware,
    fig9_message_sizes,
    fig10_strong_scaling,
    fig11_gpu,
    table1_asp,
    e16_extensions
);
criterion_main!(figures);
