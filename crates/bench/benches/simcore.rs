//! Microbenches of the simulator's hot paths: the event queue, the
//! flow-level network engine, and the end-to-end event rate of the MPI
//! runtime.

use adapt_mpi::World;
use adapt_net::{FlowId, FlowScheduler, FlowSpec, Link, LinkClass, LinkId, Network, Path};
use adapt_noise::ClusterNoise;
use adapt_sim::queue::{EventKey, EventQueue};
use adapt_sim::time::{Duration as SimDuration, Time};
use adapt_topology::profiles;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

/// Push/pop throughput of the deterministic event queue.
fn event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(Time(i * 37 % 10_000), i);
            }
            let mut out = 0u64;
            while let Some((_, v)) = q.pop() {
                out ^= v;
            }
            out
        });
    });
    g.bench_function("push_cancel_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let keys: Vec<_> = (0..n).map(|i| q.schedule(Time(i), i)).collect();
            for k in keys.iter().step_by(2) {
                q.cancel(*k);
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            count
        });
    });
    g.finish();
}

struct Q(EventQueue<FlowId>);
impl FlowScheduler for Q {
    fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey {
        self.0.schedule(at, flow)
    }
    fn cancel(&mut self, key: EventKey) {
        self.0.cancel(key);
    }
}

/// Flow engine under heavy sharing: 64 concurrent flows on one link.
fn flow_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_engine");
    g.bench_function("64_shared_flows", |b| {
        b.iter(|| {
            let mut net = Network::new(vec![Link {
                class: LinkClass::Backbone,
                capacity: 1e10,
                latency: SimDuration::from_nanos(500),
            }]);
            let mut q = Q(EventQueue::new());
            for tag in 0..64u64 {
                net.start_flow(
                    Time(tag * 100),
                    FlowSpec {
                        path: Path::new(&[LinkId(0)]),
                        bytes: 100_000 + tag * 1000,
                        tag,
                    },
                    &mut q,
                );
            }
            let mut delivered = 0;
            while let Some((t, fid)) = q.0.pop() {
                if matches!(
                    net.handle_event(t, fid, &mut q),
                    adapt_net::NetStep::Delivered(_)
                ) {
                    delivered += 1;
                }
            }
            delivered
        });
    });
    g.finish();
}

/// End-to-end simulated-event rate: a 32-rank ADAPT broadcast.
fn world_event_rate(c: &mut Criterion) {
    use adapt_core::{topology_aware_tree, AdaptConfig, BcastSpec, TopoTreeConfig};
    use adapt_topology::Placement;
    use std::sync::Arc;

    let mut g = c.benchmark_group("world");
    g.sample_size(20);
    g.bench_function("adapt_bcast_32ranks_1MB", |b| {
        b.iter(|| {
            let machine = profiles::minicluster(4, 2, 4);
            let placement = Placement::block_cpu(machine.shape, 32);
            let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
            let spec = BcastSpec {
                tree,
                msg_bytes: 1 << 20,
                cfg: AdaptConfig::default(),
                data: None,
            };
            let world = World::cpu(machine, 32, ClusterNoise::silent(32));
            world.run(spec.programs()).makespan
        });
    });
    g.finish();
}

criterion_group!(simcore, event_queue, flow_engine, world_event_rate);
criterion_main!(simcore);
