//! Noise-propagation microstudy (§2.1 / Figure 2, quantified).
//!
//! Injects noise on a *single* rank and measures how far the delay
//! propagates under the three dependency regimes the paper analyzes:
//! blocking P2P (data + synchronization dependencies, Figure 2c),
//! non-blocking + Waitall (Figure 3), and ADAPT (data dependencies only).
//! Reports both the victim's own slowdown and the collective-wide
//! slowdown — the gap between them is the propagation the design is
//! supposed to suppress.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin noise_propagation [--scale quick]
//! ```

use adapt_bench::{parse_args, pool_map, print_table, Scale};
use adapt_collectives::{run_trial, CollectiveCase, Library, NoiseScope, OpKind, Trial};
use adapt_core::{topology_aware_tree, TopoTreeConfig, Tree};
use adapt_mpi::World;
use adapt_noise::{ClusterNoise, DurationLaw, NoiseSpec};
use adapt_sim::rng::MasterSeed;
use adapt_sim::time::Duration;
use adapt_topology::{profiles, Placement};

fn main() {
    let args = parse_args();
    let scale = Scale::from_args(&args);
    let (machine, nranks) = match scale {
        Scale::Full => (profiles::cori(8), 256u32),
        Scale::Quick => (profiles::cori(2), 64u32),
    };
    // Noise lands mid-tree: an intermediate rank with both a parent and
    // children in every engine's topology.
    let victim = nranks / 2 + 1;
    let iterations = 12;

    let libs = [
        (Library::OmpiBlocking, "blocking P2P (Alg 1)"),
        (Library::OmpiDefault, "nonblocking+Waitall (Alg 2)"),
        (Library::OmpiAdapt, "ADAPT event-driven (Alg 3)"),
    ];

    let trial_machine = machine.clone();
    let rows: Vec<(String, Vec<String>)> = pool_map(libs.to_vec(), move |(library, label)| {
        let mk = |noise: f64| {
            run_trial(&Trial {
                case: CollectiveCase {
                    machine: trial_machine.clone(),
                    nranks,
                    op: OpKind::Bcast,
                    library,
                    msg_bytes: 4 << 20,
                },
                noise_percent: noise,
                scope: NoiseScope::SingleRank(victim),
                iterations,
                repeats: 3,
                seed: 99,
            })
            .mean_us
        };
        let clean = mk(0.0);
        let noisy = mk(10.0);
        (
            label.to_string(),
            vec![
                format!("{:.2}ms", clean / 1000.0),
                format!("{:.2}ms", noisy / 1000.0),
                format!("{:.0}%", (noisy / clean - 1.0) * 100.0),
            ],
        )
    });

    print_table(
        &format!("Noise propagation: 10% noise on single rank {victim} of {nranks}, 4MB broadcast"),
        &[
            "clean".to_string(),
            "noisy".to_string(),
            "slowdown".to_string(),
        ],
        &rows,
    );
    println!(
        "\nBlocking designs forward the victim's delay to parent and \n\
         siblings (synchronization dependencies); ADAPT only pays the \n\
         unavoidable data dependency through the victim's subtree."
    );

    figure2_relations(&machine, nranks, victim);
}

/// The paper's Figure 2, quantified: average per-rank completion delay
/// under single-victim noise, grouped by the rank's tree relation to the
/// victim. Data dependencies make descendants' delay unavoidable;
/// synchronization dependencies leak it to siblings, the parent, and
/// beyond (Figure 2c) — which is exactly what separates the engines.
fn figure2_relations(machine: &adapt_topology::MachineSpec, nranks: u32, victim: u32) {
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum Relation {
        Victim,
        Descendant,
        Sibling,
        Ancestor,
        Other,
    }

    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = topology_aware_tree(&placement, TopoTreeConfig::default());
    let relation = |r: u32| -> Relation {
        if r == victim {
            return Relation::Victim;
        }
        // Descendant: victim on r's root path.
        let mut cur = r;
        while let Some(p) = tree.parent(cur) {
            if p == victim {
                return Relation::Descendant;
            }
            cur = p;
        }
        // Ancestor: r on victim's root path.
        let mut cur = victim;
        while let Some(p) = tree.parent(cur) {
            if p == r {
                return Relation::Ancestor;
            }
            cur = p;
        }
        if tree.parent(r).is_some() && tree.parent(r) == tree.parent(victim) {
            return Relation::Sibling;
        }
        Relation::Other
    };

    // Dense windows (1 ms period, up to 0.5 ms long) so every run meets
    // several — this study isolates the propagation *shape*, not the
    // 10 Hz duty of Figure 7.
    let finishes = |library: Library, noisy: bool, tree: &Tree| -> Vec<f64> {
        let case = CollectiveCase {
            machine: machine.clone(),
            nranks,
            op: OpKind::Bcast,
            library,
            msg_bytes: 4 << 20,
        };
        // Average per-rank finish times over seeds.
        let mut acc = vec![0.0f64; nranks as usize];
        let seeds = 8u64;
        for s in 0..seeds {
            let noise_model = if noisy {
                ClusterNoise::single_rank(
                    nranks,
                    victim,
                    NoiseSpec {
                        period: Duration::from_millis(1),
                        max_duration: Duration::from_micros(500),
                        law: DurationLaw::Uniform,
                    },
                    MasterSeed(s),
                )
            } else {
                ClusterNoise::silent(nranks)
            };
            let world = World::cpu(machine.clone(), nranks, noise_model);
            let res = world.run(case.programs());
            for (r, t) in res.per_rank_finish.iter().enumerate() {
                acc[r] += t.as_micros_f64() / seeds as f64;
            }
        }
        let _ = tree;
        acc
    };

    let relations = [
        Relation::Victim,
        Relation::Descendant,
        Relation::Sibling,
        Relation::Ancestor,
        Relation::Other,
    ];
    let rows: Vec<(String, Vec<String>)> = [
        (Library::OmpiBlocking, "blocking (Fig 2c)"),
        (Library::OmpiAdapt, "ADAPT (data deps only)"),
    ]
    .iter()
    .map(|&(library, label)| {
        let clean = finishes(library, false, &tree);
        let noisy = finishes(library, true, &tree);
        let cells: Vec<String> = relations
            .iter()
            .map(|&rel| {
                let delays: Vec<f64> = (0..nranks)
                    .filter(|&r| {
                        // Group by the blocking tree's relations for the
                        // blocking engine and the topo tree's for ADAPT —
                        // both runs here use their library's own tree, so
                        // classify with the topo tree uniformly for
                        // comparability.
                        relation(r) == rel
                    })
                    .map(|r| (noisy[r as usize] - clean[r as usize]).max(0.0))
                    .collect();
                if delays.is_empty() {
                    "-".to_string()
                } else {
                    format!("{:.0}us", delays.iter().sum::<f64>() / delays.len() as f64)
                }
            })
            .collect();
        (label.to_string(), cells)
    })
    .collect();

    print_table(
        "Figure 2 quantified: mean completion delay by tree relation to the noisy rank",
        &[
            "victim".to_string(),
            "descendants".to_string(),
            "siblings".to_string(),
            "ancestors".to_string(),
            "others".to_string(),
        ],
        &rows,
    );
    println!(
        "Data dependencies delay the victim's subtree in both engines; the\n\
         blocking engine leaks the delay to siblings/ancestors/everyone\n\
         (synchronization dependencies, paper Figure 2c), ADAPT does not."
    );
}
