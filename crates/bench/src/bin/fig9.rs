//! Figure 9: end-to-end broadcast and reduce vs message size.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin fig9 -- --machine cori [--scale quick]
//! ```

use adapt_bench::{parse_args, pool_grid, print_table, size_label, CpuMachine, Scale, FIG89_SIZES};
use adapt_collectives::{run_once, CollectiveCase, Library, OpKind};

fn main() {
    let args = parse_args();
    let machine = CpuMachine::from_args(&args);
    let scale = Scale::from_args(&args);
    let (spec, nranks) = machine.instantiate(scale);

    // Cray MPI does not support Omni-Path; MVAPICH does not support Aries
    // (paper §5.2.1), so each machine compares a different vendor stack.
    let libs: Vec<Library> = match machine {
        CpuMachine::Cori => vec![
            Library::CrayMpi,
            Library::IntelMpi,
            Library::OmpiDefault,
            Library::OmpiAdapt,
        ],
        CpuMachine::Stampede2 => vec![
            Library::Mvapich,
            Library::IntelMpi,
            Library::OmpiDefault,
            Library::OmpiAdapt,
        ],
    };

    for op in [OpKind::Bcast, OpKind::Reduce] {
        let spec = spec.clone();
        let cells: Vec<Vec<f64>> = pool_grid(&libs, &FIG89_SIZES, move |library, msg_bytes| {
            let case = CollectiveCase {
                machine: spec.clone(),
                nranks,
                op,
                library,
                msg_bytes,
            };
            run_once(&case, 0.0, 1).0 / 1000.0 // ms
        });

        let header: Vec<String> = FIG89_SIZES.iter().map(|&s| size_label(s)).collect();
        let rows: Vec<(String, Vec<String>)> = libs
            .iter()
            .zip(&cells)
            .map(|(lib, times)| {
                (
                    lib.label(),
                    times.iter().map(|t| format!("{t:.3}ms")).collect(),
                )
            })
            .collect();
        print_table(
            &format!(
                "Figure 9 ({}): {} time vs message size, {} ranks",
                machine.name(),
                match op {
                    OpKind::Bcast => "Broadcast",
                    OpKind::Reduce => "Reduce",
                },
                nranks
            ),
            &header,
            &rows,
        );

        // Headline speedups at 4 MB (paper: 10x/10x/1.6x on Cori bcast).
        let adapt_idx = libs.len() - 1;
        let last = FIG89_SIZES.len() - 1;
        print!("speedup of OMPI-adapt at 4M:");
        for (i, lib) in libs.iter().enumerate() {
            if i != adapt_idx {
                print!(
                    "  {:.1}x vs {}",
                    cells[i][last] / cells[adapt_idx][last],
                    lib.label()
                );
            }
        }
        println!();
    }
}
