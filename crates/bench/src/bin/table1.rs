//! Table 1: ASP (all-pairs shortest paths) with 1K ranks on Cori.
//!
//! The paper runs problem size 256K (1 MB pivot-row broadcasts); the
//! absolute second counts come from iterating the outer loop. We run a
//! scaled iteration count (rows are distributed cyclically so broadcast
//! roots rotate as at full scale) and report the same two rows —
//! communication time and total runtime — whose *ratios* are the
//! reproduction target (ADAPT ≈ 38% communication, Cray ≈ 48%, Intel and
//! OMPI-tuned > 80%).
//!
//! ```text
//! cargo run --release -p adapt-bench --bin table1 [--scale quick]
//! ```

use adapt_apps::{run_asp, AspConfig};
use adapt_bench::{parse_args, pool_map, print_table, Scale};
use adapt_collectives::Library;
use adapt_sim::time::Duration;
use adapt_topology::profiles;

fn main() {
    let args = parse_args();
    let scale = Scale::from_args(&args);
    let (machine, nranks, iterations) = match scale {
        Scale::Full => (profiles::cori(32), 1024u32, 64u32),
        Scale::Quick => (profiles::cori(4), 128u32, 12u32),
    };

    // Per-iteration relaxation compute chosen so that ADAPT lands near the
    // paper's ~38% communication fraction; every library sees the same
    // compute, so the cross-library ordering is a pure communication story.
    let compute_per_iter = Duration::from_micros(650);

    let libs = [
        Library::CrayMpi,
        Library::IntelMpi,
        Library::OmpiAdapt,
        Library::OmpiDefault, // "OMPI-tuned" in the paper's Table 1
    ];

    let asp_machine = machine.clone();
    let results: Vec<_> = pool_map(libs.to_vec(), move |library| {
        run_asp(&AspConfig {
            machine: asp_machine.clone(),
            nranks,
            library,
            row_bytes: 1 << 20,
            iterations,
            compute_per_iter,
        })
    });

    let header = vec![
        "comm (ms)".to_string(),
        "total (ms)".to_string(),
        "comm %".to_string(),
    ];
    let rows: Vec<(String, Vec<String>)> = libs
        .iter()
        .zip(&results)
        .map(|(lib, r)| {
            (
                if *lib == Library::OmpiDefault {
                    "OMPI-tuned".to_string()
                } else {
                    lib.label()
                },
                vec![
                    format!("{:.2}", r.communication_s * 1e3),
                    format!("{:.2}", r.total_s * 1e3),
                    format!("{:.0}%", r.comm_fraction() * 100.0),
                ],
            )
        })
        .collect();
    print_table(
        &format!(
            "Table 1: ASP on {} ranks (1MB rows, {} iterations, {}us compute/iter)",
            nranks,
            iterations,
            compute_per_iter.as_micros_f64()
        ),
        &header,
        &rows,
    );
}
