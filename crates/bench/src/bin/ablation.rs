//! Ablations of ADAPT's design choices:
//!
//! - `--study m_over_n`: the §2.2.1 rule that the receive window `M` must
//!   exceed the send window `N`, measured through the unexpected-message
//!   count and its latency cost;
//! - `--study staging`: the §4.1 explicit CPU staging buffer on the GPU
//!   broadcast;
//! - `--study gpu_reduce`: the §4.2 GPU-offloaded asynchronous fold vs a
//!   CPU fold on the same tree;
//! - `--study seg_size`: pipeline segment-size sensitivity (the §5.2.1
//!   "perfect pipeline" criteria);
//! - `--study nvlink`: the same GPU broadcast on K40-era PCIe peers vs a
//!   V100-era NVLink cluster (post-paper hardware sensitivity).
//!
//! Default: all studies.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin ablation [-- --study m_over_n]
//! ```

use adapt_bench::{parse_args, print_table};
use adapt_core::{
    topology_aware_tree, AdaptConfig, BcastSpec, ReduceData, ReduceExec, ReduceSpec, TopoTreeConfig,
};
use adapt_gpu::GpuBcastSpec;
use adapt_mpi::World;
use adapt_noise::ClusterNoise;
use adapt_topology::{profiles, Placement};
use std::sync::Arc;

fn run_bcast_cfg(cfg: AdaptConfig) -> (f64, u64) {
    let machine = profiles::cori(8);
    let nranks = machine.cpu_job_size();
    let placement = Placement::block_cpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let spec = BcastSpec {
        tree,
        msg_bytes: 4 << 20,
        cfg,
        data: None,
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let res = world.run(spec.programs());
    (
        res.makespan.as_micros_f64() / 1000.0,
        res.stats.unexpected_matches,
    )
}

fn study_m_over_n() {
    // The unexpected-message hazard is an *eager* phenomenon: an eager
    // segment that lands before its receive is posted is buffered and
    // later copied out (rendezvous segments just wait at the RTS). Use
    // eager-sized segments (8 KB = the Cori profile's eager limit).
    let n = 8u32;
    let rows: Vec<(String, Vec<String>)> = [2u32, 4, 8, 12, 16]
        .iter()
        .map(|&m| {
            let (ms, unexpected) = run_bcast_cfg(
                AdaptConfig::default()
                    .with_seg_size(8 * 1024)
                    .with_outstanding(n, m),
            );
            (
                format!("N={n}, M={m}{}", if m > n { "  (M>N)" } else { "" }),
                vec![format!("{ms:.3}ms"), format!("{unexpected}")],
            )
        })
        .collect();
    print_table(
        "Ablation: receive window depth M vs send window N (4MB bcast, eager 8K segments, 256 ranks)",
        &["time".to_string(), "unexpected msgs".to_string()],
        &rows,
    );
    println!(
        "Deeper receive windows keep more eager arrivals matched (the paper's\n\
         M > N rule 'minimizes the chance of unexpected segments'); segments\n\
         above the eager limit avoid the copy entirely via rendezvous, which\n\
         is why ADAPT's defaults use rendezvous-sized segments."
    );
}

fn study_staging() {
    let machine = profiles::psg(8);
    let nranks = machine.gpu_job_size();
    let placement = Placement::block_gpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let rows: Vec<(String, Vec<String>)> = [true, false]
        .iter()
        .map(|&staging| {
            let spec = GpuBcastSpec {
                placement: placement.clone(),
                tree: tree.clone(),
                msg_bytes: 32 << 20,
                cfg: AdaptConfig::default(),
                staging,
            };
            let world = World::gpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
            let res = world.run(spec.programs());
            (
                if staging {
                    "explicit CPU staging (Fig 6c)".to_string()
                } else {
                    "direct device paths (Fig 6a)".to_string()
                },
                vec![format!("{:.3}ms", res.makespan.as_micros_f64() / 1000.0)],
            )
        })
        .collect();
    print_table(
        "Ablation: §4.1 node-leader staging buffer (32MB GPU bcast, 32 GPUs)",
        &["time".to_string()],
        &rows,
    );
}

fn study_gpu_reduce() {
    let machine = profiles::psg(8);
    let nranks = machine.gpu_job_size();
    let placement = Placement::block_gpu(machine.shape, nranks);
    let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
    let rows: Vec<(String, Vec<String>)> = [
        (ReduceExec::Cpu, "CPU fold (blocks progress engine)"),
        (ReduceExec::GpuAsync, "GPU stream fold (§4.2, overlapped)"),
    ]
    .iter()
    .map(|&(exec, label)| {
        let spec = ReduceSpec {
            tree: tree.clone(),
            msg_bytes: 32 << 20,
            cfg: AdaptConfig::default(),
            data: ReduceData::Synthetic,
            exec,
        };
        let world = World::gpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
        let res = world.run(spec.programs());
        (
            label.to_string(),
            vec![format!("{:.3}ms", res.makespan.as_micros_f64() / 1000.0)],
        )
    })
    .collect();
    print_table(
        "Ablation: §4.2 reduction offload (32MB GPU reduce, 32 GPUs)",
        &["time".to_string()],
        &rows,
    );
}

fn study_seg_size() {
    let rows: Vec<(String, Vec<String>)> = [8u64, 16, 32, 64, 128, 256, 512, 4096]
        .iter()
        .map(|&kb| {
            let (ms, _) = run_bcast_cfg(AdaptConfig::default().with_seg_size(kb * 1024));
            (format!("seg {kb}K"), vec![format!("{ms:.3}ms")])
        })
        .collect();
    print_table(
        "Ablation: pipeline segment size (4MB bcast, 256 ranks)",
        &["time".to_string()],
        &rows,
    );
    println!(
        "Small segments pay per-message latency; one giant segment cannot \n\
         pipeline (the §5.2.1 'perfect pipeline' criteria)."
    );
}

fn study_nvlink() {
    let rows: Vec<(String, Vec<String>)> = [
        ("PSG (K40, PCIe peers)", profiles::psg(4)),
        ("NVLink cluster (V100)", profiles::nvlink_cluster(4)),
    ]
    .into_iter()
    .map(|(label, machine)| {
        let nranks = machine.gpu_job_size();
        let placement = Placement::block_gpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = GpuBcastSpec {
            placement,
            tree,
            msg_bytes: 32 << 20,
            cfg: AdaptConfig::default(),
            staging: true,
        };
        let world = World::gpu(machine, nranks, ClusterNoise::silent(nranks));
        let res = world.run(spec.programs());
        (
            label.to_string(),
            vec![format!("{:.3}ms", res.makespan.as_micros_f64() / 1000.0)],
        )
    })
    .collect();
    print_table(
        "Sensitivity: NVLink peers vs PCIe peers (32MB ADAPT GPU bcast, 16 GPUs)",
        &["time".to_string()],
        &rows,
    );
}

fn main() {
    let args = parse_args();
    match args.get("study").map(String::as_str) {
        Some("m_over_n") => study_m_over_n(),
        Some("staging") => study_staging(),
        Some("gpu_reduce") => study_gpu_reduce(),
        Some("seg_size") => study_seg_size(),
        Some("nvlink") => study_nvlink(),
        _ => {
            study_m_over_n();
            study_staging();
            study_gpu_reduce();
            study_seg_size();
            study_nvlink();
        }
    }
}
