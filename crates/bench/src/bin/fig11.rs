//! Figure 11: broadcast and reduce with GPU data on the PSG-like cluster.
//!
//! - `--mode sweep` (11a): message sizes 1–32 MB on 8 nodes (32 GPUs);
//! - `--mode scaling` (11b): 1–8 nodes at 32 MB.
//! - default: both.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin fig11 [-- --mode sweep|scaling]
//! ```

use adapt_bench::{parse_args, pool_grid, print_table};
use adapt_collectives::OpKind;
use adapt_gpu::{run_gpu_once, GpuCase, GpuLibrary};
use adapt_topology::profiles;

const LIBS: [GpuLibrary; 3] = [
    GpuLibrary::Mvapich,
    GpuLibrary::OmpiDefault,
    GpuLibrary::OmpiAdapt,
];

fn sweep() {
    let sizes: Vec<u64> = [1u64, 2, 4, 8, 16, 32].iter().map(|m| m << 20).collect();
    for op in [OpKind::Bcast, OpKind::Reduce] {
        let cells: Vec<Vec<f64>> = pool_grid(&LIBS, &sizes, move |library, msg_bytes| {
            let machine = profiles::psg(8);
            let case = GpuCase {
                nranks: machine.gpu_job_size(),
                machine,
                op,
                library,
                msg_bytes,
            };
            run_gpu_once(&case).0 / 1000.0
        });
        let header: Vec<String> = sizes.iter().map(|s| format!("{}MB", s >> 20)).collect();
        let rows: Vec<(String, Vec<String>)> = LIBS
            .iter()
            .zip(&cells)
            .map(|(lib, t)| {
                (
                    lib.label().to_string(),
                    t.iter().map(|x| format!("{x:.3}ms")).collect(),
                )
            })
            .collect();
        print_table(
            &format!(
                "Figure 11a: GPU {} vs message size, 8 nodes / 32 GPUs",
                match op {
                    OpKind::Bcast => "Broadcast",
                    OpKind::Reduce => "Reduce",
                }
            ),
            &header,
            &rows,
        );
        let adapt = cells[2].last().unwrap();
        println!(
            "speedup of OMPI-adapt at 32MB: {:.1}x vs MVAPICH, {:.1}x vs OMPI-default",
            cells[0].last().unwrap() / adapt,
            cells[1].last().unwrap() / adapt
        );
    }
}

fn scaling() {
    let node_counts = [1u32, 2, 4, 8];
    for op in [OpKind::Bcast, OpKind::Reduce] {
        let cells: Vec<Vec<f64>> = pool_grid(&LIBS, &node_counts, move |library, nodes| {
            let machine = profiles::psg(nodes);
            let case = GpuCase {
                nranks: machine.gpu_job_size(),
                machine,
                op,
                library,
                msg_bytes: 32 << 20,
            };
            run_gpu_once(&case).0 / 1000.0
        });
        let header: Vec<String> = node_counts
            .iter()
            .map(|n| format!("{}:{}", n, n * 4))
            .collect();
        let rows: Vec<(String, Vec<String>)> = LIBS
            .iter()
            .zip(&cells)
            .map(|(lib, t)| {
                (
                    lib.label().to_string(),
                    t.iter().map(|x| format!("{x:.3}ms")).collect(),
                )
            })
            .collect();
        print_table(
            &format!(
                "Figure 11b: GPU {} strong scaling (nodes:GPUs), 32MB",
                match op {
                    OpKind::Bcast => "Broadcast",
                    OpKind::Reduce => "Reduce",
                }
            ),
            &header,
            &rows,
        );
    }
}

fn main() {
    let args = parse_args();
    match args.get("mode").map(String::as_str) {
        Some("sweep") => sweep(),
        Some("scaling") => scaling(),
        _ => {
            sweep();
            scaling();
        }
    }
}
