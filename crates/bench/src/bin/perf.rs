//! The self-timed perf harness: hot-path microbenches plus the quick-scale
//! fig8 end-to-end run, recorded as a benchmark trajectory.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin perf -- [--scale quick|full] \
//!     [--out BENCH_PR2.json] [--baseline previous.json]
//! ```
//!
//! With `--baseline`, the previous run's numbers are folded in as
//! `before_*` fields with per-scenario speedups — useful for one-off
//! local A/B comparisons. The *recorded* trajectory across PRs lives in
//! the barometer ledger instead (`results/barometer.jsonl`, absolute
//! numbers, ratios derived at read time): use
//! `cargo run --release -p adapt-bench --bin bench -- record|diff|rank`
//! (see EXPERIMENTS.md, "Benchmark barometer and the PR 3 reclaim").

use adapt_bench::perf::{parse_baseline, run_suite, to_json};
use adapt_bench::{parse_args, CpuMachine, Scale};

fn main() {
    let args = parse_args();
    let scale = Scale::from_args(&args);
    let machine = CpuMachine::from_args(&args);
    let out = args
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".into());

    let results = run_suite(scale, machine);
    for r in &results {
        println!(
            "{:<24} {:>10.2} ms  {:>12.0} events/s  probes={} share_recomputes={}",
            r.name, r.wall_ms, r.events_per_sec, r.match_probes, r.share_recomputes
        );
    }

    let baselines = match args.get("baseline") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
            parse_baseline(&text)
        }
        None => Vec::new(),
    };
    let json = to_json(scale, &results, &baselines);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
