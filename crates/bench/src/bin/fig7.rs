//! Figure 7: noise impact on broadcast and reduce (4 MB messages).
//!
//! Noise model: 10 Hz windows of uniform duration (0–10 ms ≙ "5%",
//! 0–20 ms ≙ "10%"), injected on one rank per 4 nodes — the intensity
//! calibrated to the paper's observed interference regime (the paper does
//! not state its injection layout; see EXPERIMENTS.md E1 for the scope
//! sensitivity study).
//!
//! ```text
//! cargo run --release -p adapt-bench --bin fig7 -- --machine cori [--scale quick]
//! ```

use adapt_bench::{parse_args, pool_grid, print_table, CpuMachine, Scale};
use adapt_collectives::{run_trial, CollectiveCase, Library, NoiseScope, OpKind, Trial};

fn main() {
    let args = parse_args();
    let machine = CpuMachine::from_args(&args);
    let scale = Scale::from_args(&args);
    let (spec, nranks) = machine.instantiate(scale);
    let iterations = if scale == Scale::Quick { 4 } else { 12 };

    let libs: Vec<Library> = match machine {
        CpuMachine::Cori => vec![
            Library::IntelMpi,
            Library::CrayMpi,
            Library::OmpiDefault,
            Library::OmpiAdapt,
        ],
        CpuMachine::Stampede2 => vec![
            Library::IntelMpi,
            Library::Mvapich,
            Library::OmpiDefault,
            Library::OmpiAdapt,
        ],
    };
    let noise_levels = [0.0, 5.0, 10.0];

    for op in [OpKind::Bcast, OpKind::Reduce] {
        let spec = spec.clone();
        let cells: Vec<Vec<f64>> =
            pool_grid(&libs, &noise_levels, move |library, noise_percent| {
                run_trial(&Trial {
                    case: CollectiveCase {
                        machine: spec.clone(),
                        nranks,
                        op,
                        library,
                        msg_bytes: 4 << 20,
                    },
                    noise_percent,
                    scope: NoiseScope::SparseNodes(4),
                    iterations,
                    repeats: 4,
                    seed: 2018,
                })
                .mean_us
                    / 1000.0
            });

        let header = vec![
            "no noise".to_string(),
            "5% noise".to_string(),
            "10% noise".to_string(),
            "slow@5%".to_string(),
            "slow@10%".to_string(),
        ];
        let rows: Vec<(String, Vec<String>)> = libs
            .iter()
            .zip(&cells)
            .map(|(lib, t)| {
                (
                    lib.label(),
                    vec![
                        format!("{:.2}ms", t[0]),
                        format!("{:.2}ms", t[1]),
                        format!("{:.2}ms", t[2]),
                        format!("{:.0}%", (t[1] / t[0] - 1.0) * 100.0),
                        format!("{:.0}%", (t[2] / t[0] - 1.0) * 100.0),
                    ],
                )
            })
            .collect();
        print_table(
            &format!(
                "Figure 7 ({}): {} with noise injection, 4MB, {} ranks, {} iterations",
                machine.name(),
                match op {
                    OpKind::Bcast => "Broadcast",
                    OpKind::Reduce => "Reduce",
                },
                nranks,
                iterations
            ),
            &header,
            &rows,
        );
    }
}
