//! Figure 10: strong scaling of broadcast and reduce with CPU data on
//! Cori — 128 to 1024 ranks (8 to 32 nodes), 4 MB messages. ADAPT's chain
//! cost is ~independent of rank count (Hockney: `T ≈ ns(α + βm)` once the
//! pipeline is full), so its curve should stay flat.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin fig10 [--scale quick]
//! ```

use adapt_bench::{parse_args, pool_grid, print_table, Scale};
use adapt_collectives::{run_once, CollectiveCase, Library, OpKind};
use adapt_topology::profiles;

fn main() {
    let args = parse_args();
    let scale = Scale::from_args(&args);
    // 8, 16, 24, 32 nodes -> 256..1024 ranks (paper sweeps 128-1024; 128
    // ranks = 4 nodes on the 32-core Cori nodes).
    let node_counts: Vec<u32> = if scale == Scale::Quick {
        vec![4, 8]
    } else {
        vec![4, 8, 16, 32]
    };
    let libs = [
        Library::CrayMpi,
        Library::IntelMpi,
        Library::OmpiDefault,
        Library::OmpiAdapt,
    ];

    for op in [OpKind::Bcast, OpKind::Reduce] {
        let cells: Vec<Vec<f64>> = pool_grid(&libs, &node_counts, move |library, nodes| {
            let machine = profiles::cori(nodes);
            let nranks = machine.cpu_job_size();
            let case = CollectiveCase {
                machine,
                nranks,
                op,
                library,
                msg_bytes: 4 << 20,
            };
            run_once(&case, 0.0, 1).0 / 1000.0
        });

        let header: Vec<String> = node_counts.iter().map(|n| format!("{}p", n * 32)).collect();
        let rows: Vec<(String, Vec<String>)> = libs
            .iter()
            .zip(&cells)
            .map(|(lib, t)| (lib.label(), t.iter().map(|x| format!("{x:.3}ms")).collect()))
            .collect();
        print_table(
            &format!(
                "Figure 10: Strong scalability of {} (Cori, 4MB)",
                match op {
                    OpKind::Bcast => "Broadcast",
                    OpKind::Reduce => "Reduce",
                }
            ),
            &header,
            &rows,
        );

        // Flatness metric for ADAPT: time at max scale / time at min scale.
        let adapt = cells.last().unwrap();
        println!(
            "OMPI-adapt growth from {}p to {}p: {:.2}x (ideal: ~1.0x)",
            node_counts[0] * 32,
            node_counts.last().unwrap() * 32,
            adapt.last().unwrap() / adapt[0]
        );
    }
}
