//! Figure 8: topology-aware broadcast and reduce vs all the Intel-MPI
//! topology-aware algorithm selections, plus OMPI-default-topo (the
//! Waitall engine on ADAPT's own tree) and OMPI-adapt.
//!
//! ```text
//! cargo run --release -p adapt-bench --bin fig8 -- --machine cori [--scale quick]
//! ```

use adapt_bench::{parse_args, pool_grid, print_table, size_label, CpuMachine, Scale, FIG89_SIZES};
use adapt_collectives::{run_once, CollectiveCase, IntelAlg, Library, OpKind};

fn main() {
    let args = parse_args();
    let machine = CpuMachine::from_args(&args);
    let scale = Scale::from_args(&args);
    let (spec, nranks) = machine.instantiate(scale);

    let bcast_libs: Vec<Library> = vec![
        Library::IntelTopo(IntelAlg::Binomial),
        Library::IntelTopo(IntelAlg::RecursiveDoubling),
        Library::IntelTopo(IntelAlg::Ring),
        Library::IntelTopo(IntelAlg::ShmFlat),
        Library::IntelTopo(IntelAlg::ShmKnomial),
        Library::IntelTopo(IntelAlg::ShmKnary),
        Library::OmpiDefaultTopo,
        Library::OmpiAdapt,
    ];
    let reduce_libs: Vec<Library> = vec![
        Library::IntelTopo(IntelAlg::Shumilin),
        Library::IntelTopo(IntelAlg::Binomial),
        Library::IntelTopo(IntelAlg::Rabenseifner),
        Library::IntelTopo(IntelAlg::ShmFlat),
        Library::IntelTopo(IntelAlg::ShmKnomial),
        Library::IntelTopo(IntelAlg::ShmKnary),
        Library::IntelTopo(IntelAlg::ShmBinomial),
        Library::OmpiDefaultTopo,
        Library::OmpiAdapt,
    ];

    for (op, libs) in [(OpKind::Bcast, bcast_libs), (OpKind::Reduce, reduce_libs)] {
        let spec = spec.clone();
        let cells: Vec<Vec<f64>> = pool_grid(&libs, &FIG89_SIZES, move |library, msg_bytes| {
            let case = CollectiveCase {
                machine: spec.clone(),
                nranks,
                op,
                library,
                msg_bytes,
            };
            run_once(&case, 0.0, 1).0 / 1000.0
        });

        let header: Vec<String> = FIG89_SIZES.iter().map(|&s| size_label(s)).collect();
        let rows: Vec<(String, Vec<String>)> = libs
            .iter()
            .zip(&cells)
            .map(|(lib, t)| (lib.label(), t.iter().map(|x| format!("{x:.3}ms")).collect()))
            .collect();
        print_table(
            &format!(
                "Figure 8 ({}): Topology-aware {} vs message size, {} ranks",
                machine.name(),
                match op {
                    OpKind::Bcast => "Broadcast",
                    OpKind::Reduce => "Reduce",
                },
                nranks
            ),
            &header,
            &rows,
        );

        // The §5.1.2 claim: same tree, ~20% faster than OMPI-default-topo
        // at large messages thanks to independent per-lane progress.
        let adapt = cells.last().unwrap().last().unwrap();
        let topo = cells[cells.len() - 2].last().unwrap();
        println!(
            "OMPI-adapt vs OMPI-default-topo at 4M: {:.2}x",
            topo / adapt
        );
    }
}
