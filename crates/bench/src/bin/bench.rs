//! The barometer CLI: record, compare, and render benchmark history.
//!
//! ```text
//! bench record [--quick] [--threads N] [--pr N] [--rev R] [--filter SUBSTR]
//!              [--ledger results/barometer.jsonl] [--scenarios DIR]
//! bench diff   [--from SEL] [--to SEL] [--scale quick|full] [--gate PCT]
//! bench rank   [--scale quick|full]
//! bench import FILE --pr N [--rev R]
//! ```
//!
//! Selectors are `latest`, `prev`, `pr:N`, or `rev:PREFIX`; `diff`
//! defaults to `prev -> latest`, which is what the CI gate wants right
//! after a `record`: the freshly appended entry against the last
//! committed one. `--gate PCT` makes `diff` exit non-zero when any
//! scenario's events/sec drops more than PCT percent.
//!
//! `import` backfills the ledger from a legacy `BENCH_PRn.json`
//! snapshot, taking only its absolute numbers (the folded-in `before_*`
//! baseline is the chained-ratio bug the ledger replaces).
//!
//! `record --threads N` fans the fig8 sweeps out over an N-wide worker
//! pool (other scenario kinds ignore it). The recorded entries carry the
//! width, and `diff`/`rank` treat each width as its own series — a
//! threaded measurement is never paired against a sequential one.

use adapt_bench::barometer::{
    append_entries, diff, gate, import_legacy, load_corpus, load_ledger, render_diff, render_rank,
    LedgerEntry, Sel, CURRENT_PR, LEDGER_PATH,
};
use adapt_bench::Scale;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    cmd: String,
    positional: Vec<String>,
    quick: bool,
    threads: Option<usize>,
    pr: Option<u32>,
    rev: Option<String>,
    ledger: PathBuf,
    scenarios: PathBuf,
    filter: Option<String>,
    from: Sel,
    to: Sel,
    scale: Option<String>,
    gate_pct: Option<f64>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        cmd: String::new(),
        positional: Vec::new(),
        quick: false,
        threads: None,
        pr: None,
        rev: None,
        ledger: PathBuf::from(LEDGER_PATH),
        scenarios: PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios"),
        filter: None,
        from: Sel::Prev,
        to: Sel::Latest,
        scale: None,
        gate_pct: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => cli.quick = true,
            "--threads" => {
                let t: usize = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                cli.threads = Some(t);
            }
            "--pr" => {
                cli.pr = Some(
                    value(&mut args, "--pr")?
                        .parse()
                        .map_err(|e| format!("--pr: {e}"))?,
                )
            }
            "--rev" => cli.rev = Some(value(&mut args, "--rev")?),
            "--ledger" => cli.ledger = PathBuf::from(value(&mut args, "--ledger")?),
            "--scenarios" => cli.scenarios = PathBuf::from(value(&mut args, "--scenarios")?),
            "--filter" => cli.filter = Some(value(&mut args, "--filter")?),
            "--from" => cli.from = Sel::parse(&value(&mut args, "--from")?)?,
            "--to" => cli.to = Sel::parse(&value(&mut args, "--to")?)?,
            "--scale" => {
                let s = value(&mut args, "--scale")?;
                if s != "quick" && s != "full" {
                    return Err(format!("--scale must be quick or full, got `{s}`"));
                }
                cli.scale = Some(s);
            }
            "--gate" => {
                cli.gate_pct = Some(
                    value(&mut args, "--gate")?
                        .parse()
                        .map_err(|e| format!("--gate: {e}"))?,
                )
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            word if cli.cmd.is_empty() => cli.cmd = word.to_string(),
            word => cli.positional.push(word.to_string()),
        }
    }
    if cli.cmd.is_empty() {
        return Err("usage: bench <record|diff|rank|import> [flags]".to_string());
    }
    Ok(cli)
}

/// Short rev of the working tree, or `unknown` outside a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn run(cli: Cli) -> Result<(), String> {
    match cli.cmd.as_str() {
        "record" => {
            let scale = if cli.quick { Scale::Quick } else { Scale::Full };
            let scale_name = if cli.quick { "quick" } else { "full" };
            let pr = cli.pr.unwrap_or(CURRENT_PR);
            let rev = cli.rev.unwrap_or_else(git_rev);
            let corpus = load_corpus(&cli.scenarios)?;
            let corpus: Vec<_> = match &cli.filter {
                Some(f) => corpus.into_iter().filter(|s| s.name.contains(f)).collect(),
                None => corpus,
            };
            if corpus.is_empty() {
                return Err("filter matched no scenarios".to_string());
            }
            let mut entries = Vec::new();
            for s in &corpus {
                let r = s.run_with_threads(scale, cli.threads);
                println!(
                    "{:<32} {:>10.2} ms ({:.2}-{:.2})  {:>12.0} events/s  t{}",
                    r.name, r.wall_ms, r.wall_min_ms, r.wall_max_ms, r.events_per_sec, r.threads
                );
                entries.push(LedgerEntry::from_result(&r, pr, &rev, scale));
            }
            append_entries(&cli.ledger, &entries)?;
            println!(
                "appended {} {scale_name}-scale entries (pr{pr}, {rev}) to {}",
                entries.len(),
                cli.ledger.display()
            );
            Ok(())
        }
        "diff" => {
            let ledger = load_ledger(&cli.ledger)?;
            if ledger.is_empty() {
                return Err(format!("ledger {} is empty", cli.ledger.display()));
            }
            let rows = diff(&ledger, &cli.from, &cli.to, cli.scale.as_deref());
            if rows.is_empty() {
                return Err("selectors matched no scenario pairs".to_string());
            }
            print!("{}", render_diff(&rows));
            match cli.gate_pct {
                Some(pct) => gate(&rows, pct),
                None => Ok(()),
            }
        }
        "rank" => {
            let ledger = load_ledger(&cli.ledger)?;
            if ledger.is_empty() {
                return Err(format!("ledger {} is empty", cli.ledger.display()));
            }
            print!("{}", render_rank(&ledger, cli.scale.as_deref()));
            Ok(())
        }
        "import" => {
            let file = cli
                .positional
                .first()
                .ok_or("import needs a legacy BENCH_PRn.json path")?;
            let pr = cli.pr.ok_or("import needs --pr N (the snapshot's PR)")?;
            let rev = cli.rev.unwrap_or_else(|| "unknown".to_string());
            let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
            let entries = import_legacy(&text, pr, &rev)?;
            append_entries(&cli.ledger, &entries)?;
            println!(
                "imported {} entries from {file} (pr{pr}, {rev}) into {}",
                entries.len(),
                cli.ledger.display()
            );
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn main() -> ExitCode {
    match parse_cli().and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench: {e}");
            ExitCode::FAILURE
        }
    }
}
