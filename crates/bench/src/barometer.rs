//! The benchmark barometer: a declarative scenario corpus plus an
//! append-only measurement ledger, in the style of BurntSushi's rebar.
//!
//! The pre-barometer harness recorded one `BENCH_PRn.json` per PR, each
//! folding the *previous* file in as its baseline. That chains ratios:
//! PR 4's "speedup" was measured against PR 3's already-regressed
//! numbers, so the trajectory read as a sequence of local wins while the
//! absolute throughput was still below PR 2. The barometer stores
//! **absolute measurements only** — one JSONL line per (scenario, pr,
//! git rev) — and ratios exist only in the eye of `bench diff`, which
//! can compare any two ledger entries, however far apart.
//!
//! Three pieces:
//!
//! * **Corpus** — `crates/bench/scenarios/*.toml`, one declarative file
//!   per scenario (a flat TOML subset; unknown keys are rejected so a
//!   typo'd parameter fails loudly instead of silently measuring the
//!   default).
//! * **Ledger** — `results/barometer.jsonl`, append-only, one flat JSON
//!   object per line. Committed to the repo so every checkout carries
//!   the full measurement history.
//! * **CLI** — `bench record | diff | rank | import` (see
//!   `src/bin/bench.rs`), with `diff --gate <pct>` as the CI tripwire
//!   that fails the build on an events/sec drop.

use crate::perf::{
    bench_fig8_with, bench_flow_churn_with, bench_matching_posted_with,
    bench_matching_unexpected_with, ChurnParams, Fig8Mode, Fig8Params, MatchingParams, PerfResult,
};
use crate::Scale;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// The PR this working tree belongs to — the default `pr` stamp for
/// freshly recorded ledger entries.
pub const CURRENT_PR: u32 = 8;

/// Default ledger location, relative to the repo root.
pub const LEDGER_PATH: &str = "results/barometer.jsonl";

// ---------------------------------------------------------------------
// Flat TOML subset parser.
// ---------------------------------------------------------------------

/// A scenario-file value: the corpus needs nothing richer.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlVal {
    /// Double-quoted string.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
}

impl TomlVal {
    fn type_name(&self) -> &'static str {
        match self {
            TomlVal::Str(_) => "string",
            TomlVal::Int(_) => "integer",
            TomlVal::Float(_) => "float",
            TomlVal::Bool(_) => "bool",
        }
    }
}

/// Parse a flat `key = value` TOML document: comments and blank lines
/// are skipped, tables/arrays are rejected (the corpus is deliberately
/// flat), duplicate keys are rejected.
pub fn parse_flat_toml(text: &str) -> Result<Vec<(String, TomlVal)>, String> {
    let mut out: Vec<(String, TomlVal)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {}: tables are not supported (corpus files are flat)",
                lineno + 1
            ));
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(format!("line {}: malformed key `{key}`", lineno + 1));
        }
        if out.iter().any(|(k, _)| k == key) {
            return Err(format!("line {}: duplicate key `{key}`", lineno + 1));
        }
        let val = val.trim();
        let parsed = if let Some(rest) = val.strip_prefix('"') {
            let end = rest
                .find('"')
                .ok_or_else(|| format!("line {}: unterminated string", lineno + 1))?;
            let tail = rest[end + 1..].trim();
            if !tail.is_empty() && !tail.starts_with('#') {
                return Err(format!("line {}: trailing junk after string", lineno + 1));
            }
            TomlVal::Str(rest[..end].to_string())
        } else {
            // Strip a trailing comment, then try bool / int / float.
            let bare = val.split('#').next().unwrap_or("").trim();
            match bare {
                "true" => TomlVal::Bool(true),
                "false" => TomlVal::Bool(false),
                _ => {
                    let cleaned: String = bare.chars().filter(|&c| c != '_').collect();
                    if let Ok(i) = cleaned.parse::<i64>() {
                        TomlVal::Int(i)
                    } else if let Ok(f) = cleaned.parse::<f64>() {
                        TomlVal::Float(f)
                    } else {
                        return Err(format!(
                            "line {}: unparseable value `{bare}` for key `{key}`",
                            lineno + 1
                        ));
                    }
                }
            }
        };
        out.push((key.to_string(), parsed));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Scenario corpus.
// ---------------------------------------------------------------------

/// One corpus scenario: a stable name plus the fully validated
/// parameters of the harness function it drives.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Ledger key. Must be unique across the corpus.
    pub name: String,
    /// Which harness function runs, with its parameters.
    pub kind: Kind,
}

/// The scenario kinds the corpus can express, mirroring the harness's
/// parameterized entry points. Scale-dependent sizes carry both
/// variants; the choice is made at `record` time.
#[derive(Clone, Debug)]
pub enum Kind {
    /// Posted-receive matching stress ([`bench_matching_posted_with`]).
    MatchingPosted {
        quick: MatchingParams,
        full: MatchingParams,
    },
    /// Unexpected-queue matching stress ([`bench_matching_unexpected_with`]).
    MatchingUnexpected {
        quick: MatchingParams,
        full: MatchingParams,
    },
    /// Fair-share churn on a congested backbone ([`bench_flow_churn_with`]).
    FlowChurn {
        quick: ChurnParams,
        full: ChurnParams,
    },
    /// End-to-end fig8 sweep ([`bench_fig8_with`]); same at either scale.
    Fig8(Fig8Params),
}

/// A consuming view over a scenario's parsed key/value pairs: every
/// accessor removes the key, and [`Pairs::finish`] rejects whatever is
/// left — the "unknown key" guarantee.
struct Pairs {
    file: String,
    pairs: Vec<(String, TomlVal)>,
}

impl Pairs {
    fn take(&mut self, key: &str) -> Option<TomlVal> {
        let i = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(i).1)
    }

    fn string(&mut self, key: &str) -> Result<String, String> {
        match self.take(key) {
            Some(TomlVal::Str(s)) => Ok(s),
            Some(v) => Err(format!(
                "{}: key `{key}` must be a string, got {}",
                self.file,
                v.type_name()
            )),
            None => Err(format!("{}: missing required key `{key}`", self.file)),
        }
    }

    fn int(&mut self, key: &str, default: i64) -> Result<i64, String> {
        match self.take(key) {
            Some(TomlVal::Int(i)) if i >= 0 => Ok(i),
            Some(v) => Err(format!(
                "{}: key `{key}` must be a non-negative integer, got {v:?}",
                self.file
            )),
            None => Ok(default),
        }
    }

    fn req_int(&mut self, key: &str) -> Result<i64, String> {
        match self.take(key) {
            Some(TomlVal::Int(i)) if i > 0 => Ok(i),
            Some(v) => Err(format!(
                "{}: key `{key}` must be a positive integer, got {v:?}",
                self.file
            )),
            None => Err(format!("{}: missing required key `{key}`", self.file)),
        }
    }

    fn float(&mut self, key: &str) -> Result<f64, String> {
        match self.take(key) {
            Some(TomlVal::Float(f)) => Ok(f),
            Some(TomlVal::Int(i)) => Ok(i as f64),
            Some(v) => Err(format!(
                "{}: key `{key}` must be a number, got {}",
                self.file,
                v.type_name()
            )),
            None => Err(format!("{}: missing required key `{key}`", self.file)),
        }
    }

    fn finish(self) -> Result<(), String> {
        if let Some((k, _)) = self.pairs.first() {
            return Err(format!("{}: unknown key `{k}`", self.file));
        }
        Ok(())
    }
}

impl Scenario {
    /// Validate one parsed corpus file. `file` names the source in
    /// error messages.
    pub fn from_pairs(file: &str, pairs: Vec<(String, TomlVal)>) -> Result<Scenario, String> {
        let mut p = Pairs {
            file: file.to_string(),
            pairs,
        };
        let name = p.string("name")?;
        let kind = p.string("kind")?;
        let kind = match kind.as_str() {
            "matching_posted" | "matching_unexpected" => {
                let warmup = p.int("warmup", 1)? as usize;
                let iters = p.req_int("iters")? as usize;
                let bytes = p.req_int("bytes")? as u64;
                let mk = |count: i64| MatchingParams {
                    count: count as u32,
                    bytes,
                    warmup,
                    iters,
                };
                let quick = mk(p.req_int("count_quick")?);
                let full = mk(p.req_int("count_full")?);
                if kind == "matching_posted" {
                    Kind::MatchingPosted { quick, full }
                } else {
                    Kind::MatchingUnexpected { quick, full }
                }
            }
            "flow_churn" => {
                let warmup = p.int("warmup", 1)? as usize;
                let iters = p.req_int("iters")? as usize;
                let lanes = p.req_int("lanes")? as u32;
                let mk = |flows: i64| ChurnParams {
                    lanes,
                    flows: flows as u64,
                    warmup,
                    iters,
                };
                let quick = mk(p.req_int("flows_quick")?);
                let full = mk(p.req_int("flows_full")?);
                Kind::FlowChurn { quick, full }
            }
            "fig8_plain" | "fig8_traced" | "fig8_streaming" | "fig8_inert_faults"
            | "fig8_inert_kill" | "fig8_lossy" | "fig8_monitored" => {
                let warmup = p.int("warmup", 1)? as usize;
                let iters = p.req_int("iters")? as usize;
                let nodes = p.req_int("nodes")? as u32;
                let nranks = p.req_int("nranks")? as u32;
                let threads = (p.int("threads", 1)? as usize).max(1);
                let mode = match kind.as_str() {
                    "fig8_plain" => Fig8Mode::Plain,
                    "fig8_traced" => Fig8Mode::Traced,
                    "fig8_streaming" => Fig8Mode::Streaming,
                    "fig8_inert_faults" => Fig8Mode::InertFaults,
                    "fig8_inert_kill" => Fig8Mode::InertKill,
                    "fig8_monitored" => Fig8Mode::Monitored,
                    _ => Fig8Mode::Lossy(p.float("loss")?),
                };
                Kind::Fig8(Fig8Params {
                    nodes,
                    nranks,
                    warmup,
                    iters,
                    mode,
                    threads,
                })
            }
            other => return Err(format!("{file}: unknown kind `{other}`")),
        };
        p.finish()?;
        Ok(Scenario { name, kind })
    }

    /// Run the scenario at the given scale.
    pub fn run(&self, scale: Scale) -> PerfResult {
        self.run_with_threads(scale, None)
    }

    /// Run the scenario at the given scale, optionally overriding the
    /// worker-pool width. Only the fig8 sweep has independent per-size
    /// runs to fan out; the other kinds are single-world hot-path probes
    /// and ignore the override.
    pub fn run_with_threads(&self, scale: Scale, threads: Option<usize>) -> PerfResult {
        fn pick<T>(scale: Scale, q: T, f: T) -> T {
            match scale {
                Scale::Quick => q,
                Scale::Full => f,
            }
        }
        let mut r = match &self.kind {
            Kind::MatchingPosted { quick, full } => {
                bench_matching_posted_with(pick(scale, quick, full))
            }
            Kind::MatchingUnexpected { quick, full } => {
                bench_matching_unexpected_with(pick(scale, quick, full))
            }
            Kind::FlowChurn { quick, full } => bench_flow_churn_with(pick(scale, quick, full)),
            Kind::Fig8(p) => {
                let mut p = *p;
                if let Some(t) = threads {
                    p.threads = t.max(1);
                }
                bench_fig8_with(&self.name, &p)
            }
        };
        r.name = self.name.clone();
        r
    }
}

/// Load every `*.toml` under `dir`, sorted by file name so the corpus
/// runs in a stable order. Duplicate scenario names are rejected.
pub fn load_corpus(dir: &Path) -> Result<Vec<Scenario>, String> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("read corpus dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        let shown = f.file_name().unwrap_or_default().to_string_lossy();
        let pairs = parse_flat_toml(&text).map_err(|e| format!("{shown}: {e}"))?;
        let s = Scenario::from_pairs(&shown, pairs)?;
        if out.iter().any(|o: &Scenario| o.name == s.name) {
            return Err(format!("{shown}: duplicate scenario name `{}`", s.name));
        }
        out.push(s);
    }
    if out.is_empty() {
        return Err(format!("no *.toml scenarios under {}", dir.display()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The ledger.
// ---------------------------------------------------------------------

/// One absolute measurement: a scenario run pinned to a PR and git rev.
/// No `before_*` fields by design — ratios are computed by `diff`, never
/// stored.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerEntry {
    /// Corpus scenario name.
    pub scenario: String,
    /// PR sequence number of the measured tree.
    pub pr: u32,
    /// Short git rev of the measured tree (`unknown` when not a checkout).
    pub rev: String,
    /// `quick` or `full`.
    pub scale: String,
    /// Median wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Fastest timed iteration, milliseconds.
    pub wall_min_ms: f64,
    /// Slowest timed iteration, milliseconds.
    pub wall_max_ms: f64,
    /// Simulator events per iteration.
    pub events: u64,
    /// The figure of merit.
    pub events_per_sec: f64,
    /// Worker threads the scenario ran on (1 = sequential). `diff` and
    /// `rank` key on this: a threaded measurement is a different series
    /// from a sequential one and the two are never silently paired.
    pub threads: u32,
    /// Logical cores of the recording host (0 on ledger lines written
    /// before this field existed) — context for reading a threaded
    /// number recorded on different hardware.
    pub host_cores: u32,
}

impl LedgerEntry {
    /// Build from a harness result plus provenance.
    pub fn from_result(r: &PerfResult, pr: u32, rev: &str, scale: Scale) -> LedgerEntry {
        LedgerEntry {
            scenario: r.name.clone(),
            pr,
            rev: rev.to_string(),
            scale: match scale {
                Scale::Quick => "quick",
                Scale::Full => "full",
            }
            .to_string(),
            wall_ms: r.wall_ms,
            wall_min_ms: r.wall_min_ms,
            wall_max_ms: r.wall_max_ms,
            events: r.events,
            events_per_sec: r.events_per_sec,
            threads: r.threads as u32,
            host_cores: adapt_sim::WorkerPool::host_threads() as u32,
        }
    }

    /// The series this entry belongs to when pairing measurements: the
    /// scenario name, qualified by the pool width whenever it is not the
    /// historical sequential default. Sequential entries (including
    /// pre-field ledger lines) keep the bare scenario name, so the
    /// recorded history reads unchanged.
    pub fn series(&self) -> String {
        if self.threads <= 1 {
            self.scenario.clone()
        } else {
            format!("{}@threads={}", self.scenario, self.threads)
        }
    }

    /// One flat JSON object, no trailing newline.
    pub fn to_line(&self) -> String {
        format!(
            "{{\"scenario\": \"{}\", \"pr\": {}, \"rev\": \"{}\", \"scale\": \"{}\", \
             \"wall_ms\": {:.3}, \"wall_min_ms\": {:.3}, \"wall_max_ms\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.1}, \"threads\": {}, \"host_cores\": {}}}",
            self.scenario,
            self.pr,
            self.rev,
            self.scale,
            self.wall_ms,
            self.wall_min_ms,
            self.wall_max_ms,
            self.events,
            self.events_per_sec,
            self.threads,
            self.host_cores
        )
    }

    /// Parse one ledger line. Tolerates unknown fields (forward
    /// compatibility) but requires every field above.
    pub fn parse_line(line: &str) -> Result<LedgerEntry, String> {
        let inner = line
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("not a JSON object: {line}"))?;
        let mut fields: BTreeMap<String, String> = BTreeMap::new();
        // Split on top-level commas, respecting double-quoted strings.
        let mut depth_in_str = false;
        let mut start = 0usize;
        let bytes = inner.as_bytes();
        let mut parts: Vec<&str> = Vec::new();
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'"' => depth_in_str = !depth_in_str,
                b',' if !depth_in_str => {
                    parts.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&inner[start..]);
        for part in parts {
            let (k, v) = part
                .split_once(':')
                .ok_or_else(|| format!("malformed field `{part}`"))?;
            fields.insert(
                k.trim().trim_matches('"').to_string(),
                v.trim().trim_matches('"').to_string(),
            );
        }
        let get = |k: &str| -> Result<String, String> {
            fields
                .get(k)
                .cloned()
                .ok_or_else(|| format!("missing field `{k}` in ledger line"))
        };
        let num = |k: &str| -> Result<f64, String> {
            get(k)?.parse().map_err(|e| format!("field `{k}`: {e}"))
        };
        Ok(LedgerEntry {
            scenario: get("scenario")?,
            pr: get("pr")?.parse().map_err(|e| format!("field `pr`: {e}"))?,
            rev: get("rev")?,
            scale: get("scale")?,
            wall_ms: num("wall_ms")?,
            wall_min_ms: num("wall_min_ms")?,
            wall_max_ms: num("wall_max_ms")?,
            events: get("events")?
                .parse()
                .map_err(|e| format!("field `events`: {e}"))?,
            events_per_sec: num("events_per_sec")?,
            // Absent on ledger lines written before the sharded core:
            // those were all sequential runs on unrecorded hardware.
            threads: match fields.get("threads") {
                Some(v) => v.parse().map_err(|e| format!("field `threads`: {e}"))?,
                None => 1,
            },
            host_cores: match fields.get("host_cores") {
                Some(v) => v.parse().map_err(|e| format!("field `host_cores`: {e}"))?,
                None => 0,
            },
        })
    }
}

/// Load the full ledger (empty if the file doesn't exist yet).
pub fn load_ledger(path: &Path) -> Result<Vec<LedgerEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(LedgerEntry::parse_line)
        .collect()
}

/// Append entries to the ledger, creating it (and its directory) on
/// first use. Never rewrites existing lines — the ledger is history.
pub fn append_entries(path: &Path, entries: &[LedgerEntry]) -> Result<(), String> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    for e in entries {
        writeln!(f, "{}", e.to_line()).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// diff / rank.
// ---------------------------------------------------------------------

/// How `diff` picks an entry per scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum Sel {
    /// Newest entry for the scenario.
    Latest,
    /// Newest entry *before* the one `Latest` picks — the default
    /// baseline for the CI gate.
    Prev,
    /// Newest entry recorded for the given PR.
    Pr(u32),
    /// Newest entry whose rev starts with the given prefix.
    Rev(String),
}

impl Sel {
    /// Parse `latest`, `prev`, `pr:N`, or `rev:PREFIX`.
    pub fn parse(s: &str) -> Result<Sel, String> {
        if s == "latest" {
            return Ok(Sel::Latest);
        }
        if s == "prev" {
            return Ok(Sel::Prev);
        }
        if let Some(n) = s.strip_prefix("pr:") {
            return n
                .parse()
                .map(Sel::Pr)
                .map_err(|e| format!("bad pr selector `{s}`: {e}"));
        }
        if let Some(r) = s.strip_prefix("rev:") {
            return Ok(Sel::Rev(r.to_string()));
        }
        Err(format!(
            "bad selector `{s}` (expected latest, prev, pr:N, or rev:PREFIX)"
        ))
    }

    fn pick<'a>(&self, entries: &[&'a LedgerEntry]) -> Option<&'a LedgerEntry> {
        match self {
            Sel::Latest => entries.last().copied(),
            Sel::Prev => entries.len().checked_sub(2).map(|i| entries[i]),
            Sel::Pr(n) => entries.iter().rev().find(|e| e.pr == *n).copied(),
            Sel::Rev(p) => entries.iter().rev().find(|e| e.rev.starts_with(p)).copied(),
        }
    }
}

/// One scenario's before/after pair.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Scenario name.
    pub scenario: String,
    /// Baseline entry.
    pub from: LedgerEntry,
    /// Candidate entry.
    pub to: LedgerEntry,
}

impl DiffRow {
    /// Candidate throughput over baseline throughput (>1 is faster).
    pub fn ratio(&self) -> f64 {
        if self.from.events_per_sec > 0.0 {
            self.to.events_per_sec / self.from.events_per_sec
        } else {
            0.0
        }
    }
}

/// Pair up entries per series — scenario name qualified by pool width
/// (see [`LedgerEntry::series`]), so a threaded sweep is never silently
/// compared against a sequential one. Entries are grouped in ledger
/// order (append order is history order), optionally filtered to one
/// scale first so quick and full runs never get compared. Series where
/// either selector comes up empty are skipped.
pub fn diff(ledger: &[LedgerEntry], from: &Sel, to: &Sel, scale: Option<&str>) -> Vec<DiffRow> {
    let mut by_series: BTreeMap<String, Vec<&LedgerEntry>> = BTreeMap::new();
    for e in ledger {
        if scale.is_some_and(|s| s != e.scale) {
            continue;
        }
        by_series.entry(e.series()).or_default().push(e);
    }
    let mut out = Vec::new();
    for (name, entries) in &by_series {
        let (Some(a), Some(b)) = (from.pick(entries), to.pick(entries)) else {
            continue;
        };
        out.push(DiffRow {
            scenario: name.to_string(),
            from: a.clone(),
            to: b.clone(),
        });
    }
    out
}

/// Render a diff as an aligned table.
pub fn render_diff(rows: &[DiffRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<32} {:>14} {:>14} {:>8}  from -> to",
        "scenario", "from ev/s", "to ev/s", "ratio"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<32} {:>14.0} {:>14.0} {:>7.3}x  pr{} {} -> pr{} {}",
            r.scenario,
            r.from.events_per_sec,
            r.to.events_per_sec,
            r.ratio(),
            r.from.pr,
            r.from.rev,
            r.to.pr,
            r.to.rev
        );
    }
    s
}

/// Apply a gate: any scenario whose candidate throughput fell more than
/// `pct` percent below its baseline fails, listed in the error.
pub fn gate(rows: &[DiffRow], pct: f64) -> Result<(), String> {
    let floor = 1.0 - pct / 100.0;
    let bad: Vec<String> = rows
        .iter()
        .filter(|r| r.ratio() < floor)
        .map(|r| {
            format!(
                "{}: {:.0} -> {:.0} ev/s ({:.1}% drop)",
                r.scenario,
                r.from.events_per_sec,
                r.to.events_per_sec,
                (1.0 - r.ratio()) * 100.0
            )
        })
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "performance gate (-{pct}%) violated:\n  {}",
            bad.join("\n  ")
        ))
    }
}

/// Render the full trajectory: per scenario, every ledger entry in
/// order, with each entry's throughput as a ratio of the scenario's
/// *first* recorded entry — the regression and its reclaim read off
/// directly.
pub fn render_rank(ledger: &[LedgerEntry], scale: Option<&str>) -> String {
    let mut by_scenario: BTreeMap<String, Vec<&LedgerEntry>> = BTreeMap::new();
    for e in ledger {
        if scale.is_some_and(|s| s != e.scale) {
            continue;
        }
        by_scenario.entry(e.series()).or_default().push(e);
    }
    let mut s = String::new();
    for (name, entries) in &by_scenario {
        let base = entries[0].events_per_sec;
        let _ = writeln!(s, "{name} [{}]:", entries[0].scale);
        for e in entries {
            let ratio = if base > 0.0 {
                e.events_per_sec / base
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "  pr{:<2} {:<14} {:>14.0} ev/s  {:>7.3}x  ({:.3} ms, spread {:.3}-{:.3})",
                e.pr, e.rev, e.events_per_sec, ratio, e.wall_ms, e.wall_min_ms, e.wall_max_ms
            );
        }
    }
    s
}

// ---------------------------------------------------------------------
// Backfill import from the legacy BENCH_PR*.json snapshots.
// ---------------------------------------------------------------------

/// Extract absolute measurements from a legacy `BENCH_PRn.json` and
/// stamp them with the given provenance. Only the file's *own* numbers
/// are imported — its folded-in `before_*` baseline is exactly the
/// chained-ratio mistake the ledger exists to kill, so it is ignored.
pub fn import_legacy(text: &str, pr: u32, rev: &str) -> Result<Vec<LedgerEntry>, String> {
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(',').trim_matches('"').to_string())
    };
    let mut scale = String::from("full");
    let mut out: Vec<LedgerEntry> = Vec::new();
    for line in text.lines() {
        if let Some(v) = field(line, "scale") {
            scale = v;
        } else if let Some(name) = field(line, "name") {
            out.push(LedgerEntry {
                scenario: name,
                pr,
                rev: rev.to_string(),
                scale: scale.clone(),
                wall_ms: 0.0,
                wall_min_ms: 0.0,
                wall_max_ms: 0.0,
                events: 0,
                events_per_sec: 0.0,
                threads: 1,
                host_cores: 0,
            });
        } else if let Some(e) = out.last_mut() {
            if let Some(v) = field(line, "wall_ms") {
                e.wall_ms = v.parse().unwrap_or(0.0);
                // Legacy snapshots are single-number: no recorded spread.
                e.wall_min_ms = e.wall_ms;
                e.wall_max_ms = e.wall_ms;
            } else if let Some(v) = field(line, "wall_min_ms") {
                e.wall_min_ms = v.parse().unwrap_or(0.0);
            } else if let Some(v) = field(line, "wall_max_ms") {
                e.wall_max_ms = v.parse().unwrap_or(0.0);
            } else if let Some(v) = field(line, "events") {
                e.events = v.parse().unwrap_or(0);
            } else if let Some(v) = field(line, "events_per_sec") {
                e.events_per_sec = v.parse().unwrap_or(0.0);
            }
        }
    }
    if out.is_empty() {
        return Err("no scenarios found in legacy file".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(scenario: &str, pr: u32, rev: &str, eps: f64) -> LedgerEntry {
        LedgerEntry {
            scenario: scenario.to_string(),
            pr,
            rev: rev.to_string(),
            scale: "quick".to_string(),
            wall_ms: 100.0,
            wall_min_ms: 95.0,
            wall_max_ms: 112.5,
            events: 1_000_000,
            events_per_sec: eps,
            threads: 1,
            host_cores: 16,
        }
    }

    fn entry_at(scenario: &str, pr: u32, rev: &str, eps: f64, threads: u32) -> LedgerEntry {
        LedgerEntry {
            threads,
            ..entry(scenario, pr, rev, eps)
        }
    }

    #[test]
    fn toml_parses_typed_values() {
        let doc = r#"
# a comment
name = "matching_posted"   # trailing comment
kind = "matching_posted"
iters = 5
bytes = 1_024
loss = 0.01
gated = true
"#;
        let pairs = parse_flat_toml(doc).unwrap();
        assert_eq!(
            pairs[0],
            ("name".into(), TomlVal::Str("matching_posted".into()))
        );
        assert_eq!(pairs[2], ("iters".into(), TomlVal::Int(5)));
        assert_eq!(pairs[3], ("bytes".into(), TomlVal::Int(1024)));
        assert_eq!(pairs[4], ("loss".into(), TomlVal::Float(0.01)));
        assert_eq!(pairs[5], ("gated".into(), TomlVal::Bool(true)));
    }

    #[test]
    fn toml_rejects_tables_duplicates_and_junk() {
        assert!(parse_flat_toml("[section]").is_err());
        assert!(parse_flat_toml("a = 1\na = 2").is_err());
        assert!(parse_flat_toml("a 1").is_err());
        assert!(parse_flat_toml("a = what").is_err());
        assert!(parse_flat_toml("a = \"unterminated").is_err());
    }

    #[test]
    fn scenario_rejects_unknown_keys() {
        let doc = r#"
name = "m"
kind = "matching_posted"
iters = 5
bytes = 1024
count_quick = 100
count_full = 200
cout_quick = 300
"#;
        let pairs = parse_flat_toml(doc).unwrap();
        let err = Scenario::from_pairs("m.toml", pairs).unwrap_err();
        assert!(err.contains("unknown key `cout_quick`"), "{err}");
    }

    #[test]
    fn scenario_requires_its_keys() {
        let doc = "name = \"m\"\nkind = \"flow_churn\"\niters = 3\nlanes = 8\nflows_quick = 10\n";
        let pairs = parse_flat_toml(doc).unwrap();
        let err = Scenario::from_pairs("m.toml", pairs).unwrap_err();
        assert!(err.contains("flows_full"), "{err}");
    }

    #[test]
    fn corpus_dir_parses_and_covers_the_acceptance_scenarios() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
        let corpus = load_corpus(&dir).unwrap();
        for required in [
            "matching_posted",
            "matching_unexpected",
            "flow_churn",
            "fig8_quick_bcast_256",
        ] {
            assert!(
                corpus.iter().any(|s| s.name == required),
                "corpus is missing the acceptance scenario `{required}`"
            );
        }
    }

    #[test]
    fn ledger_entry_roundtrips() {
        let e = entry("matching_posted", 6, "abc1234", 9_876_543.2);
        let parsed = LedgerEntry::parse_line(&e.to_line()).unwrap();
        assert_eq!(parsed, e);
        // Threaded entries carry their width through the line format.
        let e = entry_at("fig8_quick_bcast_256", 7, "abc1234", 9e6, 4);
        let parsed = LedgerEntry::parse_line(&e.to_line()).unwrap();
        assert_eq!(parsed, e);
        assert_eq!(parsed.threads, 4);
    }

    #[test]
    fn ledger_lines_without_thread_fields_parse_as_sequential() {
        // A line written before the sharded core existed: no `threads`,
        // no `host_cores`. It must still load, as a 1-thread entry.
        let line = "{\"scenario\": \"s1\", \"pr\": 5, \"rev\": \"abcd\", \"scale\": \"quick\", \
                    \"wall_ms\": 100.000, \"wall_min_ms\": 95.000, \"wall_max_ms\": 112.500, \
                    \"events\": 1000000, \"events_per_sec\": 1000.0}";
        let e = LedgerEntry::parse_line(line).unwrap();
        assert_eq!(e.threads, 1);
        assert_eq!(e.host_cores, 0);
        assert_eq!(e.series(), "s1");
    }

    #[test]
    fn diff_never_pairs_threaded_with_sequential() {
        // A 4-thread sweep lands in the ledger after two sequential
        // entries. prev -> latest must compare sequential against
        // sequential; the threaded entry is its own series with only one
        // entry, so it produces no row at all.
        let ledger = vec![
            entry("s1", 6, "aaaa", 1000.0),
            entry("s1", 7, "bbbb", 1010.0),
            entry_at("s1", 7, "bbbb", 2500.0, 4),
        ];
        let rows = diff(&ledger, &Sel::Prev, &Sel::Latest, Some("quick"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].scenario, "s1");
        assert_eq!(rows[0].from.events_per_sec, 1000.0);
        assert_eq!(rows[0].to.events_per_sec, 1010.0);
        assert!(rows[0].to.threads == 1 && rows[0].from.threads == 1);
        // Once a second threaded entry exists, the threaded series pairs
        // against itself.
        let mut ledger = ledger;
        ledger.push(entry_at("s1", 8, "cccc", 3000.0, 4));
        let rows = diff(&ledger, &Sel::Prev, &Sel::Latest, Some("quick"));
        assert_eq!(rows.len(), 2);
        let threaded = rows
            .iter()
            .find(|r| r.scenario.contains("threads=4"))
            .unwrap();
        assert_eq!(threaded.from.events_per_sec, 2500.0);
        assert_eq!(threaded.to.events_per_sec, 3000.0);
    }

    #[test]
    fn ledger_append_and_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("barometer-test-{}", std::process::id()));
        let path = dir.join("ledger.jsonl");
        let a = entry("s1", 2, "aaaa", 1000.0);
        let b = entry("s1", 3, "bbbb", 800.0);
        append_entries(&path, std::slice::from_ref(&a)).unwrap();
        append_entries(&path, std::slice::from_ref(&b)).unwrap();
        let loaded = load_ledger(&path).unwrap();
        assert_eq!(loaded, vec![a, b]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_pairs_selectors_and_gate_trips() {
        let ledger = vec![
            entry("s1", 2, "aaaa", 1000.0),
            entry("s1", 3, "bbbb", 800.0),
            entry("s1", 6, "cccc", 1100.0),
            entry("s2", 6, "cccc", 500.0), // single entry: no prev, skipped
        ];
        // pr:2 -> pr:3 is the regression.
        let rows = diff(&ledger, &Sel::Pr(2), &Sel::Pr(3), Some("quick"));
        assert_eq!(rows.len(), 1);
        assert!((rows[0].ratio() - 0.8).abs() < 1e-9);
        assert!(gate(&rows, 5.0).is_err());
        // prev -> latest is the reclaim; a 5% gate passes.
        let rows = diff(&ledger, &Sel::Prev, &Sel::Latest, Some("quick"));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].ratio() > 1.0);
        assert!(gate(&rows, 5.0).is_ok());
        // rev selector finds by prefix.
        let rows = diff(
            &ledger,
            &Sel::Rev("aa".into()),
            &Sel::Rev("cc".into()),
            None,
        );
        assert_eq!(rows.len(), 1); // s2 has no `aa` rev, so it is skipped
        assert!((rows[0].ratio() - 1.1).abs() < 1e-9);
        // Wrong scale filter yields nothing.
        assert!(diff(&ledger, &Sel::Prev, &Sel::Latest, Some("full")).is_empty());
    }

    #[test]
    fn selector_parses() {
        assert_eq!(Sel::parse("latest").unwrap(), Sel::Latest);
        assert_eq!(Sel::parse("prev").unwrap(), Sel::Prev);
        assert_eq!(Sel::parse("pr:4").unwrap(), Sel::Pr(4));
        assert_eq!(Sel::parse("rev:ab12").unwrap(), Sel::Rev("ab12".into()));
        assert!(Sel::parse("pr4").is_err());
    }

    #[test]
    fn legacy_import_takes_absolutes_and_ignores_before_fields() {
        let legacy = r#"{
  "pr": 3,
  "scale": "quick",
  "scenarios": [
    {
      "name": "matching_posted",
      "wall_ms": 94.917,
      "events": 716243,
      "events_per_sec": 7546014.3,
      "match_probes": 2000,
      "share_recomputes": 2000,
      "before_wall_ms": 68.331,
      "before_events_per_sec": 10482280.5,
      "speedup": 0.72
    }
  ]
}"#;
        let entries = import_legacy(legacy, 3, "59a1778").unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.scenario, "matching_posted");
        assert_eq!(e.pr, 3);
        assert_eq!(e.scale, "quick");
        assert_eq!(e.events, 716243);
        assert!((e.wall_ms - 94.917).abs() < 1e-9);
        // Single-number snapshot: spread collapses onto the median, and
        // the chained `before_*` baseline is dropped on the floor.
        assert!((e.wall_min_ms - e.wall_ms).abs() < 1e-9);
        assert!((e.events_per_sec - 7546014.3).abs() < 1e-6);
    }

    #[test]
    fn rank_renders_trajectory_against_first_entry() {
        let ledger = vec![
            entry("s1", 2, "aaaa", 1000.0),
            entry("s1", 3, "bbbb", 800.0),
            entry("s1", 6, "cccc", 1100.0),
        ];
        let out = render_rank(&ledger, Some("quick"));
        assert!(out.contains("0.800x"), "{out}");
        assert!(out.contains("1.100x"), "{out}");
    }
}
