//! Self-timed performance harness for the simulator's hot paths.
//!
//! The vendored criterion is an API stub, so this module carries its own
//! measurement loop: every scenario runs `warmup` throwaway iterations and
//! then `k` timed iterations with [`std::time::Instant`], reporting the
//! **median** wall-clock so one noisy iteration cannot skew a recorded
//! number. Three scenarios cover the three per-event hot paths:
//!
//! | scenario | exercises |
//! |---|---|
//! | `matching_posted` | arrival matching against a long posted-receive list |
//! | `matching_unexpected` | receive posting against long unexpected queues |
//! | `flow_churn` | fair-share refresh on a congested link under flow churn |
//! | `fig8_quick_bcast` | end-to-end 256-rank broadcast sweep (quick fig8) |
//! | `fig8_quick_bcast_256_traced` | the same sweep with observability recording on |
//! | `fig8_quick_bcast_256_streaming` | the sweep with the bounded-memory streaming recorder on |
//! | `fig8_quick_bcast_inert_faults` | the sweep with an inert fault plan — the reliability layer's zero-overhead guard |
//! | `fig8_quick_bcast_inert_kill` | the sweep with a past-completion kill plan — the failure detector's zero-overhead guard |
//! | `fig8_quick_bcast_lossy1pct` | the sweep at 1% per-hop loss through the reliability layer |
//! | `fig8_quick_bcast_256_monitored` | the sweep with the online health monitor snapshotting every 10 µs |
//!
//! The repo's recorded trajectory lives in the barometer ledger
//! (`results/barometer.jsonl`, absolute numbers only — see
//! [`crate::barometer`] and the `bench` binary), which drives these
//! scenarios from a declarative TOML corpus. The older
//! `cargo run --release -p adapt-bench --bin perf` flow that chained
//! `--baseline old.json` into `before_*` fields is kept for one-off local
//! comparisons, but its chained speedups are no longer the record: a
//! regressed PR used as the next PR's baseline silently compounds, which
//! is exactly the failure mode the ledger exists to prevent.

use crate::{CpuMachine, Scale, FIG89_SIZES};
use adapt_collectives::{run_once, world_for_case, CollectiveCase, Library, NoiseScope, OpKind};
use adapt_faults::FaultPlan;
use adapt_mpi::{Completion, Op, Payload, ProgramCtx, RankProgram, Token, World, WorldStats};
use adapt_net::{FlowId, FlowScheduler, FlowSpec, Link, LinkClass, LinkId, NetStep, Network, Path};
use adapt_noise::ClusterNoise;
use adapt_obs::{MemRecorder, Monitor, StreamRecorder};
use adapt_sim::queue::{EventKey, EventQueue};
use adapt_sim::time::{Duration as SimDuration, Time};
use adapt_sim::WorkerPool;
use adapt_topology::profiles;
use std::time::Instant;

/// One measured scenario.
#[derive(Clone, Debug)]
pub struct PerfResult {
    /// Scenario name (stable key in the JSON trajectory).
    pub name: String,
    /// Median wall-clock across the timed iterations, milliseconds.
    pub wall_ms: f64,
    /// Fastest timed iteration, milliseconds.
    pub wall_min_ms: f64,
    /// Slowest timed iteration, milliseconds.
    pub wall_max_ms: f64,
    /// Simulator events processed in one iteration.
    pub events: u64,
    /// Events per wall-clock second (throughput figure of merit).
    pub events_per_sec: f64,
    /// Matching probes performed in one iteration (0 where untracked).
    pub match_probes: u64,
    /// Fair-share recomputations in one iteration (0 where untracked).
    pub share_recomputes: u64,
    /// Worker threads the scenario ran on (1 = the sequential engine).
    /// Throughput at different widths is not comparable — the ledger keys
    /// on this so a diff never pairs them silently.
    pub threads: usize,
}

/// Wall-clock distribution of one timed scenario: the median that gets
/// recorded, plus the min/max spread that says how far to trust it. A
/// spread much wider than a CI gate's threshold means the gate would be
/// reading noise, not regressions.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Median of the timed iterations, milliseconds.
    pub median_ms: f64,
    /// Fastest timed iteration, milliseconds.
    pub min_ms: f64,
    /// Slowest timed iteration, milliseconds.
    pub max_ms: f64,
}

/// Run `f` with `warmup` throwaway and `k` timed iterations; returns the
/// median/min/max wall-clock plus the last iteration's payload. The
/// median is what gets recorded (robust to a single noisy iteration); the
/// spread is recorded alongside so a diff can tell signal from noise.
pub fn time_median<T>(warmup: usize, k: usize, mut f: impl FnMut() -> T) -> (Timing, T) {
    assert!(k >= 1);
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(k);
    let mut last = None;
    for _ in 0..k {
        let start = Instant::now();
        let out = f();
        samples.push(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let t = Timing {
        median_ms: samples[k / 2],
        min_ms: samples[0],
        max_ms: samples[k - 1],
    };
    (t, last.expect("k >= 1"))
}

// ---------------------------------------------------------------------
// Matching scenarios: a two-rank world where rank 0 floods rank 1.
// ---------------------------------------------------------------------

/// Rank 0: send `count` eager messages to rank 1, tags in *descending*
/// order (worst case for a linear posted-list scan), `window` outstanding
/// at a time so the network stays small while the match lists stay long.
struct FloodSender {
    count: u32,
    window: u32,
    bytes: u64,
    next: u32,
    inflight: u32,
}

impl FloodSender {
    fn pump(&mut self, ctx: &mut dyn ProgramCtx) {
        while self.next < self.count && self.inflight < self.window {
            let tag = self.count - 1 - self.next; // descending tags
            ctx.post(Op::Isend {
                dst: 1,
                tag,
                payload: Payload::Synthetic(self.bytes),
                token: Token(tag as u64),
                src_mem: None,
            });
            self.next += 1;
            self.inflight += 1;
        }
        if self.next == self.count && self.inflight == 0 {
            ctx.post(Op::Finish);
        }
    }
}

impl RankProgram for FloodSender {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.pump(ctx);
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        if matches!(c, Completion::SendDone { .. }) {
            self.inflight -= 1;
        }
        self.pump(ctx);
    }
}

/// Rank 1 (posted-scan stress): pre-post all `count` receives with exact
/// ascending tags, then count completions. Descending-tag arrivals force
/// a deep scan of the posted list on every match.
struct PrePoster {
    count: u32,
    done: u32,
}

impl RankProgram for PrePoster {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        for tag in 0..self.count {
            ctx.irecv(0, tag, Token(tag as u64));
        }
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        if matches!(c, Completion::RecvDone { .. }) {
            self.done += 1;
            if self.done == self.count {
                ctx.finish();
            }
        }
    }
}

/// Rank 1 (unexpected-scan stress): compute for a long time so every
/// message lands unexpected, then post receives in *ascending* tag order —
/// each post scans the unexpected queue (descending arrival tags) deeply.
struct LatePoster {
    count: u32,
    delay: SimDuration,
    done: u32,
}

impl RankProgram for LatePoster {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        ctx.compute(self.delay, Token(u64::MAX));
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        match c {
            Completion::ComputeDone { .. } => {
                for tag in 0..self.count {
                    ctx.irecv(0, tag, Token(tag as u64));
                }
            }
            Completion::RecvDone { .. } => {
                self.done += 1;
                if self.done == self.count {
                    ctx.finish();
                }
            }
            _ => {}
        }
    }
}

fn matching_world(count: u32, bytes: u64, receiver: Box<dyn RankProgram>) -> WorldStats {
    let spec = profiles::minicluster(1, 1, 2);
    let world = World::cpu(spec, 2, ClusterNoise::silent(2));
    let sender = Box::new(FloodSender {
        count,
        window: 32,
        bytes,
        next: 0,
        inflight: 0,
    });
    let res = world.run(vec![sender, receiver]);
    assert!(res.audit.is_clean(), "{}", res.audit);
    res.stats
}

/// Parameters of the two matching scenarios, normally loaded from the
/// scenario corpus (`crates/bench/scenarios/*.toml`).
#[derive(Clone, Copy, Debug)]
pub struct MatchingParams {
    /// Messages flooded from rank 0 to rank 1.
    pub count: u32,
    /// Payload bytes per message.
    pub bytes: u64,
    /// Throwaway iterations before timing starts.
    pub warmup: usize,
    /// Timed iterations (median recorded).
    pub iters: usize,
}

impl MatchingParams {
    fn defaults(scale: Scale) -> MatchingParams {
        MatchingParams {
            count: match scale {
                Scale::Quick => 2_000,
                Scale::Full => 6_000,
            },
            bytes: 1024,
            warmup: 1,
            iters: 5,
        }
    }
}

/// Posted-receive matching throughput (descending arrivals vs a long
/// pre-posted list).
pub fn bench_matching_posted(scale: Scale) -> PerfResult {
    bench_matching_posted_with(&MatchingParams::defaults(scale))
}

/// [`bench_matching_posted`] with explicit parameters.
pub fn bench_matching_posted_with(p: &MatchingParams) -> PerfResult {
    let count = p.count;
    let (t, stats) = time_median(p.warmup, p.iters, || {
        matching_world(count, p.bytes, Box::new(PrePoster { count, done: 0 }))
    });
    result("matching_posted", t, stats)
}

/// Unexpected-queue matching throughput (late posts vs a long unexpected
/// queue).
pub fn bench_matching_unexpected(scale: Scale) -> PerfResult {
    bench_matching_unexpected_with(&MatchingParams::defaults(scale))
}

/// [`bench_matching_unexpected`] with explicit parameters.
pub fn bench_matching_unexpected_with(p: &MatchingParams) -> PerfResult {
    let count = p.count;
    let (t, stats) = time_median(p.warmup, p.iters, || {
        matching_world(
            count,
            p.bytes,
            Box::new(LatePoster {
                count,
                delay: SimDuration::from_millis(500),
                done: 0,
            }),
        )
    });
    result("matching_unexpected", t, stats)
}

// ---------------------------------------------------------------------
// Flow churn: drive the network engine directly.
// ---------------------------------------------------------------------

struct BenchSched(EventQueue<FlowId>);

impl FlowScheduler for BenchSched {
    fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey {
        self.0.schedule(at, flow)
    }
    fn cancel(&mut self, key: EventKey) {
        self.0.cancel(key);
    }
}

/// Parameters of the flow-churn scenario.
#[derive(Clone, Copy, Debug)]
pub struct ChurnParams {
    /// Endpoint lanes funnelling into the shared backbone.
    pub lanes: u32,
    /// Flows started over the run.
    pub flows: u64,
    /// Throwaway iterations before timing starts.
    pub warmup: usize,
    /// Timed iterations (median recorded).
    pub iters: usize,
}

impl ChurnParams {
    fn defaults(scale: Scale) -> ChurnParams {
        ChurnParams {
            lanes: 64,
            flows: match scale {
                Scale::Quick => 6_000,
                Scale::Full => 20_000,
            },
            warmup: 1,
            iters: 5,
        }
    }
}

/// Start `flows` staggered flows over `lanes` endpoint lanes that all
/// funnel through one backbone link, and drive the engine dry. This is the
/// fan-in congestion pattern of a large reduce: every start and drain
/// perturbs the shared bottleneck.
pub fn bench_flow_churn(scale: Scale) -> PerfResult {
    bench_flow_churn_with(&ChurnParams::defaults(scale))
}

/// [`bench_flow_churn`] with explicit parameters.
pub fn bench_flow_churn_with(p: &ChurnParams) -> PerfResult {
    let (lanes, flows) = (p.lanes, p.flows);
    let (t, (events, perf)) = time_median(p.warmup, p.iters, || {
        let mut links = vec![Link {
            class: LinkClass::Backbone,
            capacity: 100e9,
            latency: SimDuration::from_nanos(500),
        }];
        for _ in 0..lanes {
            links.push(Link {
                class: LinkClass::NicTx(0),
                capacity: 12e9,
                latency: SimDuration::from_nanos(300),
            });
        }
        let mut net = Network::new(links);
        let mut q = BenchSched(EventQueue::new());
        // Deterministic LCG for lane choice and stagger (no RNG dep).
        let mut s: u64 = 0x9e3779b97f4a7c15;
        let mut lcg = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut started = 0u64;
        let mut events = 0u64;
        let mut next_start = Time::ZERO;
        // Seed a first batch; afterwards each delivery spawns a successor,
        // keeping a steady churn of concurrent flows on the backbone.
        for _ in 0..256 {
            let lane = 1 + (lcg() % lanes as u64) as u32;
            net.start_flow(
                next_start,
                FlowSpec {
                    path: Path::new(&[LinkId(lane), LinkId(0)]),
                    bytes: 64 * 1024 + (lcg() % 8) * 8 * 1024,
                    tag: started,
                },
                &mut q,
            );
            started += 1;
            next_start += SimDuration::from_nanos(lcg() % 2_000);
        }
        while let Some((t, fid)) = q.0.pop() {
            events += 1;
            if let NetStep::Delivered(_) = net.handle_event(t, fid, &mut q) {
                if started < flows {
                    let lane = 1 + (lcg() % lanes as u64) as u32;
                    net.start_flow(
                        t,
                        FlowSpec {
                            path: Path::new(&[LinkId(lane), LinkId(0)]),
                            bytes: 64 * 1024 + (lcg() % 8) * 8 * 1024,
                            tag: started,
                        },
                        &mut q,
                    );
                    started += 1;
                }
            }
        }
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.injected_bytes(), net.delivered_bytes());
        (events, net.perf_counters())
    });
    PerfResult {
        name: "flow_churn".into(),
        wall_ms: t.median_ms,
        wall_min_ms: t.min_ms,
        wall_max_ms: t.max_ms,
        events,
        events_per_sec: events as f64 / (t.median_ms / 1e3),
        match_probes: 0,
        share_recomputes: perf.share_recomputes,
        threads: 1,
    }
}

// ---------------------------------------------------------------------
// End-to-end: quick-scale fig8 broadcast sweep at 256 ranks.
// ---------------------------------------------------------------------

/// What rides along on the fig8 sweep: the plain run, or one of the
/// cross-layer attachments whose overhead the suite tracks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fig8Mode {
    /// Plain sweep — the acceptance scenario.
    Plain,
    /// Full observability recording (spans + 10 µs gauge sampling).
    Traced,
    /// Bounded-memory streaming telemetry ([`StreamRecorder`]): online
    /// aggregation only, no span buffers, no gauge sampling.
    Streaming,
    /// Inert fault plan attached — the reliability layer's zero-overhead
    /// guard (counters asserted bit-identical to an unfaulted run).
    InertFaults,
    /// Kill plan whose instant lies beyond the run's completion — the
    /// failure detector's zero-overhead guard: a kill-only plan arms no
    /// reliability machinery (no ack traffic, no retransmit timers), so
    /// the simulated schedule must be bit-identical to the plain run and
    /// only the kill/detection counters may differ.
    InertKill,
    /// Per-hop message loss at the given probability, with an 80 µs RTO.
    Lossy(f64),
    /// Online health monitor attached at a 10 µs snapshot cadence: the
    /// snapshot timer rides the event queue and the four anomaly
    /// detectors run over every consecutive pair — the cost of always-on
    /// health monitoring, gated at the standard 5% against the plain run.
    Monitored,
}

/// Parameters of the fig8 end-to-end sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Params {
    /// Cori nodes (32 ranks each).
    pub nodes: u32,
    /// Total ranks.
    pub nranks: u32,
    /// Throwaway iterations before timing starts.
    pub warmup: usize,
    /// Timed iterations (median recorded).
    pub iters: usize,
    /// Attachment under test.
    pub mode: Fig8Mode,
    /// Worker-pool width for the sweep: the per-size runs are independent
    /// worlds, so the pool maps one run per thread (largest sizes first).
    /// 1 keeps the historical sequential sweep, inline on this thread.
    pub threads: usize,
}

impl Fig8Params {
    fn defaults(mode: Fig8Mode) -> Fig8Params {
        Fig8Params {
            nodes: 8, // 8 nodes x 2 sockets x 16 cores = 256
            nranks: 256,
            warmup: 1,
            iters: 3,
            mode,
            threads: 1,
        }
    }
}

/// The acceptance scenario: OMPI-adapt broadcast over the fig8 message
/// sizes on a 256-rank Cori slice, one run per size, total wall-clock.
pub fn bench_fig8_quick(scale: Scale) -> PerfResult {
    let _ = scale; // the sweep sizes are the figure's, at either scale
    bench_fig8_with(
        "fig8_quick_bcast_256",
        &Fig8Params::defaults(Fig8Mode::Plain),
    )
}

/// The same sweep with full observability recording attached, measuring
/// the cost of instrumentation on the end-to-end hot path. Compare
/// against `fig8_quick_bcast_256` to read the recording overhead.
pub fn bench_fig8_quick_traced(scale: Scale) -> PerfResult {
    let _ = scale;
    bench_fig8_with(
        "fig8_quick_bcast_256_traced",
        &Fig8Params::defaults(Fig8Mode::Traced),
    )
}

/// The sweep with the bounded-memory streaming recorder attached. The
/// recorder aggregates every probe online (histograms, heatmap, busy
/// accounting) instead of buffering spans, and samples no gauges, so its
/// overhead against `fig8_quick_bcast_256` should stay within the
/// standard 5% gate — the number that makes always-on telemetry viable
/// at production scale.
pub fn bench_fig8_streaming(scale: Scale) -> PerfResult {
    let _ = scale;
    bench_fig8_with(
        "fig8_quick_bcast_256_streaming",
        &Fig8Params::defaults(Fig8Mode::Streaming),
    )
}

/// Zero-overhead guard for the reliability layer: the same fig8 sweep
/// with an **inert** fault plan attached. `World::with_faults` must
/// refuse to arm anything for an inert plan, so every counter is
/// asserted bit-identical to an unfaulted run and the recorded wall
/// clock should sit on top of `fig8_quick_bcast_256`'s.
pub fn bench_fig8_inert_faults(scale: Scale) -> PerfResult {
    let _ = scale;
    bench_fig8_with(
        "fig8_quick_bcast_inert_faults",
        &Fig8Params::defaults(Fig8Mode::InertFaults),
    )
}

/// The reliability layer under fire: the fig8 sweep at 1% per-hop loss.
/// Measures the simulation cost of drops, retransmission timers, acks,
/// and duplicate suppression on the end-to-end hot path; asserts the
/// recovery actually happened (retransmits > 0, audit clean).
pub fn bench_fig8_lossy(scale: Scale) -> PerfResult {
    let _ = scale;
    bench_fig8_with(
        "fig8_quick_bcast_lossy1pct",
        &Fig8Params::defaults(Fig8Mode::Lossy(0.01)),
    )
}

/// The sweep with the online health monitor attached (10 µs snapshot
/// cadence). The monitor's snapshot timer adds events to the hot loop
/// and the detectors scan every rank and link per snapshot; its overhead
/// against `fig8_quick_bcast_256` must clear the standard 5% gate for
/// always-on health monitoring to be the default posture.
pub fn bench_fig8_monitored(scale: Scale) -> PerfResult {
    let _ = scale;
    bench_fig8_with(
        "fig8_quick_bcast_256_monitored",
        &Fig8Params::defaults(Fig8Mode::Monitored),
    )
}

/// One size of the fig8 sweep under `mode`'s attachment.
fn run_fig8_size(case: &CollectiveCase, mode: Fig8Mode) -> WorldStats {
    match mode {
        Fig8Mode::Plain => run_once(case, 0.0, 1).1,
        Fig8Mode::Traced => {
            let (world, programs) = world_for_case(case, NoiseScope::PerNode, 0.0, 1);
            let res = world
                .with_recorder(Box::new(MemRecorder::with_metrics(10_000)))
                .run(programs);
            assert!(res.audit.is_clean(), "{}", res.audit);
            let obs = res.obs.expect("recorded run carries observability data");
            assert!(!obs.dispatches.is_empty() && !obs.gauges.is_empty());
            res.stats
        }
        Fig8Mode::Streaming => {
            let (world, programs) = world_for_case(case, NoiseScope::PerNode, 0.0, 1);
            let res = world
                .with_recorder(Box::new(StreamRecorder::new()))
                .run(programs);
            assert!(res.audit.is_clean(), "{}", res.audit);
            let summary = res.summary.expect("streaming run carries a summary");
            assert!(summary.msgs_posted > 0 && summary.dispatches > 0);
            res.stats
        }
        Fig8Mode::InertFaults => {
            let (world, programs) = world_for_case(case, NoiseScope::PerNode, 0.0, 1);
            let res = world.with_faults(FaultPlan::lossy(1, 0.0)).run(programs);
            assert!(res.audit.is_clean(), "{}", res.audit);
            res.stats
        }
        Fig8Mode::InertKill => {
            let (world, programs) = world_for_case(case, NoiseScope::PerNode, 0.0, 1);
            let plan = FaultPlan::lossy(1, 0.0).with_kill(
                case.nranks - 1,
                Time::ZERO + SimDuration::from_millis(10_000),
            );
            let res = world.with_faults(plan).run(programs);
            assert!(res.audit.is_clean(), "{}", res.audit);
            res.stats
        }
        Fig8Mode::Lossy(p_loss) => {
            let (world, programs) = world_for_case(case, NoiseScope::PerNode, 0.0, 1);
            let plan = FaultPlan::lossy(1, p_loss).with_rto(SimDuration::from_micros(80));
            let res = world.with_faults(plan).run(programs);
            assert!(res.audit.is_clean(), "{}", res.audit);
            assert!(res.stats.retransmits > 0, "loss must exercise recovery");
            res.stats
        }
        Fig8Mode::Monitored => {
            let (world, programs) = world_for_case(case, NoiseScope::PerNode, 0.0, 1);
            let res = world.with_monitor(Monitor::new(10_000)).run(programs);
            assert!(res.audit.is_clean(), "{}", res.audit);
            let health = res.health.expect("monitored run carries a health report");
            assert!(health.snapshots > 0, "the snapshot timer must have fired");
            assert_eq!(
                health.total_alerts(),
                0,
                "a clean sweep must not page anyone: {health:?}"
            );
            res.stats
        }
    }
}

/// The fig8 sweep with explicit parameters: one collective run per
/// message size, with `p.mode`'s attachment, summed stats per iteration.
/// At `p.threads > 1` the independent per-size runs are fanned out on a
/// [`WorkerPool`] (largest sizes first, so the longest run starts
/// earliest); the summed counters are commutative, so the recorded totals
/// are identical at any width — only the wall clock moves.
pub fn bench_fig8_with(name: &str, p: &Fig8Params) -> PerfResult {
    let sizes: &[u64] = &FIG89_SIZES;
    let spec = profiles::cori(p.nodes);
    let nranks = p.nranks;
    let mk_case = |msg_bytes| CollectiveCase {
        machine: spec.clone(),
        nranks,
        op: OpKind::Bcast,
        library: Library::OmpiAdapt,
        msg_bytes,
    };
    if p.mode == Fig8Mode::InertKill {
        // A kill scheduled past the run's completion must not perturb the
        // simulated schedule at all: kill-only plans keep the reliability
        // layer off (no acks, no timers), so per-rank finish times and
        // every counter except the kill/detection tallies are asserted
        // bit-identical to the plain run before timing starts.
        for &msg_bytes in sizes {
            let case = mk_case(msg_bytes);
            let (world, programs) = world_for_case(&case, NoiseScope::PerNode, 0.0, 1);
            let plan = FaultPlan::lossy(1, 0.0).with_kill(
                case.nranks - 1,
                Time::ZERO + SimDuration::from_millis(10_000),
            );
            assert!(!plan.is_inert(), "a kill plan is not inert to the audit");
            let res = world.with_faults(plan).run(programs);
            let (plain_world, plain_programs) = world_for_case(&case, NoiseScope::PerNode, 0.0, 1);
            let plain = plain_world.run(plain_programs);
            assert_eq!(res.per_rank_finish, plain.per_rank_finish);
            let mut masked = res.stats;
            assert_eq!(masked.ranks_killed, 1);
            assert_eq!(masked.failures_detected, 1);
            masked.ranks_killed = 0;
            masked.failures_detected = 0;
            // The Kill and Detect events themselves are the only extras.
            assert_eq!(masked.events, plain.stats.events + 2);
            masked.events = plain.stats.events;
            assert_eq!(
                masked, plain.stats,
                "a kill-only plan must add zero reliability overhead"
            );
        }
    }
    if p.mode == Fig8Mode::InertFaults {
        // The bit-identical guarantee, checked once outside the timed
        // loop so the recorded wall clock measures only the inert-faulted
        // run and compares directly against `fig8_quick_bcast_256`.
        for &msg_bytes in sizes {
            let case = mk_case(msg_bytes);
            let (world, programs) = world_for_case(&case, NoiseScope::PerNode, 0.0, 1);
            let plan = FaultPlan::lossy(1, 0.0);
            assert!(plan.is_inert());
            let res = world.with_faults(plan).run(programs);
            let (plain_world, plain_programs) = world_for_case(&case, NoiseScope::PerNode, 0.0, 1);
            let plain = plain_world.run(plain_programs);
            assert_eq!(
                res.stats, plain.stats,
                "an inert fault plan must leave every counter bit-identical"
            );
            assert_eq!(res.per_rank_finish, plain.per_rank_finish);
        }
    }
    let threads = p.threads.max(1);
    let pool = WorkerPool::new(threads);
    // Longest-processing-time-first: the 4 MB run dominates the sweep, so
    // it must be in flight from the first instant for the pool to pay off.
    let mut order: Vec<u64> = sizes.to_vec();
    order.sort_unstable_by(|a, b| b.cmp(a));
    let mode = p.mode;
    let (t, stats_sum) = time_median(p.warmup, p.iters, || {
        let jobs: Vec<Box<dyn FnOnce() -> WorldStats + Send>> = order
            .iter()
            .map(|&msg_bytes| {
                let case = mk_case(msg_bytes);
                Box::new(move || run_fig8_size(&case, mode))
                    as Box<dyn FnOnce() -> WorldStats + Send>
            })
            .collect();
        let mut sum = WorldStats::default();
        for stats in pool.run_batch(jobs) {
            sum.events += stats.events;
            sum.match_probes += stats.match_probes;
            sum.net_share_recomputes += stats.net_share_recomputes;
        }
        sum
    });
    let mut r = result(name, t, stats_sum);
    r.threads = threads;
    r
}

fn result(name: &str, t: Timing, stats: WorldStats) -> PerfResult {
    PerfResult {
        name: name.into(),
        wall_ms: t.median_ms,
        wall_min_ms: t.min_ms,
        wall_max_ms: t.max_ms,
        events: stats.events,
        events_per_sec: stats.events as f64 / (t.median_ms / 1e3),
        match_probes: stats.match_probes,
        share_recomputes: stats.net_share_recomputes,
        threads: 1,
    }
}

/// Run the whole suite at the given scale.
pub fn run_suite(scale: Scale, machine: CpuMachine) -> Vec<PerfResult> {
    let _ = machine; // the end-to-end scenario pins Cori for comparability
    vec![
        bench_matching_posted(scale),
        bench_matching_unexpected(scale),
        bench_flow_churn(scale),
        bench_fig8_quick(scale),
        bench_fig8_quick_traced(scale),
        bench_fig8_streaming(scale),
        bench_fig8_inert_faults(scale),
        bench_fig8_lossy(scale),
    ]
}

// ---------------------------------------------------------------------
// JSON trajectory emission (hand-rolled; one key per line so a previous
// file can be folded back in without a JSON parser).
// ---------------------------------------------------------------------

/// Baseline numbers extracted from a previous harness output.
#[derive(Clone, Copy, Debug, Default)]
pub struct Baseline {
    wall_ms: f64,
    events_per_sec: f64,
    match_probes: u64,
    share_recomputes: u64,
}

/// Extract per-scenario baseline numbers from a previous output of this
/// harness. Line-oriented: relies on the emitter writing one key per line.
pub fn parse_baseline(text: &str) -> Vec<(String, Baseline)> {
    let mut out: Vec<(String, Baseline)> = Vec::new();
    let field = |line: &str, key: &str| -> Option<String> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\": "))?;
        Some(rest.trim_end_matches(',').trim_matches('"').to_string())
    };
    for line in text.lines() {
        if let Some(name) = field(line, "name") {
            out.push((name, Baseline::default()));
        } else if let Some((_, b)) = out.last_mut() {
            if let Some(v) = field(line, "wall_ms") {
                b.wall_ms = v.parse().unwrap_or(0.0);
            } else if let Some(v) = field(line, "events_per_sec") {
                b.events_per_sec = v.parse().unwrap_or(0.0);
            } else if let Some(v) = field(line, "match_probes") {
                b.match_probes = v.parse().unwrap_or(0);
            } else if let Some(v) = field(line, "share_recomputes") {
                b.share_recomputes = v.parse().unwrap_or(0);
            }
        }
    }
    out
}

/// Render the suite results (optionally with fold-in baselines) as the
/// `BENCH_PR2.json` trajectory document.
pub fn to_json(scale: Scale, results: &[PerfResult], baselines: &[(String, Baseline)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"pr\": 4,\n");
    s.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"wall_ms\": {:.3},\n", r.wall_ms));
        s.push_str(&format!("      \"wall_min_ms\": {:.3},\n", r.wall_min_ms));
        s.push_str(&format!("      \"wall_max_ms\": {:.3},\n", r.wall_max_ms));
        s.push_str(&format!("      \"events\": {},\n", r.events));
        s.push_str(&format!(
            "      \"events_per_sec\": {:.1},\n",
            r.events_per_sec
        ));
        s.push_str(&format!("      \"threads\": {},\n", r.threads));
        s.push_str(&format!("      \"match_probes\": {},\n", r.match_probes));
        s.push_str(&format!(
            "      \"share_recomputes\": {}",
            r.share_recomputes
        ));
        if let Some((_, b)) = baselines.iter().find(|(n, _)| *n == r.name) {
            s.push_str(",\n");
            s.push_str(&format!("      \"before_wall_ms\": {:.3},\n", b.wall_ms));
            s.push_str(&format!(
                "      \"before_events_per_sec\": {:.1},\n",
                b.events_per_sec
            ));
            s.push_str(&format!(
                "      \"before_match_probes\": {},\n",
                b.match_probes
            ));
            s.push_str(&format!(
                "      \"before_share_recomputes\": {},\n",
                b.share_recomputes
            ));
            let speedup = if r.wall_ms > 0.0 {
                b.wall_ms / r.wall_ms
            } else {
                0.0
            };
            s.push_str(&format!("      \"speedup\": {speedup:.2}\n"));
        } else {
            s.push('\n');
        }
        s.push_str("    }");
        if i + 1 < results.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut i = 0;
        let (t, _) = time_median(0, 3, || {
            i += 1;
            if i == 2 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert!(
            t.median_ms < 5.0,
            "median {} should dodge the 5ms outlier",
            t.median_ms
        );
        // The outlier still shows up in the spread.
        assert!(t.max_ms >= 5.0);
        assert!(t.min_ms <= t.median_ms && t.median_ms <= t.max_ms);
    }

    #[test]
    fn json_roundtrips_through_baseline_parser() {
        let results = vec![PerfResult {
            name: "matching_posted".into(),
            wall_ms: 12.5,
            wall_min_ms: 12.0,
            wall_max_ms: 13.0,
            events: 1000,
            events_per_sec: 80_000.0,
            match_probes: 42,
            share_recomputes: 7,
            threads: 1,
        }];
        let json = to_json(Scale::Quick, &results, &[]);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "matching_posted");
        assert!((parsed[0].1.wall_ms - 12.5).abs() < 1e-9);
        assert_eq!(parsed[0].1.match_probes, 42);
        // And the fold-in path emits speedups.
        let merged = to_json(Scale::Quick, &results, &parsed);
        assert!(merged.contains("\"speedup\": 1.00"));
    }

    #[test]
    fn null_recorder_adds_zero_counters() {
        // The default (recorder-off) path must be observationally free:
        // identical timing and identical WorldStats counters whether the
        // NullRecorder is implicit, explicit, or replaced by a live
        // MemRecorder.
        use adapt_noise::ClusterNoise;
        use adapt_obs::NullRecorder;
        let run = |rec: Option<Box<dyn adapt_obs::Recorder>>| {
            let spec = profiles::minicluster(2, 2, 4);
            let mut world = World::cpu(spec, 16, ClusterNoise::silent(16));
            if let Some(rec) = rec {
                world = world.with_recorder(rec);
            }
            let case = CollectiveCase {
                machine: profiles::minicluster(2, 2, 4),
                nranks: 16,
                op: OpKind::Bcast,
                library: Library::OmpiAdapt,
                msg_bytes: 1 << 20,
            };
            let res = world.run(case.programs());
            assert!(res.audit.is_clean(), "{}", res.audit);
            res
        };
        let plain = run(None);
        let null = run(Some(Box::new(NullRecorder)));
        let mem = run(Some(Box::new(MemRecorder::with_metrics(10_000))));
        assert_eq!(format!("{}", plain.stats), format!("{}", null.stats));
        assert_eq!(format!("{}", plain.stats), format!("{}", mem.stats));
        assert_eq!(plain.makespan, null.makespan);
        assert_eq!(plain.makespan, mem.makespan);
        assert!(plain.obs.is_none() && null.obs.is_none());
        assert!(mem.obs.is_some());
    }

    #[test]
    fn fig8_totals_are_pool_width_invariant() {
        // The pooled sweep only reorders which world runs when; the summed
        // counters must not notice the pool width.
        let mk = |threads| Fig8Params {
            nodes: 1,
            nranks: 32,
            warmup: 0,
            iters: 1,
            mode: Fig8Mode::Plain,
            threads,
        };
        let seq = bench_fig8_with("fig8_width_probe", &mk(1));
        let par = bench_fig8_with("fig8_width_probe", &mk(4));
        assert_eq!(seq.events, par.events);
        assert_eq!(seq.match_probes, par.match_probes);
        assert_eq!(seq.share_recomputes, par.share_recomputes);
        assert_eq!(seq.threads, 1);
        assert_eq!(par.threads, 4);
    }

    #[test]
    fn matching_worlds_run_clean_at_tiny_scale() {
        let stats = matching_world(64, 1024, Box::new(PrePoster { count: 64, done: 0 }));
        assert_eq!(stats.messages, 64);
        let stats = matching_world(
            64,
            1024,
            Box::new(LatePoster {
                count: 64,
                delay: SimDuration::from_millis(50),
                done: 0,
            }),
        );
        assert_eq!(stats.unexpected_matches, 64);
        assert!(stats.match_probes > 0);
    }
}
