//! # adapt-bench — figure and table regeneration harness
//!
//! One binary per figure/table of the paper's evaluation (see DESIGN.md's
//! per-experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig7`  | noise-impact bars (broadcast + reduce, 4 MB) |
//! | `fig8`  | topology-aware algorithm sweep over message sizes |
//! | `fig9`  | end-to-end library sweep over message sizes |
//! | `fig10` | CPU strong scaling, 4 MB |
//! | `fig11` | GPU sweep + strong scaling |
//! | `table1` | ASP communication vs total runtime |
//! | `noise_propagation` | §2.1's dependency analysis, quantified |
//! | `ablation` | M>N windows, GPU staging, GPU-offloaded reduce |
//!
//! All binaries take `--machine cori|stampede2` (where applicable) and
//! `--scale full|quick`; `quick` shrinks rank counts and iteration counts
//! so the whole suite runs in minutes on a laptop.

pub mod barometer;
pub mod perf;

use adapt_sim::WorkerPool;
use std::collections::HashMap;

/// Evaluate a `rows × cols` grid of independent simulations on a
/// [`WorkerPool`] spanning the host's cores, returning cells in row-major
/// order. Every cell builds its own world inside the job, so the grid is
/// embarrassingly parallel and the results are identical to the
/// sequential nest at any pool width (the pool preserves submission
/// order). This replaces the old `rayon::par_iter` nests in the figure
/// binaries — the vendored rayon is a sequential stub.
pub fn pool_grid<R, C, T, F>(rows: &[R], cols: &[C], f: F) -> Vec<Vec<T>>
where
    R: Clone + Send + 'static,
    C: Clone + Send + 'static,
    T: Send + 'static,
    F: Fn(R, C) -> T + Send + Sync + 'static,
{
    let pool = WorkerPool::new(WorkerPool::host_threads());
    let items: Vec<(R, C)> = rows
        .iter()
        .flat_map(|r| cols.iter().map(|c| (r.clone(), c.clone())))
        .collect();
    let mut flat = pool.map(items, move |(r, c)| f(r, c)).into_iter();
    rows.iter()
        .map(|_| {
            (0..cols.len())
                .map(|_| flat.next().expect("grid"))
                .collect()
        })
        .collect()
}

/// One pooled map over `items` across the host's cores, order-preserving.
pub fn pool_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(I) -> T + Send + Sync + 'static,
{
    WorkerPool::new(WorkerPool::host_threads()).map(items, f)
}

/// Crude `--key value` argument parser (no external deps).
pub fn parse_args() -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let val = args.next().unwrap_or_else(|| "true".into());
            out.insert(key.to_string(), val);
        }
    }
    out
}

/// Measurement scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale rank counts and iteration counts.
    Full,
    /// Shrunk for fast sanity runs.
    Quick,
}

impl Scale {
    /// Read from parsed args (default full).
    pub fn from_args(args: &HashMap<String, String>) -> Scale {
        match args.get("scale").map(String::as_str) {
            Some("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }
}

/// The CPU machines of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuMachine {
    /// Cori-like (Aries), 1024 ranks at full scale.
    Cori,
    /// Stampede2-like (Omni-Path), 1536 ranks at full scale.
    Stampede2,
}

impl CpuMachine {
    /// Read from parsed args (default cori).
    pub fn from_args(args: &HashMap<String, String>) -> CpuMachine {
        match args.get("machine").map(String::as_str) {
            Some("stampede2") => CpuMachine::Stampede2,
            _ => CpuMachine::Cori,
        }
    }

    /// Profile + rank count at the given scale.
    pub fn instantiate(self, scale: Scale) -> (adapt_topology::MachineSpec, u32) {
        match (self, scale) {
            (CpuMachine::Cori, Scale::Full) => (adapt_topology::profiles::cori(32), 1024),
            (CpuMachine::Cori, Scale::Quick) => (adapt_topology::profiles::cori(4), 128),
            (CpuMachine::Stampede2, Scale::Full) => (adapt_topology::profiles::stampede2(32), 1536),
            (CpuMachine::Stampede2, Scale::Quick) => (adapt_topology::profiles::stampede2(4), 192),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CpuMachine::Cori => "Cori",
            CpuMachine::Stampede2 => "Stampede2",
        }
    }
}

/// Message sizes of Figures 8 and 9 (64 KB – 4 MB).
pub const FIG89_SIZES: [u64; 7] = [
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
];

/// Pretty size label ("64K", "4M").
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else {
        format!("{}K", bytes >> 10)
    }
}

/// Render an aligned text table: header row, then rows of (label, cells).
pub fn print_table(title: &str, header: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n=== {title} ===");
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(10))
        .max()
        .unwrap();
    let cell_w = header
        .iter()
        .map(String::len)
        .chain(
            rows.iter()
                .flat_map(|(_, cells)| cells.iter().map(String::len)),
        )
        .max()
        .unwrap_or(8)
        .max(8);
    print!("{:<label_w$}", "");
    for h in header {
        print!("  {h:>cell_w$}");
    }
    println!();
    for (label, cells) in rows {
        print!("{label:<label_w$}");
        for c in cells {
            print!("  {c:>cell_w$}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_labels() {
        assert_eq!(size_label(64 << 10), "64K");
        assert_eq!(size_label(4 << 20), "4M");
    }

    #[test]
    fn machines_instantiate_at_both_scales() {
        let (m, n) = CpuMachine::Cori.instantiate(Scale::Full);
        assert_eq!(n, 1024);
        assert_eq!(m.cpu_job_size(), 1024);
        let (m, n) = CpuMachine::Stampede2.instantiate(Scale::Quick);
        assert_eq!(n, 192);
        assert!(m.cpu_job_size() >= 192);
    }
}
