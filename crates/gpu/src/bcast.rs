//! GPU-aware ADAPT broadcast with the explicit CPU staging buffer of §4.1.
//!
//! Node leaders are the PCI-Express hot spots: unoptimized they pull the
//! same segment out of GPU memory once per outgoing lane (next node leader,
//! next socket leader, intra-socket neighbour), so the three flows share
//! one PCIe direction at a third of its bandwidth each (paper Figure 6a/b).
//! With the explicit buffer:
//!
//! - non-root node leaders **receive into host memory**, forward every
//!   child from that cached host copy (no repeated device reads), and
//!   flush each segment to their own GPU with an asynchronous copy;
//! - the root caches its GPU payload into host memory segment by segment
//!   and sends from the cache.
//!
//! NIC↔host, host→GPU flush, and GPU→GPU neighbour traffic then ride
//! different PCIe lanes and overlap (Figure 6c).

use adapt_core::{AdaptConfig, Segments, Tree};
use adapt_mpi::{program::ANY_TAG, Completion, Payload, ProgramCtx, RankProgram, Tag, Token};
use adapt_topology::{Hierarchy, MemSpace, Placement};
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;
const KIND_CACHE: u8 = 3;
const KIND_FLUSH: u8 = 4;

fn tok(kind: u8, peer: u32, seg: u64) -> Token {
    Token(((kind as u64) << 56) | ((peer as u64) << 32) | seg)
}

fn untok(t: Token) -> (u8, u32, u64) {
    (
        (t.0 >> 56) as u8,
        ((t.0 >> 32) & 0xFF_FFFF) as u32,
        t.0 & 0xFFFF_FFFF,
    )
}

/// Description of one GPU-aware ADAPT broadcast.
#[derive(Clone)]
pub struct GpuBcastSpec {
    /// GPU job placement (one rank per GPU).
    pub placement: Placement,
    /// Communication tree (usually the topology-aware tree).
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline configuration.
    pub cfg: AdaptConfig,
    /// Enable the explicit CPU staging buffer (§4.1). Disabled = every
    /// transfer originates/terminates in device memory (the baseline data
    /// path, used by the staging ablation).
    pub staging: bool,
}

impl GpuBcastSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        let h = Hierarchy::build(&self.placement);
        (0..self.tree.len())
            .map(|r| {
                let leader = h.is_node_leader(r);
                Box::new(GpuAdaptBcast::new(self, r, leader)) as Box<dyn RankProgram>
            })
            .collect()
    }
}

/// One rank's GPU-aware event-driven broadcast.
pub struct GpuAdaptBcast {
    parent: Option<u32>,
    children: Vec<u32>,
    segs: Segments,
    cfg: AdaptConfig,
    /// Staging active on this rank (node leader with staging enabled).
    staged: bool,
    is_root: bool,
    /// Host and device memory spaces of this rank.
    host: Option<MemSpace>,
    device: Option<MemSpace>,
    /// Segments available for forwarding, in availability order.
    ready: Vec<u64>,
    cursor: Vec<usize>,
    outstanding: Vec<u32>,
    sends_done: u64,
    recvs_done: u64,
    recvs_posted: u64,
    /// Root staging: cache (device→host) copies issued / completed.
    caches_issued: u64,
    caches_done: u64,
    /// Leader staging: flush (host→device) copies completed.
    flushes_done: u64,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl GpuAdaptBcast {
    fn new(spec: &GpuBcastSpec, rank: u32, node_leader: bool) -> GpuAdaptBcast {
        let segs = Segments::new(spec.msg_bytes, spec.cfg.seg_size);
        let children = spec.tree.children(rank).to_vec();
        let is_root = rank == spec.tree.root();
        let staged = spec.staging && node_leader;
        let nseg = segs.count();
        let ready = if is_root && !staged {
            (0..nseg).collect()
        } else {
            Vec::new() // root-with-staging readies segments as caches land
        };
        GpuAdaptBcast {
            parent: spec.tree.parent(rank),
            children: children.clone(),
            segs,
            cfg: spec.cfg,
            staged,
            is_root,
            host: Some(spec.placement.host_mem(rank)),
            device: Some(spec.placement.default_mem(rank)),
            ready,
            cursor: vec![0; children.len()],
            outstanding: vec![0; children.len()],
            sends_done: 0,
            recvs_done: 0,
            recvs_posted: 0,
            caches_issued: 0,
            caches_done: 0,
            flushes_done: 0,
            finished: false,
            finished_at: None,
        }
    }

    fn nseg(&self) -> u64 {
        self.segs.count()
    }

    /// Memory segments are sent from on this rank.
    fn send_mem(&self) -> MemSpace {
        if self.staged {
            self.host.expect("host mem")
        } else {
            self.device.expect("device mem")
        }
    }

    /// Memory receives land in on this rank.
    fn recv_mem(&self) -> MemSpace {
        if self.staged {
            self.host.expect("host mem")
        } else {
            self.device.expect("device mem")
        }
    }

    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx, c: usize) {
        while self.outstanding[c] < self.cfg.outstanding_sends && self.cursor[c] < self.ready.len()
        {
            let seg = self.ready[self.cursor[c]];
            self.cursor[c] += 1;
            self.outstanding[c] += 1;
            let payload = Payload::Synthetic(self.segs.len(seg));
            ctx.isend_from(
                self.send_mem(),
                self.children[c],
                seg as Tag,
                payload,
                tok(KIND_SEND, c as u32, seg),
            );
        }
    }

    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        let Some(parent) = self.parent else { return };
        while self.recvs_posted < self.nseg()
            && self.recvs_posted - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let idx = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv_into(self.recv_mem(), parent, ANY_TAG, tok(KIND_RECV, 0, idx));
        }
    }

    /// Root staging: keep a window of device→host cache copies in flight.
    fn push_caches(&mut self, ctx: &mut dyn ProgramCtx) {
        if !(self.is_root && self.staged) {
            return;
        }
        while self.caches_issued < self.nseg()
            && self.caches_issued - self.caches_done < self.cfg.outstanding_recvs as u64
        {
            let seg = self.caches_issued;
            self.caches_issued += 1;
            ctx.copy(
                self.device.expect("device"),
                self.host.expect("host"),
                self.segs.len(seg),
                tok(KIND_CACHE, 0, seg),
            );
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        let recv_done = self.is_root || self.recvs_done == self.nseg();
        let send_done = self.sends_done == self.nseg() * self.children.len() as u64;
        // Staged non-root leaders must also have flushed their own GPU copy.
        let flush_done = !self.staged || self.is_root || self.flushes_done == self.nseg();
        let cache_done = !(self.is_root && self.staged) || self.caches_done == self.nseg();
        if recv_done && send_done && flush_done && cache_done {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }
}

impl RankProgram for GpuAdaptBcast {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.nseg() == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_caches(ctx);
        self.push_recvs(ctx);
        for c in 0..self.children.len() {
            self.push_sends(ctx, c);
        }
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, c, _) = untok(token);
                debug_assert_eq!(kind, KIND_SEND);
                let c = c as usize;
                self.outstanding[c] -= 1;
                self.sends_done += 1;
                self.push_sends(ctx, c);
            }
            Completion::RecvDone { token, tag, .. } => {
                let (kind, _, _) = untok(token);
                debug_assert_eq!(kind, KIND_RECV);
                let seg = tag as u64;
                self.recvs_done += 1;
                self.ready.push(seg);
                self.push_recvs(ctx);
                for c in 0..self.children.len() {
                    self.push_sends(ctx, c);
                }
                if self.staged {
                    // Flush the cached segment to this rank's own GPU.
                    ctx.copy(
                        self.host.expect("host"),
                        self.device.expect("device"),
                        self.segs.len(seg),
                        tok(KIND_FLUSH, 0, seg),
                    );
                }
            }
            Completion::CopyDone { token } => {
                let (kind, _, seg) = untok(token);
                match kind {
                    KIND_CACHE => {
                        self.caches_done += 1;
                        self.ready.push(seg);
                        self.push_caches(ctx);
                        for c in 0..self.children.len() {
                            self.push_sends(ctx, c);
                        }
                    }
                    KIND_FLUSH => {
                        self.flushes_done += 1;
                    }
                    k => panic!("unexpected copy kind {k}"),
                }
            }
            other => panic!("gpu bcast got {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_core::{topology_aware_tree, TopoTreeConfig};
    use adapt_mpi::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn run(staging: bool, nodes: u32, msg: u64) -> adapt_sim::time::Duration {
        let machine = profiles::psg(nodes);
        let nranks = machine.gpu_job_size();
        let placement = Placement::block_gpu(machine.shape, nranks);
        let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
        let spec = GpuBcastSpec {
            placement,
            tree,
            msg_bytes: msg,
            cfg: AdaptConfig::default(),
            staging,
        };
        let world = World::gpu(machine, nranks, ClusterNoise::silent(nranks));
        world.run(spec.programs()).makespan
    }

    #[test]
    fn staged_broadcast_completes() {
        let t = run(true, 2, 8 << 20);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn staging_beats_unstaged_on_multinode_jobs() {
        // The §4.1 claim: with the explicit CPU buffer the node leader's
        // lanes overlap instead of sharing one PCIe direction.
        let msg = 32 << 20;
        let staged = run(true, 4, msg);
        let unstaged = run(false, 4, msg);
        assert!(
            staged.as_nanos() < unstaged.as_nanos(),
            "staged={staged} unstaged={unstaged}"
        );
    }

    #[test]
    fn single_node_job_runs() {
        let t = run(true, 1, 4 << 20);
        assert!(t.as_nanos() > 0);
    }
}
