//! # adapt-gpu — GPU cluster support (paper §4)
//!
//! The two GPU optimizations of the paper on the simulated PCIe/NIC
//! substrate:
//!
//! - **Explicit CPU staging buffer** (§4.1, [`GpuBcastSpec`]): node leaders
//!   cache received segments in host memory and feed all their outgoing
//!   lanes from the cache, splitting NIC, flush, and neighbour traffic
//!   across different PCIe lanes instead of congesting one direction.
//! - **GPU-offloaded reduction** (§4.2): the fold executes asynchronously
//!   on the rank's GPU stream (`ReduceExec::GpuAsync` in `adapt-core`),
//!   overlapping with communication instead of blocking the progress
//!   engine.
//!
//! [`runner`] maps the Figure 11 comparators (MVAPICH2, OMPI-default,
//! OMPI-adapt) to concrete GPU data paths.

pub mod bcast;
pub mod runner;

pub use bcast::{GpuAdaptBcast, GpuBcastSpec};
pub use runner::{run_gpu_once, GpuCase, GpuLibrary};
