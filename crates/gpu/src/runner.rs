//! GPU library presets and measurement harness (paper Figure 11).
//!
//! ### Comparator emulation
//!
//! | Paper series | Emulation |
//! |---|---|
//! | OMPI-adapt | Event-driven engine + topology-aware tree + explicit CPU staging (§4.1) + GPU-stream reduction (§4.2) |
//! | MVAPICH | Waitall engine over the topology-aware tree (GPU-aware pairwise paths, no staging, no level overlap); CPU-executed reduction |
//! | OMPI-default | Waitall engine with the `tuned` decision — which was not designed for GPUs and picks a non-chain tree (§5.2.2); CPU-executed reduction |

use crate::bcast::GpuBcastSpec;
use adapt_collectives::{tuned, WaitallBcastSpec, WaitallReduceSpec};
use adapt_core::{
    topology_aware_tree, AdaptConfig, ReduceData, ReduceExec, ReduceSpec, TopoTreeConfig, Tree,
};
use adapt_mpi::{RankProgram, World, WorldStats};
use adapt_noise::ClusterNoise;
use adapt_topology::{MachineSpec, Placement};
use std::sync::Arc;

/// GPU-data collective libraries compared in Figure 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GpuLibrary {
    /// ADAPT with both GPU optimizations.
    OmpiAdapt,
    /// MVAPICH2 emulation.
    Mvapich,
    /// Open MPI default (tuned) emulation.
    OmpiDefault,
}

impl GpuLibrary {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            GpuLibrary::OmpiAdapt => "OMPI-adapt",
            GpuLibrary::Mvapich => "MVAPICH",
            GpuLibrary::OmpiDefault => "OMPI-default",
        }
    }
}

/// One GPU collective configuration.
#[derive(Clone)]
pub struct GpuCase {
    /// GPU machine profile (PSG-like).
    pub machine: MachineSpec,
    /// Ranks (one per GPU).
    pub nranks: u32,
    /// The operation.
    pub op: adapt_collectives::OpKind,
    /// The library preset.
    pub library: GpuLibrary,
    /// Message size in bytes.
    pub msg_bytes: u64,
}

impl GpuCase {
    fn placement(&self) -> Placement {
        Placement::block_gpu(self.machine.shape, self.nranks)
    }

    fn topo_tree(&self) -> Arc<Tree> {
        Arc::new(topology_aware_tree(
            &self.placement(),
            TopoTreeConfig::default(),
        ))
    }

    /// Build the per-rank programs (synthetic payloads).
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        use adapt_collectives::OpKind;
        let msg = self.msg_bytes;
        match (self.op, self.library) {
            (OpKind::Bcast, GpuLibrary::OmpiAdapt) => GpuBcastSpec {
                placement: self.placement(),
                tree: self.topo_tree(),
                msg_bytes: msg,
                cfg: AdaptConfig::default(),
                staging: true,
            }
            .programs(),
            (OpKind::Bcast, GpuLibrary::Mvapich) => WaitallBcastSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                seg_size: 256 * 1024,
                data: None,
            }
            .programs(),
            (OpKind::Bcast, GpuLibrary::OmpiDefault) => {
                let d = tuned::bcast(self.nranks, msg);
                WaitallBcastSpec {
                    tree: Arc::new(Tree::build(d.tree, self.nranks, 0)),
                    msg_bytes: msg,
                    seg_size: d.seg_size,
                    data: None,
                }
                .programs()
            }
            (OpKind::Reduce, GpuLibrary::OmpiAdapt) => ReduceSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                cfg: AdaptConfig::default(),
                data: ReduceData::Synthetic,
                exec: ReduceExec::GpuAsync,
            }
            .programs(),
            (OpKind::Reduce, GpuLibrary::Mvapich) => WaitallReduceSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                seg_size: 256 * 1024,
                data: None,
            }
            .programs(),
            (OpKind::Reduce, GpuLibrary::OmpiDefault) => {
                let d = tuned::reduce(self.nranks, msg);
                WaitallReduceSpec {
                    tree: Arc::new(Tree::build(d.tree, self.nranks, 0)),
                    msg_bytes: msg,
                    seg_size: d.seg_size,
                    data: None,
                }
                .programs()
            }
        }
    }
}

/// Run one GPU case; returns completion time in microseconds.
pub fn run_gpu_once(case: &GpuCase) -> (f64, WorldStats) {
    let world = World::gpu(
        case.machine.clone(),
        case.nranks,
        ClusterNoise::silent(case.nranks),
    );
    let res = world.run(case.programs());
    assert!(
        res.audit.is_clean(),
        "{} {:?} {}B: {}",
        case.library.label(),
        case.op,
        case.msg_bytes,
        res.audit
    );
    (res.makespan.as_micros_f64(), res.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_collectives::OpKind;
    use adapt_topology::profiles;

    fn case(lib: GpuLibrary, op: OpKind, nodes: u32, msg: u64) -> GpuCase {
        let machine = profiles::psg(nodes);
        GpuCase {
            nranks: machine.gpu_job_size(),
            machine,
            op,
            library: lib,
            msg_bytes: msg,
        }
    }

    #[test]
    fn all_gpu_libraries_run() {
        for lib in [
            GpuLibrary::OmpiAdapt,
            GpuLibrary::Mvapich,
            GpuLibrary::OmpiDefault,
        ] {
            for op in [OpKind::Bcast, OpKind::Reduce] {
                let (us, _) = run_gpu_once(&case(lib, op, 2, 4 << 20));
                assert!(us > 0.0, "{} {:?}", lib.label(), op);
            }
        }
    }

    #[test]
    fn adapt_wins_gpu_broadcast() {
        let msg = 32 << 20;
        let adapt = run_gpu_once(&case(GpuLibrary::OmpiAdapt, OpKind::Bcast, 4, msg)).0;
        for lib in [GpuLibrary::Mvapich, GpuLibrary::OmpiDefault] {
            let other = run_gpu_once(&case(lib, OpKind::Bcast, 4, msg)).0;
            assert!(
                adapt < other,
                "adapt {adapt:.0}us vs {} {other:.0}us",
                lib.label()
            );
        }
    }

    #[test]
    fn adapt_gpu_scaling_is_nearly_flat() {
        // Figure 11b: ADAPT's GPU broadcast time barely grows from 1 to 4
        // nodes, while OMPI-default's (wrong tree, no staging) does.
        let t = |lib: GpuLibrary, nodes: u32| {
            run_gpu_once(&case(lib, OpKind::Bcast, nodes, 32 << 20)).0
        };
        let adapt_growth = t(GpuLibrary::OmpiAdapt, 4) / t(GpuLibrary::OmpiAdapt, 1);
        let default_growth = t(GpuLibrary::OmpiDefault, 4) / t(GpuLibrary::OmpiDefault, 1);
        assert!(adapt_growth < 1.5, "adapt growth {adapt_growth:.2}x");
        assert!(
            default_growth > adapt_growth,
            "default {default_growth:.2}x vs adapt {adapt_growth:.2}x"
        );
    }

    #[test]
    fn adapt_gpu_reduce_is_much_faster() {
        // Figure 11a: the GPU-offloaded, overlapped reduction wins by a
        // large factor over CPU-executed folds.
        let msg = 32 << 20;
        let adapt = run_gpu_once(&case(GpuLibrary::OmpiAdapt, OpKind::Reduce, 4, msg)).0;
        let mvapich = run_gpu_once(&case(GpuLibrary::Mvapich, OpKind::Reduce, 4, msg)).0;
        assert!(
            adapt * 3.0 < mvapich,
            "expected ≥3x win, got adapt={adapt:.0}us mvapich={mvapich:.0}us"
        );
    }
}
