//! ASP — the all-pairs-shortest-path application of the paper's §5.3
//! (Plaat et al.'s parallel Floyd–Warshall).
//!
//! Each outer iteration `k` broadcasts one matrix row (the owner of row
//! `k` is the root) and then every rank relaxes its local rows against it.
//! Communication dominates, so the broadcast implementation decides the
//! application's runtime — Table 1's comparison.
//!
//! This module is the *performance* model: synthetic row payloads, real
//! schedules (one broadcast per iteration, rotating roots, modelled
//! relaxation compute). The numerically verified distributed
//! Floyd–Warshall lives in [`crate::verify`].

use adapt_collectives::{tuned, HierBcastSpec, HierLevels, PhasedProgram, WaitallBcastSpec};
use adapt_collectives::{BlockingBcastSpec, Library};
use adapt_core::{
    topology_aware_tree_rooted, AdaptConfig, BcastSpec, TopoTreeConfig, Tree, TreeKind,
};
use adapt_mpi::{Completion, Op, ProgramCtx, RankProgram, Token, World};
use adapt_noise::ClusterNoise;
use adapt_sim::time::Duration;
use adapt_topology::{MachineSpec, Placement};
use std::sync::Arc;

/// Token reserved for the relaxation compute appended to each iteration.
const COMPUTE_TOKEN: Token = Token(u64::MAX - 1);

/// ASP configuration.
#[derive(Clone)]
pub struct AspConfig {
    /// Machine profile.
    pub machine: MachineSpec,
    /// Ranks.
    pub nranks: u32,
    /// Broadcast library under test.
    pub library: Library,
    /// Bytes per row broadcast (the paper's runs have 1 MB rows).
    pub row_bytes: u64,
    /// Outer-loop iterations simulated (rows are distributed cyclically so
    /// roots rotate even in shortened runs; see EXPERIMENTS.md for the
    /// scaling discussion).
    pub iterations: u32,
    /// Local relaxation cost per iteration per rank.
    pub compute_per_iter: Duration,
}

/// Result of one ASP run.
#[derive(Clone, Copy, Debug)]
pub struct AspResult {
    /// Wall time of the whole application (seconds).
    pub total_s: f64,
    /// Time not covered by local compute ≈ communication time (seconds),
    /// computed as `total - iterations × compute_per_iter` (compute is
    /// identical on every rank).
    pub communication_s: f64,
}

impl AspResult {
    /// Fraction of the runtime spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_s <= 0.0 {
            return 0.0;
        }
        self.communication_s / self.total_s
    }
}

/// Wraps a collective program and appends a fixed compute stage after it:
/// the per-iteration "broadcast row, then relax local rows" unit.
struct WithCompute {
    inner: Option<Box<dyn RankProgram>>,
    work: Duration,
    computing: bool,
}

impl WithCompute {
    fn new(inner: Box<dyn RankProgram>, work: Duration) -> WithCompute {
        WithCompute {
            inner: Some(inner),
            work,
            computing: false,
        }
    }

    fn drive(&mut self, ctx: &mut dyn ProgramCtx, event: Option<Completion>) {
        let mut inner = self.inner.take().expect("inner program");
        let mut caught = false;
        {
            let mut fctx = FinishCatcher {
                inner: ctx,
                caught: &mut caught,
            };
            match event {
                None => inner.on_start(&mut fctx),
                Some(c) => inner.on_completion(&mut fctx, c),
            }
        }
        self.inner = Some(inner);
        if caught {
            self.computing = true;
            ctx.compute(self.work, COMPUTE_TOKEN);
        }
    }
}

impl RankProgram for WithCompute {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.drive(ctx, None);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        if self.computing && completion.token() == COMPUTE_TOKEN {
            ctx.finish();
            return;
        }
        self.drive(ctx, Some(completion));
    }
}

/// Ctx facade that swallows `finish` and reports it to the wrapper.
struct FinishCatcher<'a> {
    inner: &'a mut dyn ProgramCtx,
    caught: &'a mut bool,
}

impl ProgramCtx for FinishCatcher<'_> {
    fn rank(&self) -> u32 {
        self.inner.rank()
    }
    fn nranks(&self) -> u32 {
        self.inner.nranks()
    }
    fn now(&self) -> adapt_sim::time::Time {
        self.inner.now()
    }
    fn mem_of(&self, rank: u32) -> adapt_topology::MemSpace {
        self.inner.mem_of(rank)
    }
    fn host_of(&self, rank: u32) -> adapt_topology::MemSpace {
        self.inner.host_of(rank)
    }
    fn cpu_reduce_cost(&self, bytes: u64) -> Duration {
        self.inner.cpu_reduce_cost(bytes)
    }
    fn eager_limit(&self) -> u64 {
        self.inner.eager_limit()
    }
    fn post(&mut self, op: Op) {
        if matches!(op, Op::Finish) {
            debug_assert!(!*self.caught, "double finish from inner program");
            *self.caught = true;
            return;
        }
        self.inner.post(op);
    }
}

/// Build every rank's iteration-`i` broadcast program (root rotates
/// cyclically over ranks).
fn iteration_bcasts(
    cfg: &AspConfig,
    placement: &Placement,
    root: u32,
) -> Vec<Box<dyn RankProgram>> {
    let n = cfg.nranks;
    let msg = cfg.row_bytes;
    match cfg.library {
        Library::OmpiAdapt => {
            let tree = Arc::new(topology_aware_tree_rooted(
                placement,
                TopoTreeConfig::default(),
                root,
            ));
            BcastSpec {
                tree,
                msg_bytes: msg,
                cfg: AdaptConfig::default().with_seg_size(64 * 1024),
                data: None,
            }
            .programs()
        }
        Library::OmpiDefault => {
            let d = tuned::bcast(n, msg);
            WaitallBcastSpec {
                tree: Arc::new(Tree::build(d.tree, n, root)),
                msg_bytes: msg,
                seg_size: d.seg_size,
                data: None,
            }
            .programs()
        }
        Library::CrayMpi => BlockingBcastSpec {
            tree: Arc::new(topology_aware_tree_rooted(
                placement,
                TopoTreeConfig::default(),
                root,
            )),
            msg_bytes: msg,
            seg_size: 64 * 1024,
            data: None,
        }
        .programs(),
        Library::IntelMpi => {
            // Flattened hierarchical phases would nest PhasedPrograms; use
            // the spec's own program, then flatten below via phase_lists.
            unreachable!("Intel handled by iteration_phase_lists")
        }
        other => panic!("ASP does not support {other:?}"),
    }
}

/// Per-rank phase lists for iteration `i` (most libraries contribute one
/// phase; the hierarchical Intel emulation contributes its level phases).
fn iteration_phases(
    cfg: &AspConfig,
    placement: &Placement,
    root: u32,
) -> Vec<Vec<Box<dyn RankProgram>>> {
    if cfg.library == Library::IntelMpi {
        HierBcastSpec {
            placement: placement.clone(),
            root,
            msg_bytes: cfg.row_bytes,
            levels: HierLevels {
                cluster: TreeKind::Binomial,
                node: TreeKind::Flat,
                socket: TreeKind::Knomial(4),
                seg_size: 64 * 1024,
            },
            data: None,
        }
        .phase_lists()
        .into_iter()
        .map(|(phases, _slot)| phases)
        .collect()
    } else {
        iteration_bcasts(cfg, placement, root)
            .into_iter()
            .map(|p| vec![p])
            .collect()
    }
}

/// Assemble the per-rank ASP programs.
pub fn asp_programs(cfg: &AspConfig) -> Vec<Box<dyn RankProgram>> {
    let placement = Placement::block_cpu(cfg.machine.shape, cfg.nranks);
    let mut per_rank: Vec<Vec<Box<dyn RankProgram>>> =
        (0..cfg.nranks).map(|_| Vec::new()).collect();
    for i in 0..cfg.iterations {
        let root = i % cfg.nranks;
        let phase_lists = iteration_phases(cfg, &placement, root);
        for (r, mut phases) in phase_lists.into_iter().enumerate() {
            // Attach the relaxation compute to the iteration's last phase.
            let last = phases.pop().expect("at least one phase");
            phases.push(Box::new(WithCompute::new(last, cfg.compute_per_iter)));
            per_rank[r].extend(phases);
        }
    }
    per_rank
        .into_iter()
        .map(|phases| Box::new(PhasedProgram::new(phases)) as Box<dyn RankProgram>)
        .collect()
}

/// Run ASP and report total vs communication time (Table 1's two rows).
pub fn run_asp(cfg: &AspConfig) -> AspResult {
    let world = World::cpu(
        cfg.machine.clone(),
        cfg.nranks,
        ClusterNoise::silent(cfg.nranks),
    );
    let res = world.run(asp_programs(cfg));
    let total_s = res.makespan.as_secs_f64();
    let compute_s = cfg.iterations as f64 * cfg.compute_per_iter.as_secs_f64();
    AspResult {
        total_s,
        communication_s: (total_s - compute_s).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_topology::profiles;

    fn cfg(library: Library) -> AspConfig {
        AspConfig {
            machine: profiles::minicluster(2, 2, 4),
            nranks: 16,
            library,
            row_bytes: 256 * 1024,
            iterations: 6,
            compute_per_iter: Duration::from_micros(20),
        }
    }

    #[test]
    fn asp_runs_on_all_table1_libraries() {
        for lib in [
            Library::OmpiAdapt,
            Library::OmpiDefault,
            Library::CrayMpi,
            Library::IntelMpi,
        ] {
            let r = run_asp(&cfg(lib));
            assert!(r.total_s > 0.0, "{lib:?}");
            assert!(r.communication_s <= r.total_s);
            assert!(r.comm_fraction() > 0.0, "{lib:?} comm fraction");
        }
    }

    #[test]
    fn adapt_has_lowest_asp_runtime() {
        let adapt = run_asp(&cfg(Library::OmpiAdapt)).total_s;
        for lib in [Library::OmpiDefault, Library::IntelMpi] {
            let other = run_asp(&cfg(lib)).total_s;
            assert!(
                adapt < other,
                "adapt {adapt:.6}s should beat {lib:?} {other:.6}s"
            );
        }
    }

    #[test]
    fn rotating_roots_are_exercised() {
        // More iterations than ranks would wrap around; here roots 0..6 are
        // all distinct and the run must still complete deterministically.
        let a = run_asp(&cfg(Library::OmpiAdapt));
        let b = run_asp(&cfg(Library::OmpiAdapt));
        assert_eq!(a.total_s, b.total_s);
    }
}
