//! Data-parallel training step — the deep-learning workload the paper's
//! introduction motivates ("more and more applications, including ...
//! deep learning applications, are adopting accelerators").
//!
//! Each training step computes local gradients (modelled compute) and
//! allreduces them across ranks. Two gradient-exchange strategies are
//! compared:
//!
//! - [`GradStrategy::RingAllreduce`] — the event-driven ring allreduce
//!   (bandwidth-optimal, every link busy);
//! - [`GradStrategy::ReduceBcast`] — reduce to rank 0 then broadcast,
//!   both ADAPT engines over the topology-aware tree (the classic
//!   parameter-server-ish composition).
//!
//! The training loop also verifies numerically: run with real gradients
//! and the final weights must equal the sequential data-parallel update.

use adapt_collectives::PhasedProgram;
use adapt_core::{
    topology_aware_tree, AdaptBcast, AdaptConfig, AdaptReduce, AllreduceSpec, BcastSpec,
    ReduceData, ReduceExec, ReduceSpec, TopoTreeConfig,
};
use adapt_mpi::{RankProgram, World};
use adapt_noise::ClusterNoise;
use adapt_sim::time::Duration;
use adapt_topology::{MachineSpec, Placement};
use std::sync::Arc;

/// How gradients are combined each step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GradStrategy {
    /// Event-driven ring allreduce.
    RingAllreduce,
    /// ADAPT reduce to rank 0 followed by ADAPT broadcast.
    ReduceBcast,
}

/// Configuration of the synthetic training run.
#[derive(Clone)]
pub struct TrainConfig {
    /// Machine profile.
    pub machine: MachineSpec,
    /// Ranks (data-parallel workers).
    pub nranks: u32,
    /// Gradient size in bytes (model size).
    pub grad_bytes: u64,
    /// Training steps.
    pub steps: u32,
    /// Forward+backward compute per step per rank.
    pub compute_per_step: Duration,
    /// Gradient exchange strategy.
    pub strategy: GradStrategy,
}

/// Result of a training run.
#[derive(Clone, Copy, Debug)]
pub struct TrainResult {
    /// Total wall time (seconds).
    pub total_s: f64,
    /// Time per step (milliseconds).
    pub step_ms: f64,
    /// Fraction of the runtime spent communicating.
    pub comm_fraction: f64,
}

/// Per-rank phase list for one step's gradient exchange.
fn exchange_phases(cfg: &TrainConfig) -> Vec<Vec<Box<dyn RankProgram>>> {
    match cfg.strategy {
        GradStrategy::RingAllreduce => AllreduceSpec {
            nranks: cfg.nranks,
            msg_bytes: cfg.grad_bytes,
            cfg: AdaptConfig::default(),
            data: None,
        }
        .programs()
        .into_iter()
        .map(|p| vec![p])
        .collect(),
        GradStrategy::ReduceBcast => {
            let placement = Placement::block_cpu(cfg.machine.shape, cfg.nranks);
            let tree = Arc::new(topology_aware_tree(&placement, TopoTreeConfig::default()));
            let reduce = ReduceSpec {
                tree: tree.clone(),
                msg_bytes: cfg.grad_bytes,
                cfg: AdaptConfig::default(),
                data: ReduceData::Synthetic,
                exec: ReduceExec::Cpu,
            };
            let bcast = BcastSpec {
                tree,
                msg_bytes: cfg.grad_bytes,
                cfg: AdaptConfig::default(),
                data: None,
            };
            (0..cfg.nranks)
                .map(|r| {
                    vec![
                        Box::new(AdaptReduce::new(&reduce, r)) as Box<dyn RankProgram>,
                        Box::new(AdaptBcast::new(&bcast, r)) as Box<dyn RankProgram>,
                    ]
                })
                .collect()
        }
    }
}

/// Run the synthetic training loop (timing model; numerics are covered by
/// [`verify_data_parallel_sgd`]).
pub fn run_training(cfg: &TrainConfig) -> TrainResult {
    use adapt_mpi::{Completion, Op, ProgramCtx, Token};

    const STEP_COMPUTE: Token = Token(u64::MAX - 11);

    /// Wraps a phase list element: compute first, then the exchange.
    struct ComputeThen {
        inner: Option<Box<dyn RankProgram>>,
        work: Duration,
        started: bool,
    }
    impl RankProgram for ComputeThen {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            ctx.post(Op::Compute {
                work: self.work,
                token: STEP_COMPUTE,
            });
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
            if !self.started {
                debug_assert_eq!(c.token(), STEP_COMPUTE);
                self.started = true;
                self.inner.as_mut().expect("inner").on_start(ctx);
                return;
            }
            self.inner.as_mut().expect("inner").on_completion(ctx, c);
        }
    }

    let mut per_rank: Vec<Vec<Box<dyn RankProgram>>> =
        (0..cfg.nranks).map(|_| Vec::new()).collect();
    for _ in 0..cfg.steps {
        for (r, mut phases) in exchange_phases(cfg).into_iter().enumerate() {
            // Compute gates the step's first exchange phase.
            let first = phases.remove(0);
            per_rank[r].push(Box::new(ComputeThen {
                inner: Some(first),
                work: cfg.compute_per_step,
                started: false,
            }));
            per_rank[r].extend(phases);
        }
    }
    let programs: Vec<Box<dyn RankProgram>> = per_rank
        .into_iter()
        .map(|p| Box::new(PhasedProgram::new(p)) as Box<dyn RankProgram>)
        .collect();
    let world = World::cpu(
        cfg.machine.clone(),
        cfg.nranks,
        ClusterNoise::silent(cfg.nranks),
    );
    let res = world.run(programs);
    let total_s = res.makespan.as_secs_f64();
    let compute_s = cfg.steps as f64 * cfg.compute_per_step.as_secs_f64();
    TrainResult {
        total_s,
        step_ms: total_s * 1e3 / cfg.steps as f64,
        comm_fraction: ((total_s - compute_s) / total_s).max(0.0),
    }
}

/// Numeric twin: run `steps` data-parallel SGD steps with real gradients
/// through the ring allreduce and compare the final weights against a
/// sequential simulation. Returns the maximum absolute deviation.
pub fn verify_data_parallel_sgd(nranks: u32, params: usize, steps: u32, lr: f64) -> f64 {
    use adapt_core::AdaptAllreduce;
    use adapt_mpi::{bytes_to_f64, f64_to_bytes, DType, ReduceOp};
    use bytes::Bytes;

    // Deterministic synthetic "gradients": g_r(step, i) depends on rank,
    // step, and parameter index.
    let grad = |r: u32, step: u32, i: usize| -> f64 {
        (((r as usize * 31 + step as usize * 17 + i) % 23) as f64) - 11.0
    };

    // Sequential reference.
    let mut reference = vec![0.0f64; params];
    for step in 0..steps {
        for (i, w) in reference.iter_mut().enumerate() {
            let total: f64 = (0..nranks).map(|r| grad(r, step, i)).sum();
            *w -= lr * total / nranks as f64;
        }
    }

    // Distributed: one allreduce per step (fresh world per step keeps the
    // harness simple; the timing model above covers chained steps).
    let mut weights = vec![0.0f64; params];
    let machine = adapt_topology::profiles::minicluster(2, 2, (nranks).div_ceil(4).max(1));
    for step in 0..steps {
        let contributions: Arc<Vec<Bytes>> = Arc::new(
            (0..nranks)
                .map(|r| {
                    let g: Vec<f64> = (0..params).map(|i| grad(r, step, i)).collect();
                    Bytes::from(f64_to_bytes(&g))
                })
                .collect(),
        );
        let spec = AllreduceSpec {
            nranks,
            msg_bytes: (params * 8) as u64,
            cfg: AdaptConfig::default(),
            data: Some((ReduceOp::Sum, DType::F64, contributions)),
        };
        let world = World::cpu(machine.clone(), nranks, ClusterNoise::silent(nranks));
        let res = world.run(spec.programs());
        // Every rank applies the same update; check rank 0's view.
        let any: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let a = any.downcast::<AdaptAllreduce>().expect("allreduce");
        let summed = bytes_to_f64(&a.result().expect("result"));
        for (w, g) in weights.iter_mut().zip(&summed) {
            *w -= lr * g / nranks as f64;
        }
    }

    weights
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_topology::profiles;

    fn cfg(strategy: GradStrategy) -> TrainConfig {
        TrainConfig {
            machine: profiles::minicluster(4, 2, 4),
            nranks: 32,
            grad_bytes: 8 << 20, // a 2M-parameter f32 model
            steps: 4,
            compute_per_step: Duration::from_micros(800),
            strategy,
        }
    }

    #[test]
    fn ring_allreduce_beats_reduce_bcast() {
        // The ring moves 2·msg/n per link per step; reduce+bcast moves the
        // full message twice through the tree's root links.
        let ring = run_training(&cfg(GradStrategy::RingAllreduce));
        let rb = run_training(&cfg(GradStrategy::ReduceBcast));
        assert!(
            ring.total_s < rb.total_s,
            "ring {:.3}ms/step vs reduce+bcast {:.3}ms/step",
            ring.step_ms,
            rb.step_ms
        );
    }

    #[test]
    fn training_time_accounts_comm_and_compute() {
        let r = run_training(&cfg(GradStrategy::RingAllreduce));
        assert!(r.comm_fraction > 0.0 && r.comm_fraction < 1.0);
        assert!(r.step_ms > 0.8, "steps include the compute");
    }

    #[test]
    fn distributed_sgd_matches_sequential() {
        let dev = verify_data_parallel_sgd(8, 500, 3, 0.01);
        assert!(dev < 1e-12, "max deviation {dev}");
    }
}
