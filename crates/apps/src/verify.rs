//! Numerically verified distributed Floyd–Warshall.
//!
//! A small-scale, real-data twin of the [`crate::asp`] performance model:
//! the full distance matrix is distributed cyclically over ranks, each
//! iteration the owner broadcasts the pivot row, every rank relaxes its
//! local rows, and the final distributed result is checked against a
//! sequential Floyd–Warshall — end-to-end evidence that the simulated
//! runtime moves application data correctly.

use adapt_mpi::{f64_to_bytes, Completion, Payload, ProgramCtx, RankProgram, Token, World};
use adapt_noise::ClusterNoise;
use adapt_sim::rng::{MasterSeed, StreamTag};
use adapt_topology::profiles;
use rand::Rng;

/// Sequential Floyd–Warshall on an `n × n` weight matrix (row-major).
pub fn sequential_fw(n: usize, mut d: Vec<f64>) -> Vec<f64> {
    for k in 0..n {
        for i in 0..n {
            let dik = d[i * n + k];
            for j in 0..n {
                let cand = dik + d[k * n + j];
                if cand < d[i * n + j] {
                    d[i * n + j] = cand;
                }
            }
        }
    }
    d
}

/// Random dense weight matrix with zero diagonal.
pub fn random_weights(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = MasterSeed(seed).rng(StreamTag::App, 0);
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                d[i * n + j] = rng.random_range(1.0..100.0);
            }
        }
    }
    d
}

/// One rank of the distributed Floyd–Warshall (cyclic row distribution,
/// flat pivot-row broadcast).
struct FwRank {
    rank: u32,
    nranks: u32,
    n: usize,
    /// Owned rows: `rows[i]` is row `rank + i * nranks`.
    rows: Vec<Vec<f64>>,
    k: usize,
    sends_left: u32,
    current_pivot: Option<Vec<f64>>,
}

impl FwRank {
    fn new(rank: u32, nranks: u32, n: usize, full: &[f64]) -> FwRank {
        let rows = (0..n)
            .filter(|&i| i % nranks as usize == rank as usize)
            .map(|i| full[i * n..(i + 1) * n].to_vec())
            .collect();
        FwRank {
            rank,
            nranks,
            n,
            rows,
            k: 0,
            sends_left: 0,
            current_pivot: None,
        }
    }

    fn owner(&self, k: usize) -> u32 {
        (k % self.nranks as usize) as u32
    }

    fn local_row(&self, k: usize) -> usize {
        k / self.nranks as usize
    }

    /// Start iteration `k`: owner ships the pivot row, others post the
    /// receive.
    fn start_iteration(&mut self, ctx: &mut dyn ProgramCtx) {
        loop {
            if self.k == self.n {
                ctx.finish();
                return;
            }
            let k = self.k;
            if self.owner(k) == self.rank {
                let row = self.rows[self.local_row(k)].clone();
                let payload = Payload::from(f64_to_bytes(&row));
                self.current_pivot = Some(row);
                self.sends_left = self.nranks - 1;
                if self.sends_left == 0 {
                    self.relax_and_advance();
                    continue;
                }
                for peer in 0..self.nranks {
                    if peer != self.rank {
                        ctx.isend(peer, k as u32, payload.clone(), Token(k as u64));
                    }
                }
            } else {
                ctx.irecv(self.owner(k), k as u32, Token(k as u64));
            }
            return;
        }
    }

    /// Relax all owned rows against the current pivot, then move to the
    /// next iteration.
    fn relax_and_advance(&mut self) {
        let pivot = self.current_pivot.take().expect("pivot row present");
        let k = self.k;
        for row in &mut self.rows {
            let dik = row[k];
            for j in 0..self.n {
                let cand = dik + pivot[j];
                if cand < row[j] {
                    row[j] = cand;
                }
            }
        }
        self.k += 1;
    }
}

impl RankProgram for FwRank {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.start_iteration(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { .. } => {
                self.sends_left -= 1;
                if self.sends_left == 0 {
                    self.relax_and_advance();
                    self.start_iteration(ctx);
                }
            }
            Completion::RecvDone { data, .. } => {
                let bytes = data.bytes().expect("real pivot row");
                self.current_pivot = Some(adapt_mpi::bytes_to_f64(bytes));
                self.relax_and_advance();
                self.start_iteration(ctx);
            }
            other => panic!("fw rank got {other:?}"),
        }
    }
}

/// Run the distributed Floyd–Warshall on `nranks` ranks for an `n × n`
/// matrix and compare against the sequential result. Returns the maximum
/// absolute deviation (0.0 for an exact match).
pub fn verify_distributed_fw(nranks: u32, n: usize, seed: u64) -> f64 {
    let weights = random_weights(n, seed);
    let expected = sequential_fw(n, weights.clone());

    let machine = profiles::minicluster(2, 2, 4.max(nranks.div_ceil(4)));
    let machine = if machine.cpu_job_size() < nranks {
        profiles::minicluster(2, 2, nranks.div_ceil(4))
    } else {
        machine
    };
    let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
    let programs: Vec<Box<dyn RankProgram>> = (0..nranks)
        .map(|r| Box::new(FwRank::new(r, nranks, n, &weights)) as Box<dyn RankProgram>)
        .collect();
    let res = world.run(programs);

    let mut max_dev = 0.0f64;
    for p in res.programs {
        let any: Box<dyn std::any::Any> = p;
        let fw = any.downcast::<FwRank>().expect("fw rank");
        for (local, row) in fw.rows.iter().enumerate() {
            let global = fw.rank as usize + local * nranks as usize;
            for j in 0..n {
                let dev = (row[j] - expected[global * n + j]).abs();
                max_dev = max_dev.max(dev);
            }
        }
    }
    max_dev
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fw_small_case() {
        // 0 -> 1 (1), 1 -> 2 (2), 0 -> 2 (10): shortest 0->2 is 3.
        let inf = 1e18;
        let d = vec![
            0.0, 1.0, 10.0, //
            inf, 0.0, 2.0, //
            inf, inf, 0.0,
        ];
        let r = sequential_fw(3, d);
        assert_eq!(r[2], 3.0);
    }

    #[test]
    fn distributed_matches_sequential() {
        for (nranks, n) in [(4u32, 16usize), (8, 24), (6, 13)] {
            let dev = verify_distributed_fw(nranks, n, 42);
            assert_eq!(dev, 0.0, "nranks={nranks} n={n}");
        }
    }

    #[test]
    fn single_rank_degenerates_to_sequential() {
        let dev = verify_distributed_fw(1, 12, 7);
        assert_eq!(dev, 0.0);
    }
}
