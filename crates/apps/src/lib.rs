//! # adapt-apps — applications on the simulated MPI runtime
//!
//! ASP (all-pairs shortest paths via parallel Floyd–Warshall), the
//! application of the paper's §5.3 / Table 1:
//!
//! - [`asp`]: the performance model — one row broadcast per outer
//!   iteration with rotating roots, modelled relaxation compute, and the
//!   communication-vs-total-runtime split Table 1 reports;
//! - [`verify`]: a real-data distributed Floyd–Warshall checked against a
//!   sequential solve, demonstrating end-to-end data correctness of the
//!   simulated runtime;
//! - [`dnn`]: a data-parallel training step (the deep-learning workload
//!   the paper's introduction motivates) comparing gradient-allreduce
//!   strategies, with a numerically verified SGD twin.

pub mod asp;
pub mod dnn;
pub mod verify;

pub use asp::{asp_programs, run_asp, AspConfig, AspResult};
pub use dnn::{run_training, verify_data_parallel_sgd, GradStrategy, TrainConfig, TrainResult};
pub use verify::{random_weights, sequential_fw, verify_distributed_fw};
