//! Simulator-wide invariant audit.
//!
//! The audit layer accumulates cheap counters while a simulation runs and
//! cross-checks them once it finishes, so bookkeeping bugs (lost
//! completions, double-counted cancellations, bytes that vanish between a
//! send and its matching receive) surface as a reportable diagnosis
//! instead of silently skewing results. The checks mirror the paper's
//! correctness obligations for an event-based progress engine:
//!
//! 1. **Conservation of bytes** — every posted send byte is eventually
//!    matched by a completed-receive byte, and both totals agree with what
//!    the network engine says it delivered (plus explicit copy traffic).
//!    Under fault injection the ledger gains two columns — bytes lost to
//!    injected drops and bytes re-injected by retransmissions — and the
//!    equations generalize to `injected == delivered + dropped` and
//!    `delivered + dropped == sends + copies + retransmitted`. The
//!    exactly-once obligation (`send bytes == completed-receive bytes`)
//!    is unchanged: the reliability layer must deliver every message
//!    exactly once no matter how many attempts the network ate.
//! 2. **Causality** — no event is ever scheduled before the simulation's
//!    current time (see [`crate::queue::EventQueue::schedule`]).
//! 3. **Matched completions** — per rank, sends posted equal send
//!    completions delivered, and no message is left unclaimed in the
//!    runtime's in-flight table or unexpected queues.
//! 4. **Queue consistency** — the event queue's reported live count
//!    matches an actual scan of its heap at drain time
//!    ([`crate::queue::QueueAudit`]).
//!
//! Leftover *posted* receives are reported but do **not** make a run
//! dirty: ADAPT's `M > N` receive-window rule (§2.2.1 of the paper)
//! deliberately over-posts receives that never match.

use crate::queue::QueueAudit;

/// Per-rank posted/completed operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankAudit {
    /// Sends posted by the rank's program.
    pub sends_posted: u64,
    /// Send completions delivered back to the program.
    pub sends_completed: u64,
    /// Receives posted by the rank's program.
    pub recvs_posted: u64,
    /// Receive completions delivered back to the program.
    pub recvs_completed: u64,
}

/// End-of-run invariant report, surfaced through the runtime's
/// `RunResult`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Event-queue internal consistency snapshot at drain time.
    pub queue: QueueAudit,
    /// Total payload bytes across posted sends.
    pub send_posted_bytes: u64,
    /// Total payload bytes across completed receives.
    pub recv_completed_bytes: u64,
    /// Bytes of explicit memory-copy flows requested (staging, unpack).
    pub copy_posted_bytes: u64,
    /// Bytes of explicit memory-copy flows fully delivered.
    pub copy_completed_bytes: u64,
    /// Bytes the network engine injected into flows.
    pub net_injected_bytes: u64,
    /// Bytes the network engine delivered to endpoints.
    pub net_delivered_bytes: u64,
    /// Bytes the network engine dropped (injected faults): drained —
    /// bandwidth was spent — but never delivered.
    pub net_dropped_bytes: u64,
    /// Bytes injected by reliability-layer retransmissions, over and
    /// above the bytes the programs posted.
    pub retrans_injected_bytes: u64,
    /// Events addressed to already-finished ranks and silently dropped.
    /// Nonzero in a fault-free run means the runtime leaked a completion.
    pub stray_events: u64,
    /// A fault plan was active: stray events may legitimately arise from
    /// late retransmissions, so they are not flagged.
    pub faults_active: bool,
    /// Flows still in flight in the network engine at the end of the run.
    pub net_flows_in_flight: usize,
    /// Per-rank posted/completed counters.
    pub per_rank: Vec<RankAudit>,
    /// Messages still sitting in the runtime's in-flight table at the end
    /// of the run (sent but never claimed by a receive).
    pub unclaimed_messages: u64,
    /// Unexpected-queue entries (eager data or RTS) never matched by a
    /// posted receive.
    pub unexpected_leftovers: u64,
    /// Posted receives that never matched a message. Informational only:
    /// the `M > N` pre-posting rule legitimately leaves these behind.
    pub leftover_posted_recvs: u64,
    /// Ranks in the agreed failed set: killed by the fault plan, their
    /// progress engines stopped permanently. The per-rank completion
    /// checks skip them, and the byte equations account their traffic
    /// through the `failed_*` columns below.
    pub failed_ranks: Vec<u32>,
    /// Payload bytes posted in sends that can never complete a receive
    /// because one endpoint of the message failed. Byte conservation
    /// generalizes to `send_posted == recv_completed + failed`.
    pub failed_bytes: u64,
    /// Subset of `failed_bytes` never injected into the network: the
    /// protocol stopped before launching the data flow when an endpoint
    /// died (e.g. a rendezvous whose CTS never came back).
    pub failed_unlaunched_bytes: u64,
    /// Copy bytes posted at a rank that died before the copy completed.
    pub failed_copy_bytes: u64,
}

impl AuditReport {
    /// All invariant violations found, as human-readable one-liners. An
    /// empty list means the run was clean.
    pub fn issues(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.queue.causality_violations > 0 {
            out.push(format!(
                "{} event(s) scheduled before the current simulation time (clamped forward)",
                self.queue.causality_violations
            ));
        }
        if !self.queue.is_consistent() {
            out.push(format!(
                "event queue reports {} live event(s) but its heap holds {} (of {} total entries)",
                self.queue.reported_live, self.queue.actual_live, self.queue.heap_total
            ));
        }
        if self.send_posted_bytes != self.recv_completed_bytes + self.failed_bytes {
            out.push(format!(
                "byte conservation: {} bytes posted in sends vs {} bytes completed in receives + {} failed",
                self.send_posted_bytes, self.recv_completed_bytes, self.failed_bytes
            ));
        }
        if self.copy_posted_bytes != self.copy_completed_bytes + self.failed_copy_bytes {
            out.push(format!(
                "copy conservation: {} bytes posted vs {} bytes completed + {} failed",
                self.copy_posted_bytes, self.copy_completed_bytes, self.failed_copy_bytes
            ));
        }
        let expected_carried =
            (self.send_posted_bytes + self.copy_posted_bytes + self.retrans_injected_bytes)
                .saturating_sub(self.failed_unlaunched_bytes);
        if self.net_delivered_bytes + self.net_dropped_bytes != expected_carried {
            out.push(format!(
                "network delivered {} + dropped {} bytes, expected sends + copies + retransmits - unlaunched = {}",
                self.net_delivered_bytes, self.net_dropped_bytes, expected_carried
            ));
        }
        if self.net_injected_bytes != self.net_delivered_bytes + self.net_dropped_bytes {
            out.push(format!(
                "network injected {} bytes but delivered {} and dropped {}",
                self.net_injected_bytes, self.net_delivered_bytes, self.net_dropped_bytes
            ));
        }
        if self.stray_events > 0 && !self.faults_active {
            out.push(format!(
                "{} event(s) addressed to already-finished ranks in a fault-free run",
                self.stray_events
            ));
        }
        if self.net_flows_in_flight > 0 {
            out.push(format!(
                "{} network flow(s) still in flight at end of run",
                self.net_flows_in_flight
            ));
        }
        for (rank, r) in self.per_rank.iter().enumerate() {
            if self.failed_ranks.contains(&(rank as u32)) {
                // A killed rank legitimately leaves posted operations
                // incomplete; its bytes are in the failed columns.
                continue;
            }
            if r.sends_posted != r.sends_completed {
                out.push(format!(
                    "rank {rank}: {} send(s) posted but {} completed",
                    r.sends_posted, r.sends_completed
                ));
            }
        }
        if self.unclaimed_messages > 0 {
            out.push(format!(
                "{} message(s) left unclaimed in the in-flight table",
                self.unclaimed_messages
            ));
        }
        if self.unexpected_leftovers > 0 {
            out.push(format!(
                "{} unexpected-queue entr(ies) never matched by a receive",
                self.unexpected_leftovers
            ));
        }
        out
    }

    /// True when every invariant held. Leftover posted receives do not
    /// count against cleanliness (the `M > N` rule over-posts on purpose).
    pub fn is_clean(&self) -> bool {
        self.issues().is_empty()
    }

    /// Total sends posted across all ranks.
    pub fn total_sends_posted(&self) -> u64 {
        self.per_rank.iter().map(|r| r.sends_posted).sum()
    }

    /// Total receives completed across all ranks.
    pub fn total_recvs_completed(&self) -> u64 {
        self.per_rank.iter().map(|r| r.recvs_completed).sum()
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let issues = self.issues();
        if issues.is_empty() {
            write!(
                f,
                "audit clean: {} sends, {} recvs, {} bytes conserved ({} over-posted recv(s))",
                self.total_sends_posted(),
                self.total_recvs_completed(),
                self.send_posted_bytes,
                self.leftover_posted_recvs
            )?;
            if !self.failed_ranks.is_empty() {
                write!(
                    f,
                    "; {} failed rank(s) {:?}, {} bytes accounted to failures",
                    self.failed_ranks.len(),
                    self.failed_ranks,
                    self.failed_bytes
                )?;
            }
            Ok(())
        } else {
            writeln!(f, "audit found {} issue(s):", issues.len())?;
            for (i, issue) in issues.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(f, "  - {issue}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_report() -> AuditReport {
        AuditReport {
            send_posted_bytes: 100,
            recv_completed_bytes: 100,
            net_injected_bytes: 140,
            net_delivered_bytes: 140,
            copy_posted_bytes: 40,
            copy_completed_bytes: 40,
            per_rank: vec![
                RankAudit {
                    sends_posted: 2,
                    sends_completed: 2,
                    recvs_posted: 3,
                    recvs_completed: 1,
                },
                RankAudit {
                    sends_posted: 1,
                    sends_completed: 1,
                    recvs_posted: 2,
                    recvs_completed: 2,
                },
            ],
            leftover_posted_recvs: 2,
            ..AuditReport::default()
        }
    }

    #[test]
    fn clean_report_has_no_issues() {
        let r = clean_report();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.total_sends_posted(), 3);
        assert_eq!(r.total_recvs_completed(), 3);
        assert!(r.to_string().starts_with("audit clean"));
    }

    #[test]
    fn overposted_receives_do_not_dirty_the_report() {
        // The M > N receive-window rule legitimately leaves posted
        // receives unmatched.
        let mut r = clean_report();
        r.leftover_posted_recvs = 17;
        assert!(r.is_clean());
    }

    #[test]
    fn byte_mismatch_is_reported() {
        let mut r = clean_report();
        r.recv_completed_bytes = 90;
        assert!(!r.is_clean());
        assert!(r.issues().iter().any(|i| i.contains("byte conservation")));
    }

    #[test]
    fn send_completion_mismatch_names_the_rank() {
        let mut r = clean_report();
        r.per_rank[1].sends_completed = 0;
        let issues = r.issues();
        assert_eq!(issues.len(), 1);
        assert!(issues[0].starts_with("rank 1:"), "{issues:?}");
    }

    #[test]
    fn causality_and_queue_inconsistency_are_reported() {
        let mut r = clean_report();
        r.queue.causality_violations = 3;
        r.queue.reported_live = 5;
        r.queue.actual_live = 4;
        r.queue.heap_total = 6;
        let issues = r.issues();
        assert_eq!(issues.len(), 2, "{issues:?}");
        assert!(r.to_string().contains("2 issue(s)"));
    }

    #[test]
    fn unclaimed_and_unexpected_leftovers_are_dirty() {
        let mut r = clean_report();
        r.unclaimed_messages = 1;
        r.unexpected_leftovers = 2;
        assert_eq!(r.issues().len(), 2);
    }

    #[test]
    fn faulted_ledger_balances_with_drops_and_retransmits() {
        // 100 send bytes, one 30-byte retransmission, 30 bytes dropped:
        // injected = 140 + 30, delivered stays 140 + copies.
        let mut r = clean_report();
        r.faults_active = true;
        r.retrans_injected_bytes = 30;
        r.net_dropped_bytes = 30;
        r.net_injected_bytes = 170;
        assert!(r.is_clean(), "{r}");
        // An unbalanced drop column is flagged.
        r.net_dropped_bytes = 20;
        assert!(!r.is_clean());
    }

    #[test]
    fn failed_rank_bytes_balance_the_ledger() {
        // Rank 1 is killed: its one posted send (30 bytes) never
        // completes, the bytes land in the failed column, and its
        // unbalanced per-rank counters are excused.
        let mut r = clean_report();
        r.faults_active = true;
        r.failed_ranks = vec![1];
        r.per_rank[1].sends_completed = 0;
        r.recv_completed_bytes = 70;
        r.failed_bytes = 30;
        r.net_delivered_bytes = 110;
        r.net_dropped_bytes = 30;
        r.net_injected_bytes = 140;
        assert!(r.is_clean(), "{r}");
        let shown = r.to_string();
        assert!(shown.contains("1 failed rank(s)"), "{shown}");
        // The same counters without the failed-set attribution are dirty.
        r.failed_ranks.clear();
        r.failed_bytes = 0;
        assert!(!r.is_clean());
    }

    #[test]
    fn unlaunched_failed_bytes_excuse_the_network_ledger() {
        // A rendezvous send whose peer died before CTS: 30 bytes posted,
        // never injected into the network at all.
        let mut r = clean_report();
        r.faults_active = true;
        r.failed_ranks = vec![0];
        r.per_rank[0].sends_completed = 0;
        r.recv_completed_bytes = 70;
        r.failed_bytes = 30;
        r.failed_unlaunched_bytes = 30;
        r.net_injected_bytes = 110;
        r.net_delivered_bytes = 110;
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn stray_events_dirty_only_fault_free_runs() {
        let mut r = clean_report();
        r.stray_events = 3;
        assert!(!r.is_clean());
        assert!(r.issues()[0].contains("already-finished"));
        r.faults_active = true;
        assert!(r.is_clean());
    }
}
