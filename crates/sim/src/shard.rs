//! Sharded conservative parallel discrete-event simulation.
//!
//! Two pieces live here, both built on the slab-indirect
//! [`EventQueue`](crate::queue::EventQueue):
//!
//! 1. [`ShardedQueue`] — a set of per-shard event queues sharing **one
//!    global sequence counter**, merged on pop by the packed
//!    `(time, seq)` u128 key. Because the counter is global and the key
//!    is a strict total order, the merged pop order is *exactly* the
//!    single-queue pop order: a simulation can partition its events by
//!    shard (rank/node) and remain byte-identical to the unsharded
//!    engine. The queue also does the epoch accounting: with a lookahead
//!    `L` (minimum cross-shard link latency), consecutive pops within an
//!    `[t, t+L)` window belong to one *epoch* — the window a
//!    conservatively synchronized executor may hand to worker threads —
//!    and every event scheduled from one shard's context into another
//!    shard is counted as cross-shard traffic. Epoch count and
//!    cross-shard count are pure functions of the event stream, never of
//!    the thread count.
//!
//! 2. [`ShardSim`] — the threaded epoch executor for models whose shards
//!    interact **only** through explicitly declared lookahead: per-shard
//!    state and queue, an LBTS (lower bound on timestamp) barrier per
//!    epoch on a [`WorkerPool`], and deterministic cross-shard delivery.
//!    Within an epoch every shard runs on its own worker thread;
//!    conservative synchronization guarantees no event processed in an
//!    epoch could be affected by a cross-shard send generated in the same
//!    epoch (all such sends arrive at or after the epoch horizon).
//!    Incoming cross-shard events are merged in `(time, origin shard,
//!    emission index)` order — a total order independent of thread
//!    scheduling — so results are byte-identical at any thread count.
//!
//! The split is deliberate: the MPI world's shards share a globally
//! coupled fair-share network (a flow launched on one node instantly
//! changes every contending flow's share — zero lookahead), so the world
//! uses [`ShardedQueue`]'s exact merge; models that *do* declare positive
//! lookahead (and sweeps of independent runs) get real parallelism from
//! [`ShardSim`] and the pool.

use crate::fxhash::FxHashMap;
use crate::pool::WorkerPool;
use crate::queue::{EventKey, EventQueue, QueueAudit};
use crate::time::{Duration, Time};

/// Pack a `(time, seq)` pair into the branchless comparison key used by
/// the heap and the cross-shard merge.
#[inline]
fn pack(time: Time, seq: u64) -> u128 {
    ((time.0 as u128) << 64) | seq as u128
}

// ---------------------------------------------------------------------------
// ShardedQueue: exact-order merge across per-shard queues
// ---------------------------------------------------------------------------

/// Counters describing the sharded queue's epoch structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Conservative LBTS windows (of one lookahead each) the run's event
    /// stream partitions into.
    pub par_epochs: u64,
    /// Events scheduled from one shard's execution context into another
    /// shard's queue.
    pub cross_shard_events: u64,
}

/// Per-shard event queues sharing one global sequence counter, merged on
/// pop by `(time, seq)` — pop order is byte-identical to a single
/// [`EventQueue`] fed the same schedule calls.
pub struct ShardedQueue<E> {
    shards: Vec<EventQueue<E>>,
    route: Box<dyn Fn(&E) -> usize>,
    /// One counter across all sub-queues; this is what makes the merge
    /// exact.
    next_seq: u64,
    /// Shard each *tracked* (cancellable) pending seq lives in.
    tracked: FxHashMap<u64, u32>,
    /// Global clock: time of the last merged pop.
    now: Time,
    /// Sum of sub-queue live counts, cached for O(1) `len`.
    live: usize,
    /// Schedule calls that targeted the past and were clamped forward.
    causality_violations: u64,
    /// Shard whose event is currently being processed (the origin of any
    /// schedules made until the next pop).
    cur_shard: usize,
    /// True once the first event popped — schedules before that are
    /// initial seeding, not cross-shard traffic.
    started: bool,
    /// Conservative lookahead: epoch windows are `[t, t + lookahead)`.
    lookahead: Duration,
    /// Exclusive end of the current epoch window.
    epoch_end: Time,
    counters: ShardCounters,
}

impl<E> ShardedQueue<E> {
    /// Create `nshards` sub-queues. `route` maps an event to its owning
    /// shard (values are taken modulo `nshards`); `lookahead` is the
    /// minimum cross-shard latency used for epoch accounting and must be
    /// positive.
    pub fn new(
        nshards: usize,
        lookahead: Duration,
        route: impl Fn(&E) -> usize + 'static,
    ) -> ShardedQueue<E> {
        assert!(nshards >= 1, "at least one shard");
        assert!(!lookahead.is_zero(), "lookahead must be positive");
        ShardedQueue {
            shards: (0..nshards).map(|_| EventQueue::new()).collect(),
            route: Box::new(route),
            next_seq: 0,
            tracked: FxHashMap::default(),
            now: Time::ZERO,
            live: 0,
            causality_violations: 0,
            cur_shard: 0,
            started: false,
            lookahead,
            epoch_end: Time::ZERO,
            counters: ShardCounters::default(),
        }
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// Epoch/cross-shard counters accumulated so far.
    pub fn counters(&self) -> ShardCounters {
        self.counters
    }

    fn clamp(&mut self, time: Time) -> Time {
        if time < self.now {
            self.causality_violations += 1;
        }
        time.max(self.now)
    }

    fn dst(&mut self, ev: &E) -> usize {
        let dst = (self.route)(ev) % self.shards.len();
        if self.started && dst != self.cur_shard {
            self.counters.cross_shard_events += 1;
        }
        dst
    }

    /// Schedule with a cancellation handle (see [`EventQueue::schedule`]).
    pub fn schedule(&mut self, time: Time, payload: E) -> EventKey {
        let time = self.clamp(time);
        let dst = self.dst(&payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[dst].push_with_seq(time, seq, payload, true);
        self.tracked.insert(seq, dst as u32);
        self.live += 1;
        EventKey::from_seq(seq)
    }

    /// Fast-path schedule without a cancellation handle (see
    /// [`EventQueue::schedule_untracked`]).
    pub fn schedule_untracked(&mut self, time: Time, payload: E) {
        let time = self.clamp(time);
        let dst = self.dst(&payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[dst].push_with_seq(time, seq, payload, false);
        self.live += 1;
    }

    /// Cancel a previously scheduled event; true if it was still pending.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(shard) = self.tracked.remove(&key.seq()) else {
            return false;
        };
        let hit = self.shards[shard as usize].cancel(key);
        debug_assert!(hit, "tracked map and sub-queue pending set agree");
        if hit {
            self.live -= 1;
        }
        hit
    }

    /// Remove and return the globally earliest live event — the shard
    /// queues merged by `(time, seq)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let mut best: Option<(u128, usize)> = None;
        for (i, q) in self.shards.iter_mut().enumerate() {
            if let Some((t, seq)) = q.peek_key() {
                let key = pack(t, seq);
                if best.map(|(k, _)| key < k).unwrap_or(true) {
                    best = Some((key, i));
                }
            }
        }
        let (_, shard) = best?;
        let (time, seq, tracked, ev) = self.shards[shard].pop_full().expect("peeked shard pops");
        if tracked {
            self.tracked.remove(&seq);
        }
        self.live -= 1;
        self.now = time;
        self.cur_shard = shard;
        self.started = true;
        if time >= self.epoch_end {
            self.counters.par_epochs += 1;
            self.epoch_end = time + self.lookahead;
        }
        Some((time, ev))
    }

    /// Time of the globally earliest live event.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.shards.iter_mut().filter_map(|q| q.peek_time()).min()
    }

    /// Number of live scheduled events across all shards.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain anywhere.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The global clock: time of the last merged pop.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule calls that targeted the past and were clamped forward.
    pub fn causality_violations(&self) -> u64 {
        self.causality_violations
    }

    /// Aggregate audit across all sub-queues. Causality violations are
    /// counted here (the global clamp), not in the sub-queues.
    pub fn audit(&self) -> QueueAudit {
        let mut agg = QueueAudit {
            causality_violations: self.causality_violations,
            ..QueueAudit::default()
        };
        for q in &self.shards {
            let a = q.audit();
            agg.reported_live += a.reported_live;
            agg.actual_live += a.actual_live;
            agg.heap_total += a.heap_total;
        }
        agg
    }
}

// ---------------------------------------------------------------------------
// ShardSim: threaded conservative epoch executor
// ---------------------------------------------------------------------------

/// Shard-local event handler. One model instance per shard; a shard's
/// model is only ever touched by that shard's events, in deterministic
/// `(time, seq)` order.
pub trait ShardModel: Send + 'static {
    /// Event payload exchanged between shards.
    type Event: Send + 'static;

    /// Handle one event at simulated time `now`, emitting follow-up
    /// events through `out`.
    fn handle(&mut self, now: Time, ev: Self::Event, out: &mut Outbox<Self::Event>);
}

/// A cross-shard send captured during an epoch, with enough provenance to
/// merge deterministically: `(time, origin shard, emission index)` is a
/// total order independent of which worker thread ran which shard when.
struct RemoteSend<E> {
    dst: usize,
    time: Time,
    origin: u32,
    emit: u64,
    ev: E,
}

/// Where a model emits follow-up events from inside `handle`.
pub struct Outbox<E> {
    shard: usize,
    nshards: usize,
    now: Time,
    lookahead: Duration,
    local: Vec<(Time, E)>,
    remote: Vec<RemoteSend<E>>,
    /// Monotone per-shard emission counter (persists across epochs) —
    /// the tiebreaker of the cross-shard merge order.
    emit: u64,
}

impl<E> Outbox<E> {
    /// The shard this handler runs on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of shards in the simulation.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// Schedule `ev` on shard `dst` at absolute time `at`.
    ///
    /// Sends to the local shard may target any time `>= now`; sends to
    /// another shard must respect the declared lookahead (`at >= now +
    /// lookahead`) — that promise is what lets every shard run an entire
    /// epoch without observing its neighbours, and it is asserted, not
    /// trusted.
    pub fn send(&mut self, dst: usize, at: Time, ev: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        if dst == self.shard {
            self.local.push((at, ev));
        } else {
            assert!(
                at >= self.now + self.lookahead,
                "cross-shard send at {at:?} violates lookahead {:?} (now {:?})",
                self.lookahead,
                self.now
            );
            self.remote.push(RemoteSend {
                dst,
                time: at,
                origin: self.shard as u32,
                emit: self.emit,
                ev,
            });
            self.emit += 1;
        }
    }
}

/// One shard: its model, queue, and emission counter. Moved wholesale
/// into a pool job each epoch and moved back with the epoch's output.
struct ShardState<M: ShardModel> {
    model: M,
    queue: EventQueue<M::Event>,
    emit: u64,
    processed: u64,
}

impl<M: ShardModel> ShardState<M> {
    /// Pop-and-handle every event strictly before `horizon`. Local sends
    /// land back in this queue (and may still fire within the epoch);
    /// cross-shard sends are returned for the post-barrier merge.
    fn run_epoch(
        &mut self,
        shard: usize,
        nshards: usize,
        horizon: Time,
        lookahead: Duration,
    ) -> Vec<RemoteSend<M::Event>> {
        let mut out = Outbox {
            shard,
            nshards,
            now: Time::ZERO,
            lookahead,
            local: Vec::new(),
            remote: Vec::new(),
            emit: self.emit,
        };
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event pops");
            out.now = t;
            self.model.handle(t, ev, &mut out);
            for (at, ev) in out.local.drain(..) {
                self.queue.schedule_untracked(at, ev);
            }
            self.processed += 1;
        }
        self.emit = out.emit;
        out.remote
    }
}

/// Run statistics of a [`ShardSim`] execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// LBTS epoch barriers crossed.
    pub epochs: u64,
    /// Events processed across all shards.
    pub events: u64,
    /// Cross-shard events exchanged at epoch barriers.
    pub cross_shard_events: u64,
}

/// A conservatively synchronized multi-shard simulation.
///
/// Epoch loop: compute the LBTS (minimum next event time across shards),
/// let every shard process all events in `[LBTS, LBTS + lookahead)` on
/// the pool (barrier), then merge the epoch's cross-shard sends in
/// `(time, origin, emission)` order. Conservative correctness: any
/// cross-shard send is generated at some `t >= LBTS` and arrives at
/// `t + lookahead >= LBTS + lookahead`, i.e. at or after the horizon —
/// no event processed this epoch could have been affected by it.
pub struct ShardSim<M: ShardModel> {
    states: Vec<ShardState<M>>,
    lookahead: Duration,
}

/// One epoch's worth of work for one shard, shipped to a pool worker:
/// returns the shard (moved back) and its cross-shard sends.
type EpochJob<M> =
    Box<dyn FnOnce() -> (ShardState<M>, Vec<RemoteSend<<M as ShardModel>::Event>>) + Send>;

impl<M: ShardModel> ShardSim<M> {
    /// One model per shard; `lookahead` must be positive.
    pub fn new(models: Vec<M>, lookahead: Duration) -> ShardSim<M> {
        assert!(!models.is_empty(), "at least one shard");
        assert!(!lookahead.is_zero(), "lookahead must be positive");
        ShardSim {
            states: models
                .into_iter()
                .map(|model| ShardState {
                    model,
                    queue: EventQueue::new(),
                    emit: 0,
                    processed: 0,
                })
                .collect(),
            lookahead,
        }
    }

    /// Seed an initial event on `shard` before running.
    pub fn seed(&mut self, shard: usize, at: Time, ev: M::Event) {
        self.states[shard].queue.schedule_untracked(at, ev);
    }

    /// Run to completion on `pool`, returning the final per-shard models
    /// (in shard order) and the run statistics. Results are byte-identical
    /// for any pool width, including 1.
    pub fn run(mut self, pool: &WorkerPool) -> (Vec<M>, ShardRunStats) {
        let nshards = self.states.len();
        let lookahead = self.lookahead;
        let mut stats = ShardRunStats::default();
        loop {
            let lbts = self
                .states
                .iter_mut()
                .filter_map(|s| s.queue.peek_time())
                .min();
            let Some(lbts) = lbts else { break };
            let horizon = lbts + lookahead;
            stats.epochs += 1;
            // Epoch execution: every shard advances to the horizon. With a
            // real pool the shards are moved into jobs and run on worker
            // threads; run_batch is the epoch barrier and returns them in
            // shard order either way.
            let mut sends: Vec<RemoteSend<M::Event>> = if pool.threads() == 1 || nshards == 1 {
                let mut all = Vec::new();
                for (i, st) in self.states.iter_mut().enumerate() {
                    all.extend(st.run_epoch(i, nshards, horizon, lookahead));
                }
                all
            } else {
                let jobs: Vec<EpochJob<M>> = self
                    .states
                    .drain(..)
                    .enumerate()
                    .map(|(i, mut st)| {
                        Box::new(move || {
                            let sends = st.run_epoch(i, nshards, horizon, lookahead);
                            (st, sends)
                        }) as EpochJob<M>
                    })
                    .collect();
                let mut all = Vec::new();
                for (st, sends) in pool.run_batch(jobs) {
                    self.states.push(st);
                    all.extend(sends);
                }
                all
            };
            // Deterministic merge: a total order on provenance, independent
            // of thread scheduling. Sub-queue insertion order fixes local
            // sequence numbers, so downstream pop order is fixed too.
            sends.sort_by_key(|s| (s.time, s.origin, s.emit));
            stats.cross_shard_events += sends.len() as u64;
            for s in sends {
                debug_assert!(s.time >= horizon, "conservative horizon violated");
                self.states[s.dst].queue.schedule_untracked(s.time, s.ev);
            }
        }
        stats.events = self.states.iter().map(|s| s.processed).sum();
        (self.states.into_iter().map(|s| s.model).collect(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- ShardedQueue ------------------------------------------------------

    /// Feed the same interleaved schedule/cancel/pop script to a plain
    /// EventQueue and a ShardedQueue; the popped streams must be
    /// identical, event for event.
    #[test]
    fn sharded_merge_equals_single_queue() {
        let mut single: EventQueue<u64> = EventQueue::new();
        let mut sharded: ShardedQueue<u64> =
            ShardedQueue::new(3, Duration::from_nanos(50), |v| (*v % 3) as usize);
        let mut keys_s = Vec::new();
        let mut keys_m = Vec::new();
        // A deterministic pseudo-random script: schedule with scattered
        // times (many ties), interleave tracked/untracked, cancel some.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for i in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = Time((x >> 33) % 97);
            if i % 3 == 0 {
                keys_s.push(single.schedule(t, i));
                keys_m.push(sharded.schedule(t, i));
            } else {
                single.schedule_untracked(t, i);
                sharded.schedule_untracked(t, i);
            }
        }
        for (ks, km) in keys_s.iter().zip(&keys_m).step_by(2) {
            assert_eq!(single.cancel(*ks), sharded.cancel(*km));
        }
        assert_eq!(single.len(), sharded.len());
        loop {
            let a = single.pop();
            let b = sharded.pop();
            assert_eq!(a, b, "merged pop order diverged");
            if a.is_none() {
                break;
            }
        }
        let (a, b) = (single.audit(), sharded.audit());
        assert!(a.is_consistent() && b.is_consistent());
        assert_eq!(a.reported_live, 0);
        assert_eq!(b.reported_live, 0);
    }

    #[test]
    fn sharded_pop_interleaves_schedules_like_single_queue() {
        // Schedule-during-pop: each popped value reschedules a follow-up,
        // crossing shards; order must still match the single queue.
        let route = |v: &u64| (*v % 4) as usize;
        let mut single: EventQueue<u64> = EventQueue::new();
        let mut sharded: ShardedQueue<u64> = ShardedQueue::new(4, Duration::from_nanos(10), route);
        for i in 0..16u64 {
            single.schedule_untracked(Time(i % 5), i);
            sharded.schedule_untracked(Time(i % 5), i);
        }
        let mut n = 0u64;
        loop {
            match (single.pop(), sharded.pop()) {
                (Some((ta, va)), Some((tb, vb))) => {
                    assert_eq!((ta, va), (tb, vb));
                    n += 1;
                    if n < 200 {
                        // Same follow-up into both queues.
                        let nt = ta + Duration::from_nanos(3 + va % 7);
                        single.schedule_untracked(nt, va + 1);
                        sharded.schedule_untracked(nt, va + 1);
                    }
                }
                (None, None) => break,
                (a, b) => panic!("queues diverged: {a:?} vs {b:?}"),
            }
        }
        // Epoch accounting is busy and deterministic.
        let c = sharded.counters();
        assert!(c.par_epochs > 0);
        assert!(c.cross_shard_events > 0, "the +1 walk crosses shards");
    }

    #[test]
    fn sharded_counters_are_a_pure_function_of_the_event_stream() {
        let run = || {
            let mut q: ShardedQueue<u64> =
                ShardedQueue::new(5, Duration::from_nanos(20), |v| (*v % 5) as usize);
            for i in 0..50u64 {
                q.schedule_untracked(Time(i * 7 % 31), i);
            }
            let mut popped = 0;
            while let Some((t, v)) = q.pop() {
                if popped < 300 {
                    q.schedule_untracked(t + Duration::from_nanos(1 + v % 13), v + 1);
                }
                popped += 1;
            }
            (q.counters(), popped)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn seeding_before_the_first_pop_is_not_cross_shard_traffic() {
        let mut q: ShardedQueue<u64> =
            ShardedQueue::new(4, Duration::from_nanos(10), |v| (*v % 4) as usize);
        for i in 0..12u64 {
            q.schedule_untracked(Time(0), i);
        }
        assert_eq!(q.counters().cross_shard_events, 0);
    }

    // -- ShardSim ----------------------------------------------------------

    /// A PHOLD-style token-passing model: each event mixes the shard's
    /// hash state and forwards the token to a pseudo-random shard at a
    /// pseudo-random delay >= lookahead, until its hop budget runs out.
    struct Phold {
        state: u64,
        handled: u64,
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Token {
        val: u64,
        hops: u32,
    }

    const LOOKAHEAD: Duration = Duration::from_nanos(100);

    impl ShardModel for Phold {
        type Event = Token;
        fn handle(&mut self, now: Time, ev: Token, out: &mut Outbox<Token>) {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(ev.val ^ now.0);
            self.handled += 1;
            if ev.hops == 0 {
                return;
            }
            let nshards = out.nshards() as u64;
            let dst = (self.state >> 7) % nshards;
            let delay = Duration::from_nanos(LOOKAHEAD.as_nanos() + self.state % 500);
            out.send(
                dst as usize,
                now + delay,
                Token {
                    val: self.state ^ ev.val,
                    hops: ev.hops - 1,
                },
            );
            // Sometimes also do purely local work below the lookahead —
            // this is what an intra-shard event looks like.
            if self.state.is_multiple_of(3) {
                out.send(
                    out.shard(),
                    now + Duration::from_nanos(1 + self.state % 40),
                    Token {
                        val: self.state,
                        hops: 0,
                    },
                );
            }
        }
    }

    fn run_phold(nshards: usize, threads: usize) -> (Vec<(u64, u64)>, ShardRunStats) {
        let models = (0..nshards)
            .map(|i| Phold {
                state: 0x9E37_79B9 ^ (i as u64) << 17,
                handled: 0,
            })
            .collect();
        let mut sim = ShardSim::new(models, LOOKAHEAD);
        for s in 0..nshards {
            sim.seed(
                s,
                Time(7 * s as u64),
                Token {
                    val: s as u64 + 1,
                    hops: 200,
                },
            );
        }
        let pool = WorkerPool::new(threads);
        let (models, stats) = sim.run(&pool);
        (
            models.into_iter().map(|m| (m.state, m.handled)).collect(),
            stats,
        )
    }

    #[test]
    fn phold_is_byte_identical_across_thread_counts() {
        // The tentpole determinism claim at kernel level: identical final
        // shard states and statistics for 1/2/4/8 threads, with shard
        // count both equal to and different from the thread count.
        for nshards in [4usize, 5] {
            let baseline = run_phold(nshards, 1);
            assert!(baseline.1.epochs > 1, "multi-epoch run expected");
            assert!(baseline.1.cross_shard_events > 0);
            assert!(baseline.1.events > 200 * nshards as u64 / 2);
            for threads in [2usize, 4, 8] {
                assert_eq!(
                    run_phold(nshards, threads),
                    baseline,
                    "nshards={nshards} threads={threads} diverged from sequential"
                );
            }
        }
    }

    #[test]
    fn lookahead_violation_is_an_assertion_not_a_heisenbug() {
        #[derive(Debug)]
        struct Cheater;
        impl ShardModel for Cheater {
            type Event = ();
            fn handle(&mut self, now: Time, _ev: (), out: &mut Outbox<()>) {
                // One nanosecond short of the declared lookahead.
                out.send(1, now + Duration::from_nanos(99), ());
            }
        }
        let mut sim = ShardSim::new(vec![Cheater, Cheater], Duration::from_nanos(100));
        sim.seed(0, Time(0), ());
        let pool = WorkerPool::new(1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&pool)))
            .expect_err("undeclared lookahead must be rejected");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("violates lookahead"), "{msg}");
    }

    #[test]
    fn model_panic_propagates_through_the_pool() {
        #[derive(Debug)]
        struct Bomb;
        impl ShardModel for Bomb {
            type Event = u32;
            fn handle(&mut self, _now: Time, ev: u32, _out: &mut Outbox<u32>) {
                assert!(ev != 3, "shard model hit the poison event");
            }
        }
        let mut sim = ShardSim::new(vec![Bomb, Bomb, Bomb], Duration::from_nanos(10));
        sim.seed(0, Time(0), 1);
        sim.seed(1, Time(0), 3);
        sim.seed(2, Time(0), 2);
        let pool = WorkerPool::new(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run(&pool)))
            .expect_err("a shard panic must reach the caller");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("poison event"), "{msg}");
    }
}
