//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, so two events scheduled for
//! the same instant pop in insertion order. This makes every simulation run
//! a pure function of its inputs and seeds.
//!
//! Cancellation is supported through [`EventKey`]s: `cancel` marks a
//! scheduled entry dead without paying for heap surgery, and dead entries
//! are skipped on pop (lazy deletion). Liveness is tracked by a single
//! `pending` set holding exactly the sequence numbers that are scheduled
//! and not yet popped or cancelled, so cancelling an event that has already
//! fired (or was already cancelled) is a detectable no-op rather than a
//! corruption of the live count, and the bookkeeping never outgrows the
//! heap contents.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Sequence number reserved for [`EventKey::default`]. `schedule` hands out
/// sequence numbers counting up from zero, so this value is never assigned
/// to a real event.
const SENTINEL_SEQ: u64 = u64::MAX;

/// Handle to a scheduled event, usable for cancellation. The default key
/// is a reserved sentinel (`u64::MAX`) that never matches a live event:
/// cancelling it is always a no-op returning `false`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey {
    seq: u64,
}

impl Default for EventKey {
    fn default() -> Self {
        EventKey { seq: SENTINEL_SEQ }
    }
}

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Internal-consistency snapshot of an [`EventQueue`], used by the
/// simulator-wide audit layer ([`crate::audit::AuditReport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueAudit {
    /// Live events as reported by [`EventQueue::len`] (the `pending` set
    /// size).
    pub reported_live: usize,
    /// Live events actually present in the heap (full scan counting
    /// entries whose sequence is in the pending set).
    pub actual_live: usize,
    /// Total heap entries, including cancelled debris awaiting lazy
    /// removal.
    pub heap_total: usize,
    /// Number of schedule calls that targeted the past and were clamped
    /// forward (see [`EventQueue::schedule`]).
    pub causality_violations: u64,
}

impl QueueAudit {
    /// True when the reported live count matches the heap contents.
    pub fn is_consistent(&self) -> bool {
        self.reported_live == self.actual_live && self.actual_live <= self.heap_total
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers that are scheduled and neither popped nor
    /// cancelled. An entry in the heap is live iff its seq is here, so
    /// `pending.len()` is the live count and cancellation bookkeeping is
    /// bounded by heap occupancy.
    pending: HashSet<u64>,
    /// Last time popped; used to detect causality violations.
    last_popped: Time,
    /// Schedule calls that targeted the past and were clamped forward.
    causality_violations: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: HashSet::new(),
            last_popped: Time::ZERO,
            causality_violations: 0,
        }
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic
    /// error in the caller; it is clamped forward to preserve causality
    /// and counted in [`EventQueue::causality_violations`] so the audit
    /// layer can report it instead of the bug silently disappearing.
    pub fn schedule(&mut self, time: Time, payload: E) -> EventKey {
        if time < self.last_popped {
            self.causality_violations += 1;
        }
        let time = time.max(self.last_popped);
        let seq = self.next_seq;
        assert!(seq != SENTINEL_SEQ, "event sequence space exhausted");
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.pending.insert(seq);
        EventKey { seq }
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending — i.e. scheduled and not yet popped or cancelled.
    /// Cancelling a popped event, a cancelled event, or the default
    /// sentinel key is a no-op returning false and leaves `len()` intact.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.pending.remove(&key.seq)
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled entry: lazy deletion
            }
            self.last_popped = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live scheduled events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The time of the last popped event (the queue's notion of "now").
    pub fn now(&self) -> Time {
        self.last_popped
    }

    /// Number of schedule calls that targeted an instant before `now()`
    /// and were clamped forward.
    pub fn causality_violations(&self) -> u64 {
        self.causality_violations
    }

    /// Cross-check the reported live count against the actual heap
    /// contents (O(heap) scan; intended for end-of-run audits, not the
    /// hot path).
    pub fn audit(&self) -> QueueAudit {
        let actual_live = self
            .heap
            .iter()
            .filter(|e| self.pending.contains(&e.seq))
            .count();
        QueueAudit {
            reported_live: self.pending.len(),
            actual_live,
            heap_total: self.heap.len(),
            causality_violations: self.causality_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), "c");
        q.schedule(Time(10), "a");
        q.schedule(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(5), 1);
        q.schedule(Time(5), 2);
        q.schedule(Time(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn cancel_skips_entry() {
        let mut q = EventQueue::new();
        let _a = q.schedule(Time(1), "a");
        let b = q.schedule(Time(2), "b");
        let _c = q.schedule(Time(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Time(1), "a")));
        assert_eq!(q.pop(), Some((Time(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), "a");
        q.schedule(Time(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time(2)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO + Duration::from_micros(7), ());
        q.pop();
        assert_eq!(q.now(), Time(7_000));
    }

    #[test]
    fn len_counts_live_only() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), ());
        q.schedule(Time(2), ());
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn default_key_cancel_is_a_noop() {
        // Regression: the default key used to carry seq 0, colliding with
        // the first scheduled event — cancelling a placeholder key would
        // silently kill it.
        let mut q = EventQueue::new();
        assert!(!q.cancel(EventKey::default()), "fresh queue: no-op");
        let first = q.schedule(Time(1), "first");
        assert!(!q.cancel(EventKey::default()), "must not match seq 0");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time(1), "first")));
        assert!(!q.cancel(first), "already popped");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_pop_is_a_noop() {
        // Regression: cancel used to return true for already-popped keys,
        // decrementing the live count below reality and leaking an entry
        // in the cancelled set forever.
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), "a");
        q.schedule(Time(2), "b");
        assert_eq!(q.pop(), Some((Time(1), "a")));
        assert!(!q.cancel(a), "popped event is not cancellable");
        assert_eq!(q.len(), 1, "live count untouched by the failed cancel");
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((Time(2), "b")));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_then_reschedule_cycles_stay_bounded_and_consistent() {
        // The drain-reschedule pattern the network engine uses: schedule a
        // replacement, cancel the old event, repeat. Bookkeeping must not
        // grow without bound and len() must match the heap at every step.
        let mut q = EventQueue::new();
        let mut key = q.schedule(Time(10), 0u32);
        for i in 1..1000u32 {
            let new = q.schedule(Time(10 + i as u64), i);
            assert!(q.cancel(key));
            key = new;
            assert_eq!(q.len(), 1);
        }
        let audit = q.audit();
        assert!(audit.is_consistent(), "{audit:?}");
        assert_eq!(audit.reported_live, 1);
        // Draining the queue clears the cancelled debris too.
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        let audit = q.audit();
        assert_eq!(audit.heap_total, 0, "no leaked entries: {audit:?}");
        assert!(audit.is_consistent());
    }

    #[test]
    fn causality_violations_are_counted_and_clamped() {
        let mut q = EventQueue::new();
        q.schedule(Time(100), "late");
        assert_eq!(q.pop(), Some((Time(100), "late")));
        assert_eq!(q.causality_violations(), 0);
        // Scheduling before now() clamps forward and counts.
        q.schedule(Time(50), "past");
        assert_eq!(q.causality_violations(), 1);
        assert_eq!(q.pop(), Some((Time(100), "past")));
        assert_eq!(q.audit().causality_violations, 1);
    }

    #[test]
    fn audit_matches_reality_through_mixed_operations() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..20).map(|i| q.schedule(Time(i), i)).collect();
        for k in keys.iter().step_by(3) {
            q.cancel(*k);
        }
        for _ in 0..5 {
            q.pop();
        }
        let audit = q.audit();
        assert!(audit.is_consistent(), "{audit:?}");
        assert_eq!(audit.reported_live, q.len());
    }
}
