//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, so two events scheduled for
//! the same instant pop in insertion order. This makes every simulation run
//! a pure function of its inputs and seeds.
//!
//! Cancellation is supported through [`EventKey`] epochs: `cancel` marks a
//! scheduled entry dead without paying for heap surgery, and dead entries
//! are skipped on pop (lazy deletion).

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event, usable for cancellation. The default key
/// is a placeholder that never matches a live event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct EventKey {
    seq: u64,
}

struct Entry<E> {
    time: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sorted-on-demand list of cancelled sequence numbers (lazy deletion).
    cancelled: std::collections::HashSet<u64>,
    /// Number of live (non-cancelled) entries.
    live: usize,
    /// Last time popped; used to detect causality violations.
    last_popped: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
            last_popped: Time::ZERO,
        }
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic
    /// error in the caller; it is clamped forward to preserve causality and
    /// flagged with a debug assertion.
    pub fn schedule(&mut self, time: Time, payload: E) -> EventKey {
        debug_assert!(
            time >= self.last_popped,
            "scheduled event at {time:?} before current time {:?}",
            self.last_popped
        );
        let time = time.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.live += 1;
        EventKey { seq }
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (i.e. had not been popped or already cancelled).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        // An event that was already popped has its seq below entries still in
        // the heap only probabilistically, so track cancellations by set; a
        // seq that is not in the heap any more simply never matches on pop.
        if self.cancelled.insert(key.seq) {
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest live event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live -= 1;
            self.last_popped = entry.time;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The time of the last popped event (the queue's notion of "now").
    pub fn now(&self) -> Time {
        self.last_popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), "c");
        q.schedule(Time(10), "a");
        q.schedule(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(5), 1);
        q.schedule(Time(5), 2);
        q.schedule(Time(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn cancel_skips_entry() {
        let mut q = EventQueue::new();
        let _a = q.schedule(Time(1), "a");
        let b = q.schedule(Time(2), "b");
        let _c = q.schedule(Time(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Time(1), "a")));
        assert_eq!(q.pop(), Some((Time(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), "a");
        q.schedule(Time(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time(2)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO + Duration::from_micros(7), ());
        q.pop();
        assert_eq!(q.now(), Time(7_000));
    }

    #[test]
    fn len_counts_live_only() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), ());
        q.schedule(Time(2), ());
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }
}
