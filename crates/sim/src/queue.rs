//! Deterministic event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The sequence number is a
//! monotonically increasing insertion counter, so two events scheduled for
//! the same instant pop in insertion order. This makes every simulation run
//! a pure function of its inputs and seeds.
//!
//! Cancellation is supported through [`EventKey`]s: `cancel` marks a
//! scheduled entry dead without paying for heap surgery, and dead entries
//! are skipped on pop (lazy deletion). Liveness is tracked by a single
//! `pending` set holding exactly the sequence numbers that are scheduled
//! and not yet popped or cancelled, so cancelling an event that has already
//! fired (or was already cancelled) is a detectable no-op rather than a
//! corruption of the live count, and the bookkeeping never outgrows the
//! heap contents.
//!
//! Most simulator events are never cancelled — rank steps, callback
//! completions, flow launches all fire exactly once. Routing them through
//! the cancellation bookkeeping costs two hash-table operations per event
//! (insert on schedule, remove on pop), which profiling shows is the
//! single largest line item in the event loop. [`EventQueue::schedule_untracked`]
//! is the fast path for those: the entry carries a `tracked: false` flag,
//! skips the `pending` set entirely, and is counted live by a plain
//! integer. Pop order is identical either way — both paths draw sequence
//! numbers from the same counter, so `(time, seq)` ordering (and hence
//! every golden trace) is unaffected by which path scheduled an event.
//!
//! Payloads are stored out-of-line in a slot slab and the heap sifts only
//! 24-byte `(time, seq, slot)` keys. With the MPI world's ~72-byte event
//! enum, sifting full entries made heap push/pop ~70% of event-loop time
//! (gprofng, fig8 sweep); the indirection removes the payload `memcpy`
//! from every sift level while leaving pop order — a pure function of
//! `(time, seq)` — untouched.
//!
//! Lazy deletion alone lets cancelled debris pile up: a noise-heavy run
//! whose drain events are rescheduled far more often than they fire can
//! carry a heap many times its live size. Whenever the debris exceeds the
//! live entries (and the heap is big enough to care), the queue rebuilds
//! itself keeping only live entries — an O(heap) pass paid at most once
//! per heap-doubling of cancellations, so the amortized cost per cancel is
//! O(1) and heap occupancy stays within a constant factor of the live
//! count.

use crate::fxhash::FxHashSet;
use crate::time::Time;

/// Sequence number reserved for [`EventKey::default`]. `schedule` hands out
/// sequence numbers counting up from zero, so this value is never assigned
/// to a real event.
const SENTINEL_SEQ: u64 = u64::MAX;

/// Heaps smaller than this are never compacted — the rebuild would cost
/// more than the debris it reclaims.
const COMPACT_MIN_HEAP: usize = 64;

/// Handle to a scheduled event, usable for cancellation. The default key
/// is a reserved sentinel (`u64::MAX`) that never matches a live event:
/// cancelling it is always a no-op returning `false`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey {
    seq: u64,
}

impl Default for EventKey {
    fn default() -> Self {
        EventKey { seq: SENTINEL_SEQ }
    }
}

impl EventKey {
    /// Rebuild a key from a raw sequence number. Used by the sharded
    /// queue, which hands out sequence numbers from one global counter
    /// shared by all sub-queues.
    pub(crate) fn from_seq(seq: u64) -> EventKey {
        EventKey { seq }
    }

    /// The raw sequence number behind this key.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }
}

/// One heap entry: ordering key plus the slab slot holding the payload.
///
/// The payload itself lives out-of-line in [`EventQueue`]'s slab, so heap
/// sift operations move this 24-byte POD instead of the full event — with
/// a large event enum (the MPI world's is ~72 bytes) the heap was the
/// single largest line item of the event loop, and most of that was
/// `memcpy` of payloads that sift up and down without being consumed.
#[derive(Clone, Copy)]
struct Entry {
    time: Time,
    seq: u64,
    /// Index into the slab where the payload waits.
    slot: u32,
    /// Whether this entry participates in cancellation bookkeeping. An
    /// untracked entry is always live; a tracked one is live iff its seq
    /// is in the `pending` set.
    tracked: bool,
}

impl Entry {
    /// Heap ordering key. `(time, seq)` is a *strict* total order (seqs
    /// are unique), so every correct min-heap pops the same sequence —
    /// the heap's internal shape can never influence a simulation.
    ///
    /// Packed as `time << 64 | seq`: a single `u128` compare is
    /// branchless (sub/sbb), where the equivalent tuple compare turns
    /// into data-dependent branches that mispredict badly in the sift
    /// loops. Ordering is identical to the lexicographic `(time, seq)`.
    #[inline]
    fn key(&self) -> u128 {
        ((self.time.0 as u128) << 64) | self.seq as u128
    }
}

/// Branching factor of the sift heap. A 4-ary heap is half as deep as a
/// binary one and its four children sit in at most two cache lines of
/// 24-byte entries, which measurably beats `std::collections::BinaryHeap`
/// on the simulator's pop-heavy workload.
const HEAP_ARITY: usize = 4;

/// A `Vec`-backed 4-ary min-heap of [`Entry`]s ordered by `(time, seq)`.
/// Only the minimum is ever observable (pop/peek), and `(time, seq)` is a
/// strict total order, so the internal shape — binary, 4-ary, or anything
/// else — can never change which event pops next.
#[derive(Default)]
struct MinHeap {
    v: Vec<Entry>,
}

impl MinHeap {
    #[inline]
    fn len(&self) -> usize {
        self.v.len()
    }

    #[inline]
    fn peek(&self) -> Option<&Entry> {
        self.v.first()
    }

    fn push(&mut self, e: Entry) {
        let mut i = self.v.len();
        self.v.push(e);
        // Sift up: move the hole toward the root until the parent is
        // smaller, writing the new entry once at its final position.
        while i > 0 {
            let parent = (i - 1) / HEAP_ARITY;
            if self.v[parent].key() <= e.key() {
                break;
            }
            self.v[i] = self.v[parent];
            i = parent;
        }
        self.v[i] = e;
    }

    fn pop(&mut self) -> Option<Entry> {
        let last = self.v.pop()?;
        if self.v.is_empty() {
            return Some(last);
        }
        let top = self.v[0];
        // Sift the former tail down from the root: descend to the
        // smallest child until none is smaller than it.
        let n = self.v.len();
        let mut i = 0;
        loop {
            let first = i * HEAP_ARITY + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let mut min_key = self.v[first].key();
            for c in (first + 1)..(first + HEAP_ARITY).min(n) {
                let k = self.v[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key >= last.key() {
                break;
            }
            self.v[i] = self.v[min];
            i = min;
        }
        self.v[i] = last;
        Some(top)
    }

    /// Rebuild from arbitrary entries (Floyd's heapify, bottom-up).
    fn rebuild(v: Vec<Entry>) -> MinHeap {
        let mut h = MinHeap { v };
        let n = h.v.len();
        if n > 1 {
            for i in (0..=(n - 2) / HEAP_ARITY).rev() {
                h.sift_down(i);
            }
        }
        h
    }

    fn sift_down(&mut self, mut i: usize) {
        let e = self.v[i];
        let n = self.v.len();
        loop {
            let first = i * HEAP_ARITY + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let mut min_key = self.v[first].key();
            for c in (first + 1)..(first + HEAP_ARITY).min(n) {
                let k = self.v[c].key();
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if min_key >= e.key() {
                break;
            }
            self.v[i] = self.v[min];
            i = min;
        }
        self.v[i] = e;
    }

    fn iter(&self) -> std::slice::Iter<'_, Entry> {
        self.v.iter()
    }

    fn into_vec(self) -> Vec<Entry> {
        self.v
    }
}

/// Internal-consistency snapshot of an [`EventQueue`], used by the
/// simulator-wide audit layer ([`crate::audit::AuditReport`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueAudit {
    /// Live events as reported by [`EventQueue::len`] (the live counter).
    pub reported_live: usize,
    /// Live events actually present in the heap (full scan counting
    /// untracked entries plus tracked entries whose sequence is in the
    /// pending set).
    pub actual_live: usize,
    /// Total heap entries, including cancelled debris awaiting lazy
    /// removal.
    pub heap_total: usize,
    /// Number of schedule calls that targeted the past and were clamped
    /// forward (see [`EventQueue::schedule`]).
    pub causality_violations: u64,
}

impl QueueAudit {
    /// True when the reported live count matches the heap contents.
    pub fn is_consistent(&self) -> bool {
        self.reported_live == self.actual_live && self.actual_live <= self.heap_total
    }
}

/// A deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: MinHeap,
    /// Payload storage, indexed by [`Entry::slot`]. A slot is occupied
    /// from schedule until its entry pops (live or as lazy-deleted
    /// debris), then recycled through `free`. Payloads are written once
    /// and read once — they never participate in heap sifts.
    slab: Vec<Option<E>>,
    /// Recycled slab slots.
    free: Vec<u32>,
    next_seq: u64,
    /// Sequence numbers of *tracked* entries that are scheduled and
    /// neither popped nor cancelled. A tracked entry in the heap is live
    /// iff its seq is here, so cancelling an event that already fired (or
    /// was already cancelled) is a detectable no-op, and the bookkeeping
    /// never outgrows the heap contents. Untracked entries bypass this set.
    pending: FxHashSet<u64>,
    /// Live entries (tracked + untracked). Kept as a counter so the hot
    /// untracked path touches no hash table; the audit layer cross-checks
    /// it against the heap.
    live: usize,
    /// Last time popped; used to detect causality violations.
    last_popped: Time,
    /// Schedule calls that targeted the past and were clamped forward.
    causality_violations: u64,
    /// Debris-compaction rebuilds performed (diagnostics).
    compactions: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: MinHeap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            pending: FxHashSet::default(),
            live: 0,
            last_popped: Time::ZERO,
            causality_violations: 0,
            compactions: 0,
        }
    }

    /// Rebuild the heap keeping only live entries once cancelled debris
    /// outnumbers them. Pop order is unaffected — `(time, seq)` is a total
    /// order — so compaction is invisible to the simulation.
    fn maybe_compact(&mut self) {
        if self.heap.len() < COMPACT_MIN_HEAP || self.heap.len() <= 2 * self.live {
            return;
        }
        self.compactions += 1;
        let pending = &self.pending;
        let slab = &mut self.slab;
        let free = &mut self.free;
        let live: Vec<Entry> = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .filter(|e| {
                let alive = !e.tracked || pending.contains(&e.seq);
                if !alive {
                    // Cancelled debris: release its payload slot now
                    // instead of waiting for the entry to pop.
                    slab[e.slot as usize] = None;
                    free.push(e.slot);
                }
                alive
            })
            .collect();
        self.heap = MinHeap::rebuild(live);
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Scheduling in the past (before the last popped event) is a logic
    /// error in the caller; it is clamped forward to preserve causality
    /// and counted in [`EventQueue::causality_violations`] so the audit
    /// layer can report it instead of the bug silently disappearing.
    #[inline]
    pub fn schedule(&mut self, time: Time, payload: E) -> EventKey {
        let seq = self.push_entry(time, payload, true);
        EventKey { seq }
    }

    /// Schedule `payload` at absolute time `time` without a cancellation
    /// handle. The hot path for fire-exactly-once events: no hash-table
    /// bookkeeping on schedule or pop. Ordering is identical to
    /// [`EventQueue::schedule`] — both draw from the same sequence counter.
    #[inline]
    pub fn schedule_untracked(&mut self, time: Time, payload: E) {
        self.push_entry(time, payload, false);
    }

    /// Insert an entry whose sequence number was assigned externally.
    ///
    /// The sharded queue owns one global counter and routes each event to
    /// the sub-queue of its destination shard; merging sub-queues by
    /// `(time, seq)` then reproduces the exact single-queue pop order.
    /// The caller is responsible for the global causality clamp — `time`
    /// must already be at or after the merged queue's "now" (which is
    /// always >= this sub-queue's `last_popped`).
    #[inline]
    pub(crate) fn push_with_seq(&mut self, time: Time, seq: u64, payload: E, tracked: bool) {
        debug_assert!(time >= self.last_popped, "sharded clamp happens upstream");
        assert!(seq != SENTINEL_SEQ, "event sequence space exhausted");
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(payload);
                s
            }
            None => {
                let s = self.slab.len();
                assert!(s < u32::MAX as usize, "event slab exhausted");
                self.slab.push(Some(payload));
                s as u32
            }
        };
        self.heap.push(Entry {
            time,
            seq,
            slot,
            tracked,
        });
        if tracked {
            self.pending.insert(seq);
        }
        self.live += 1;
    }

    #[inline]
    fn push_entry(&mut self, time: Time, payload: E, tracked: bool) -> u64 {
        if time < self.last_popped {
            self.causality_violations += 1;
        }
        let time = time.max(self.last_popped);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, seq, payload, tracked);
        seq
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending — i.e. scheduled and not yet popped or cancelled.
    /// Cancelling a popped event, a cancelled event, or the default
    /// sentinel key is a no-op returning false and leaves `len()` intact.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let was_pending = self.pending.remove(&key.seq);
        if was_pending {
            self.live -= 1;
            self.maybe_compact();
        }
        was_pending
    }

    /// Remove and return the earliest live event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_full().map(|(t, _, _, e)| (t, e))
    }

    /// [`EventQueue::pop`] plus the entry's sequence number and tracked
    /// flag — the sharded queue needs both to keep its seq→shard map in
    /// sync without a hash lookup on the untracked fast path.
    #[inline]
    pub(crate) fn pop_full(&mut self) -> Option<(Time, u64, bool, E)> {
        self.maybe_compact();
        while let Some(entry) = self.heap.pop() {
            let payload = self.slab[entry.slot as usize]
                .take()
                .expect("scheduled slot holds a payload");
            self.free.push(entry.slot);
            if entry.tracked && !self.pending.remove(&entry.seq) {
                continue; // cancelled entry: lazy deletion
            }
            self.live -= 1;
            self.last_popped = entry.time;
            return Some((entry.time, entry.seq, entry.tracked, payload));
        }
        None
    }

    /// Time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.peek_key().map(|(t, _)| t)
    }

    /// Full `(time, seq)` ordering key of the earliest live event without
    /// removing it. The sharded queue merges sub-queues on this key: with
    /// one global sequence counter, the merged pop order is exactly the
    /// single-queue pop order.
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        self.maybe_compact();
        while let Some(entry) = self.heap.peek() {
            if !entry.tracked || self.pending.contains(&entry.seq) {
                return Some((entry.time, entry.seq));
            }
            let entry = self.heap.pop().expect("peeked entry pops");
            self.slab[entry.slot as usize] = None;
            self.free.push(entry.slot);
        }
        None
    }

    /// Number of live scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The time of the last popped event (the queue's notion of "now").
    pub fn now(&self) -> Time {
        self.last_popped
    }

    /// Number of schedule calls that targeted an instant before `now()`
    /// and were clamped forward.
    pub fn causality_violations(&self) -> u64 {
        self.causality_violations
    }

    /// Number of debris-compaction rebuilds performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Cross-check the reported live count against the actual heap
    /// contents (O(heap) scan; intended for end-of-run audits, not the
    /// hot path).
    pub fn audit(&self) -> QueueAudit {
        let actual_live = self
            .heap
            .iter()
            .filter(|e| !e.tracked || self.pending.contains(&e.seq))
            .count();
        QueueAudit {
            reported_live: self.live,
            actual_live,
            heap_total: self.heap.len(),
            causality_violations: self.causality_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(30), "c");
        q.schedule(Time(10), "a");
        q.schedule(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Time(5), 1);
        q.schedule(Time(5), 2);
        q.schedule(Time(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn cancel_skips_entry() {
        let mut q = EventQueue::new();
        let _a = q.schedule(Time(1), "a");
        let b = q.schedule(Time(2), "b");
        let _c = q.schedule(Time(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel reports false");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Time(1), "a")));
        assert_eq!(q.pop(), Some((Time(3), "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), "a");
        q.schedule(Time(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time(2)));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO + Duration::from_micros(7), ());
        q.pop();
        assert_eq!(q.now(), Time(7_000));
    }

    #[test]
    fn len_counts_live_only() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), ());
        q.schedule(Time(2), ());
        q.cancel(a);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn default_key_cancel_is_a_noop() {
        // Regression: the default key used to carry seq 0, colliding with
        // the first scheduled event — cancelling a placeholder key would
        // silently kill it.
        let mut q = EventQueue::new();
        assert!(!q.cancel(EventKey::default()), "fresh queue: no-op");
        let first = q.schedule(Time(1), "first");
        assert!(!q.cancel(EventKey::default()), "must not match seq 0");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time(1), "first")));
        assert!(!q.cancel(first), "already popped");
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_pop_is_a_noop() {
        // Regression: cancel used to return true for already-popped keys,
        // decrementing the live count below reality and leaking an entry
        // in the cancelled set forever.
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), "a");
        q.schedule(Time(2), "b");
        assert_eq!(q.pop(), Some((Time(1), "a")));
        assert!(!q.cancel(a), "popped event is not cancellable");
        assert_eq!(q.len(), 1, "live count untouched by the failed cancel");
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((Time(2), "b")));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_then_reschedule_cycles_stay_bounded_and_consistent() {
        // The drain-reschedule pattern the network engine uses: schedule a
        // replacement, cancel the old event, repeat. Bookkeeping must not
        // grow without bound and len() must match the heap at every step.
        let mut q = EventQueue::new();
        let mut key = q.schedule(Time(10), 0u32);
        for i in 1..1000u32 {
            let new = q.schedule(Time(10 + i as u64), i);
            assert!(q.cancel(key));
            key = new;
            assert_eq!(q.len(), 1);
        }
        let audit = q.audit();
        assert!(audit.is_consistent(), "{audit:?}");
        assert_eq!(audit.reported_live, 1);
        // Draining the queue clears the cancelled debris too.
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        let audit = q.audit();
        assert_eq!(audit.heap_total, 0, "no leaked entries: {audit:?}");
        assert!(audit.is_consistent());
    }

    #[test]
    fn debris_stays_bounded_under_schedule_cancel_churn() {
        // A long noise-heavy run reschedules drain events constantly:
        // schedule a replacement, cancel the old key, never pop. Without
        // compaction the heap grows by one dead entry per cycle; with it,
        // occupancy must stay within a constant factor of the live count.
        let mut q = EventQueue::new();
        let mut keys: Vec<EventKey> = (0..100u64).map(|i| q.schedule(Time(i), i)).collect();
        for round in 0..1_000u64 {
            for k in keys.iter_mut() {
                let new = q.schedule(Time(100 + round), round);
                assert!(q.cancel(*k));
                *k = new;
                let audit = q.audit();
                assert!(audit.is_consistent(), "{audit:?}");
                assert!(
                    audit.heap_total <= (2 * audit.reported_live).max(super::COMPACT_MIN_HEAP),
                    "heap debris unbounded: {audit:?}"
                );
            }
        }
        assert!(q.compactions() > 0, "churn this heavy must compact");
        // The queue still pops everything that is live, in order.
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 100);
        assert_eq!(q.audit().heap_total, 0);
    }

    #[test]
    fn compaction_preserves_pop_order_and_len() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..200u64).map(|i| q.schedule(Time(1000 - i), i)).collect();
        // Cancel three quarters; compaction will trigger along the way.
        for k in keys.iter().take(150) {
            q.cancel(*k);
        }
        assert_eq!(q.len(), 50);
        let mut last = Time::ZERO;
        let mut seen = Vec::new();
        while let Some((t, v)) = q.pop() {
            assert!(t >= last);
            last = t;
            seen.push(v);
        }
        // The survivors are exactly the 50 latest-scheduled payloads, in
        // descending payload order (they were scheduled at descending
        // times).
        assert_eq!(seen, (150..200u64).rev().collect::<Vec<_>>());
    }

    #[test]
    fn untracked_and_tracked_events_interleave_by_time_and_seq() {
        let mut q = EventQueue::new();
        q.schedule_untracked(Time(5), "u5");
        let t3 = q.schedule(Time(3), "t3");
        q.schedule_untracked(Time(3), "u3"); // later seq than t3, same time
        q.schedule(Time(1), "t1");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((Time(1), "t1")));
        assert_eq!(q.pop(), Some((Time(3), "t3")));
        assert_eq!(q.pop(), Some((Time(3), "u3")));
        assert_eq!(q.pop(), Some((Time(5), "u5")));
        assert!(q.is_empty());
        assert!(!q.cancel(t3), "popped tracked key stays uncancellable");
    }

    #[test]
    fn untracked_events_survive_compaction_and_audit() {
        let mut q = EventQueue::new();
        for i in 0..50u64 {
            q.schedule_untracked(Time(1000 + i), i);
        }
        // Pile up enough cancelled debris to force a rebuild.
        let keys: Vec<EventKey> = (0..200u64).map(|i| q.schedule(Time(i), 100 + i)).collect();
        for k in &keys {
            assert!(q.cancel(*k));
        }
        assert!(q.compactions() > 0, "debris must trigger a rebuild");
        let audit = q.audit();
        assert!(audit.is_consistent(), "{audit:?}");
        assert_eq!(audit.reported_live, 50);
        let mut popped = Vec::new();
        while let Some((_, v)) = q.pop() {
            popped.push(v);
        }
        assert_eq!(popped, (0..50u64).collect::<Vec<_>>());
        assert_eq!(q.audit().heap_total, 0);
    }

    #[test]
    fn peek_time_sees_untracked_head_past_cancelled_debris() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time(1), 0);
        q.schedule_untracked(Time(2), 1);
        assert!(q.cancel(a));
        assert_eq!(q.peek_time(), Some(Time(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn causality_violations_are_counted_and_clamped() {
        let mut q = EventQueue::new();
        q.schedule(Time(100), "late");
        assert_eq!(q.pop(), Some((Time(100), "late")));
        assert_eq!(q.causality_violations(), 0);
        // Scheduling before now() clamps forward and counts.
        q.schedule(Time(50), "past");
        assert_eq!(q.causality_violations(), 1);
        assert_eq!(q.pop(), Some((Time(100), "past")));
        assert_eq!(q.audit().causality_violations, 1);
    }

    #[test]
    fn audit_matches_reality_through_mixed_operations() {
        let mut q = EventQueue::new();
        let keys: Vec<EventKey> = (0..20).map(|i| q.schedule(Time(i), i)).collect();
        for k in keys.iter().step_by(3) {
            q.cancel(*k);
        }
        for _ in 0..5 {
            q.pop();
        }
        let audit = q.audit();
        assert!(audit.is_consistent(), "{audit:?}");
        assert_eq!(audit.reported_live, q.len());
    }
}
