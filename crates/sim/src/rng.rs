//! Deterministic random-number plumbing.
//!
//! Every stochastic component of a run (each rank's noise process, workload
//! generators, tie-shuffling) derives its own independent stream from one
//! master seed, so that a run is reproducible bit-for-bit and adding a new
//! consumer of randomness does not perturb existing streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A master seed from which per-component streams are derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MasterSeed(pub u64);

impl MasterSeed {
    /// Derive an independent stream seed for a named component and index.
    ///
    /// Uses the SplitMix64 finalizer over a combination of the master seed,
    /// a component tag, and an index — cheap, stateless, and with good
    /// avalanche behaviour, so neighbouring `(tag, index)` pairs yield
    /// uncorrelated streams.
    pub fn stream(self, tag: StreamTag, index: u64) -> u64 {
        let mut z = self
            .0
            .wrapping_add((tag as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = splitmix64(&mut z);
        z
    }

    /// A ready-to-use RNG for a component stream.
    pub fn rng(self, tag: StreamTag, index: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.stream(tag, index))
    }
}

/// Names of the randomness consumers in the workspace.
///
/// Add new variants at the end — the discriminant participates in stream
/// derivation, and reordering would silently change all runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u64)]
pub enum StreamTag {
    /// Per-rank noise processes.
    Noise = 1,
    /// Workload/payload generation.
    Workload = 2,
    /// Randomized algorithm choices inside collectives (unused by default).
    Collective = 3,
    /// Test-only streams.
    Test = 4,
    /// Application-level randomness (e.g. ASP edge weights).
    App = 5,
    /// Fault injection: loss draws and retransmit-backoff jitter.
    Faults = 6,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let s = MasterSeed(42);
        assert_eq!(s.stream(StreamTag::Noise, 0), s.stream(StreamTag::Noise, 0));
        assert_eq!(s.stream(StreamTag::App, 9), s.stream(StreamTag::App, 9));
    }

    #[test]
    fn streams_differ_across_tags_and_indices() {
        let s = MasterSeed(42);
        let a = s.stream(StreamTag::Noise, 0);
        let b = s.stream(StreamTag::Noise, 1);
        let c = s.stream(StreamTag::Workload, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn rng_reproducible() {
        let s = MasterSeed(7);
        let x: u64 = s.rng(StreamTag::Test, 3).random();
        let y: u64 = s.rng(StreamTag::Test, 3).random();
        assert_eq!(x, y);
    }

    #[test]
    fn different_master_seeds_diverge() {
        let a = MasterSeed(1).stream(StreamTag::Noise, 0);
        let b = MasterSeed(2).stream(StreamTag::Noise, 0);
        assert_ne!(a, b);
    }
}
