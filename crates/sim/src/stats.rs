//! Small statistics helpers used by the measurement harness.

/// Online mean/min/max/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sample standard deviation (n-1 denominator), or 0 for fewer than two
    /// observations.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Exact percentile of a data set (nearest-rank method).
/// Returns 0 for an empty slice. `p` is in `[0, 100]`.
pub fn percentile(data: &mut [f64], p: f64) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * data.len() as f64).ceil() as usize;
    data[rank.clamp(1, data.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!((s.stddev() - 1.2909944487358056).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut xs, 50.0), 3.0);
        assert_eq!(percentile(&mut xs, 100.0), 5.0);
        assert_eq!(percentile(&mut xs, 1.0), 1.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }
}
