//! Virtual time for the discrete-event simulator.
//!
//! Time is measured in integer **nanoseconds** so that event ordering is
//! exact and platform-independent. All derived quantities (bandwidth-phase
//! durations, latencies, compute costs) are rounded to whole nanoseconds at
//! the point where they are converted into a [`Duration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);
    /// The greatest representable time; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (floating) microseconds, for reporting.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time expressed in (floating) milliseconds, for reporting.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time expressed in (floating) seconds, for reporting.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from a floating number of seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Duration {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        Duration((secs * 1e9).round() as u64)
    }

    /// Construct from a floating number of seconds, rounding **up** to the
    /// next nanosecond — used where an event must not fire before the work
    /// it represents is complete (e.g. flow drain estimates).
    #[inline]
    pub fn from_secs_f64_ceil(secs: f64) -> Duration {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        Duration((secs * 1e9).ceil() as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span expressed in (floating) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span expressed in (floating) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span expressed in (floating) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True when the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_roundtrip() {
        let t = Time::ZERO + Duration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!((t - Time::ZERO).as_nanos(), 5_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(Duration::from_secs_f64(2.5e-9).as_nanos(), 3);
        assert_eq!(Duration::from_secs_f64(-1.0).as_nanos(), 0);
        assert_eq!(Duration::from_secs_f64(f64::NAN).as_nanos(), 0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time(10);
        let b = Time(20);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time(1_500)), "1.500us");
        assert_eq!(format!("{}", Duration::from_millis(2)), "2000.000us");
    }

    #[test]
    fn time_add_saturates() {
        let t = Time::MAX + Duration::from_nanos(1);
        assert_eq!(t, Time::MAX);
    }
}
