//! A fast, non-cryptographic hasher for the simulator's integer-keyed
//! tables (in-flight messages, pending events, matching indexes).
//!
//! The event loop performs several hash-table operations per simulated
//! event, all keyed by small integers (`u64` ids, `(u32, u32)` pairs). The
//! standard library's default SipHash is DoS-resistant but costs tens of
//! nanoseconds per key — measurable against a ~100 ns per-event budget.
//! This is the classic Fx multiply-rotate hash (as used by rustc): one
//! rotate, one xor, one multiply per word. Keys are simulator-internal
//! ids, never attacker-controlled, so collision-flooding resistance buys
//! nothing here.
//!
//! Determinism note: the simulator never iterates these tables on a hot
//! path (only in cold diagnostics, which sort first), so the hash function
//! cannot influence event order or golden traces.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (a.k.a. the Firefox hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-rotate hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_behave() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 3) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 3) as u32)));
        }
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((7, 9)));
        assert!(!s.insert((7, 9)));
        assert!(s.contains(&(7, 9)));
    }

    #[test]
    fn hash_is_stable_per_key() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |k: u64| b.hash_one(k);
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
