//! # adapt-sim — deterministic discrete-event simulation engine
//!
//! The foundation of the ADAPT reproduction: a virtual clock, a
//! deterministic event queue, seeded randomness plumbing, and measurement
//! helpers. Everything above this crate (network model, MPI runtime,
//! collective algorithms) is expressed as events scheduled on the
//! [`EventQueue`].
//!
//! Determinism contract: given identical inputs and an identical
//! [`rng::MasterSeed`], a simulation built on this crate
//! produces identical virtual-time results on every run.

pub mod audit;
pub mod fxhash;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use audit::{AuditReport, RankAudit};
pub use pool::WorkerPool;
pub use queue::{EventKey, EventQueue, QueueAudit};
pub use rng::{MasterSeed, StreamTag};
pub use shard::{Outbox, ShardCounters, ShardModel, ShardRunStats, ShardSim, ShardedQueue};
pub use stats::Summary;
pub use time::{Duration, Time};
