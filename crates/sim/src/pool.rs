//! A hand-rolled spawn-once worker pool for the parallel simulation core.
//!
//! The vendored `rayon` is a sequential stub, so parallel work in this
//! workspace runs on this pool instead. It is deliberately small:
//!
//! - **Spawn-once.** Workers are OS threads created in [`WorkerPool::new`]
//!   and reused for every batch; an epoch-synchronized simulation submits
//!   thousands of small batches and cannot afford a `thread::spawn` per
//!   epoch.
//! - **Batch barrier.** [`WorkerPool::run_batch`] returns only when every
//!   job of the batch has finished — exactly the epoch barrier a
//!   conservatively synchronized PDES needs between lookahead windows.
//! - **Deterministic results.** Results come back in submission order
//!   regardless of which worker ran which job or in what order they
//!   finished.
//! - **Panic propagation.** A panicking job does not wedge the pool: the
//!   batch completes, the panic payload is re-raised on the caller's
//!   thread, and the pool remains usable for further batches.
//!
//! With `threads == 1` no worker threads exist at all and jobs run inline
//! on the caller's thread, in order — the sequential path is untouched by
//! construction, not by testing.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work accepted by the pool's shared injector.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A spawn-once thread pool executing batches of jobs with a barrier.
pub struct WorkerPool {
    threads: usize,
    /// Shared injector; `None` after shutdown begins (in `Drop`).
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Create a pool of `threads` workers. `threads <= 1` creates no OS
    /// threads: every batch runs inline on the caller's thread.
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.max(1);
        if threads == 1 {
            return WorkerPool {
                threads,
                tx: None,
                workers: Vec::new(),
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("adapt-worker-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            threads,
            tx: Some(tx),
            workers,
        }
    }

    /// Pool width (1 means inline execution, no worker threads).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The host's available hardware parallelism (fallback 1).
    pub fn host_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Run a batch of jobs to completion and return their results in
    /// submission order. This is a barrier: no job of a later batch can
    /// start before every job of this one has finished. If any job
    /// panicked, the panic of the earliest such job (by submission index)
    /// is re-raised here after the whole batch has drained, and the pool
    /// stays usable.
    pub fn run_batch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let tx = match &self.tx {
            // Inline path: run in order on the caller's thread; a panic
            // propagates directly.
            None => return jobs.into_iter().map(|j| j()).collect(),
            Some(tx) => tx,
        };
        let n = jobs.len();
        let (res_tx, res_rx) = channel::<(usize, std::thread::Result<T>)>();
        for (idx, job) in jobs.into_iter().enumerate() {
            let res_tx = res_tx.clone();
            let wrapped: Job = Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(job));
                // The batch owner may have abandoned collection after an
                // earlier panic; a closed channel is not an error here.
                let _ = res_tx.send((idx, out));
            });
            tx.send(wrapped).expect("pool workers alive");
        }
        drop(res_tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out) = res_rx.recv().expect("every job reports exactly once");
            slots[idx] = Some(out);
        }
        // Whole batch drained (the barrier); now surface the earliest
        // panic, if any, on the caller's thread.
        let mut results = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in slots {
            match slot.expect("slot filled") {
                Ok(v) => results.push(v),
                Err(p) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        results
    }

    /// Convenience: apply `f` to every item, in parallel, preserving item
    /// order in the result. The pool-of-one runs inline and in order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>> = items
            .into_iter()
            .map(|item| {
                let f = Arc::clone(&f);
                Box::new(move || f(item)) as Box<dyn FnOnce() -> T + Send + 'static>
            })
            .collect();
        self.run_batch(jobs)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the injector ends every worker's recv loop.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only while drawing the next job, never while
        // running it.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling worker panicked mid-recv; bail
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // injector closed: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<T: Send + 'static>(
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Box<dyn FnOnce() -> T + Send + 'static> {
        Box::new(f)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let jobs = (0..32u64)
                .map(|i| {
                    boxed(move || {
                        // Stagger finish order so late-submitted jobs finish
                        // first on multi-threaded pools.
                        if threads > 1 {
                            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
                        }
                        i * i
                    })
                })
                .collect();
            let out = pool.run_batch(jobs);
            assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn batches_are_barriers() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=5usize {
            let jobs = (0..8)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    boxed(move || c.fetch_add(1, Ordering::SeqCst))
                })
                .collect::<Vec<_>>();
            pool.run_batch(jobs);
            // Every job of the round has run before run_batch returned.
            assert_eq!(counter.load(Ordering::SeqCst), round * 8);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.workers.is_empty(), "threads=1 must spawn nothing");
        let caller = std::thread::current().id();
        let out = pool.run_batch(vec![boxed(move || std::thread::current().id() == caller)]);
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            boxed(|| 1),
            boxed(|| panic!("shard 1 exploded")),
            boxed(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs)))
            .expect_err("panic must propagate to the caller");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("shard 1 exploded"), "{msg}");
        // The pool is still fully usable afterwards.
        let out = pool.map((0..16u32).collect(), |i| i + 1);
        assert_eq!(out, (1..=16u32).collect::<Vec<_>>());
    }

    #[test]
    fn earliest_panic_wins() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() + Send>> = (0..8)
            .map(|i| {
                boxed(move || {
                    if i >= 2 {
                        panic!("job {i} failed")
                    }
                })
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "job 2 failed");
    }

    #[test]
    fn map_preserves_order_across_widths() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(items.clone(), |i| i * 3 + 1), expect);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = WorkerPool::new(2);
        let out: Vec<u8> = pool.run_batch(Vec::new());
        assert!(out.is_empty());
    }
}
