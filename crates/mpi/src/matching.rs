//! Indexed MPI message matching.
//!
//! MPI matching is FIFO *per matching key*: an arriving message takes the
//! earliest-posted receive it is compatible with, and a newly posted
//! receive takes the earliest-arrived compatible unexpected message. The
//! seed implementation kept one flat `Vec` per rank and scanned it per
//! operation — O(queue length) per event, which dominates the progress
//! engine once collectives keep hundreds of receives outstanding (the M>N
//! over-posting the paper's §2.2.1 recommends makes this *worse* the
//! better the algorithm is used).
//!
//! This module replaces the scans with two-level indexes keyed by
//! `(source, tag)`:
//!
//! * [`PostedQueue`] — posted receives. Specific-tag receives live in
//!   per-`(src, tag)` FIFO deques; wildcard-tag receives ([`ANY_TAG`] and
//!   block wildcards) live in a per-source deque in posting order. An
//!   arrival consults the front of its exact deque plus the wildcard deque
//!   in posting order, and takes whichever compatible candidate was posted
//!   first — bit-identical to the old first-posted scan, but the wildcard
//!   walk stops as soon as posting seqs exceed the exact candidate's.
//! * [`UnexpQueue`] — unexpected messages (eager data or RTS). Arrivals
//!   are dual-indexed by `(src, tag)` and by source in arrival order; a
//!   specific-tag receive pops the front of its `(src, tag)` deque, a
//!   wildcard receive walks the per-source deque. An entry matched through
//!   one index leaves a tombstone in the other, reclaimed lazily.
//!
//! Every mutating call additionally runs the seed's linear scan over a
//! shadow `Vec` in debug builds and asserts the same pick
//! (`debug_assert!`), so the whole test suite cross-checks the index
//! against the reference semantics.

use crate::program::{tag_matches, Tag, Token, ANY_TAG, WILDCARD_BIT};
use adapt_sim::fxhash::{FxHashMap, FxHashSet};
use adapt_sim::time::Time;
use adapt_topology::{MemSpace, Rank};
use std::collections::VecDeque;

/// Message id in the runtime's in-flight table.
pub(crate) type MsgId = u64;

/// A receive posted by a rank, waiting for its message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PostedRecv {
    pub src: Rank,
    pub tag: Tag,
    pub token: Token,
    pub mem: MemSpace,
    /// When the receive was posted (observability: late-sender /
    /// late-receiver attribution). Matching never consults it.
    pub posted_at: Time,
}

/// Is this posted tag a wildcard (matches more than one message tag)?
fn is_wild(tag: Tag) -> bool {
    tag == ANY_TAG || tag & WILDCARD_BIT != 0
}

/// Posted-receive index for one rank. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct PostedQueue {
    /// Specific-tag receives, FIFO per `(src, tag)`.
    exact: FxHashMap<(Rank, Tag), VecDeque<(u64, PostedRecv)>>,
    /// Wildcard-tag receives per source, in posting order.
    wild: FxHashMap<Rank, VecDeque<(u64, PostedRecv)>>,
    /// Posting-order counter; the tie-breaker between the two indexes.
    seq: u64,
    len: usize,
    /// Reference copy running the seed's linear scan (debug builds only).
    #[cfg(debug_assertions)]
    shadow: Vec<PostedRecv>,
}

impl PostedQueue {
    /// Number of receives currently posted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Record a newly posted receive.
    pub fn push(&mut self, pr: PostedRecv) {
        let s = self.seq;
        self.seq += 1;
        if is_wild(pr.tag) {
            self.wild.entry(pr.src).or_default().push_back((s, pr));
        } else {
            self.exact
                .entry((pr.src, pr.tag))
                .or_default()
                .push_back((s, pr));
        }
        self.len += 1;
        #[cfg(debug_assertions)]
        self.shadow.push(pr);
    }

    /// Match an arriving message against the earliest-posted compatible
    /// receive. Returns the receive (removed from the queue) and the
    /// number of index entries probed.
    pub fn match_arrival(&mut self, src: Rank, tag: Tag) -> (Option<PostedRecv>, u64) {
        let mut probes = 0u64;
        let exact_seq = match self.exact.get(&(src, tag)) {
            Some(q) if !q.is_empty() => {
                probes += 1;
                Some(q[0].0)
            }
            _ => None,
        };
        // Earliest compatible wildcard, scanned in posting order; stop once
        // posting seqs pass the exact candidate (later entries cannot win).
        let mut wild_pick: Option<(u64, usize)> = None;
        if let Some(q) = self.wild.get(&src) {
            for (i, (s, pr)) in q.iter().enumerate() {
                if exact_seq.is_some_and(|es| es < *s) {
                    break;
                }
                probes += 1;
                if tag_matches(pr.tag, tag) {
                    wild_pick = Some((*s, i));
                    break;
                }
            }
        }
        let hit = match (exact_seq, wild_pick) {
            (Some(_), None) => self.pop_exact(src, tag),
            (Some(es), Some((ws, i))) => {
                if es < ws {
                    self.pop_exact(src, tag)
                } else {
                    self.pop_wild(src, i)
                }
            }
            (None, Some((_, i))) => self.pop_wild(src, i),
            (None, None) => None,
        };
        #[cfg(debug_assertions)]
        {
            let pos = self
                .shadow
                .iter()
                .position(|p| p.src == src && tag_matches(p.tag, tag));
            let want = pos.map(|p| self.shadow.remove(p));
            debug_assert_eq!(
                hit, want,
                "posted-receive index diverged from linear scan for ({src}, {tag})"
            );
        }
        (hit, probes)
    }

    fn pop_exact(&mut self, src: Rank, tag: Tag) -> Option<PostedRecv> {
        let q = self.exact.get_mut(&(src, tag))?;
        let (_, pr) = q.pop_front()?;
        if q.is_empty() {
            self.exact.remove(&(src, tag));
        }
        self.len -= 1;
        Some(pr)
    }

    fn pop_wild(&mut self, src: Rank, i: usize) -> Option<PostedRecv> {
        let q = self.wild.get_mut(&src)?;
        let (_, pr) = q.remove(i)?;
        if q.is_empty() {
            self.wild.remove(&src);
        }
        self.len -= 1;
        Some(pr)
    }

    /// Cancel every posted receive naming `src` (ULFM-style revocation
    /// when `src` is agreed dead: those matches can never arrive).
    /// Returns how many receives were cancelled. Wildcard-source receives
    /// are untouched — they can still match a live sender.
    pub fn remove_src(&mut self, src: Rank) -> usize {
        let mut removed = 0;
        self.exact.retain(|&(s, _), q| {
            if s == src {
                removed += q.len();
                false
            } else {
                true
            }
        });
        if let Some(q) = self.wild.remove(&src) {
            removed += q.len();
        }
        self.len -= removed;
        #[cfg(debug_assertions)]
        self.shadow.retain(|p| p.src != src);
        removed
    }

    /// All posted receives as `(src, tag)` pairs (deadlock diagnostics).
    pub fn entries(&self) -> Vec<(Rank, Tag)> {
        let mut all: Vec<(u64, Rank, Tag)> = self
            .exact
            .values()
            .flatten()
            .chain(self.wild.values().flatten())
            .map(|(s, pr)| (*s, pr.src, pr.tag))
            .collect();
        all.sort_unstable();
        all.into_iter().map(|(_, s, t)| (s, t)).collect()
    }
}

/// Unexpected-message index for one rank (eager data or RTS handshakes —
/// the runtime keeps one instance per protocol class). See the module docs.
#[derive(Debug, Default)]
pub(crate) struct UnexpQueue {
    /// Arrival-order FIFO per `(src, tag)`.
    by_src_tag: FxHashMap<(Rank, Tag), VecDeque<(u64, MsgId)>>,
    /// Arrival-order FIFO per source (wildcard receives walk this).
    by_src: FxHashMap<Rank, VecDeque<(u64, MsgId, Tag)>>,
    /// Entries matched through the *other* index; reclaimed lazily.
    dead: FxHashSet<MsgId>,
    /// Arrival-order counter.
    seq: u64,
    len: usize,
    /// Reference copy running the seed's linear scan (debug builds only).
    #[cfg(debug_assertions)]
    shadow: Vec<(MsgId, Rank, Tag)>,
}

impl UnexpQueue {
    /// Number of live (unmatched) messages queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Record an arrival that found no posted receive.
    pub fn push(&mut self, src: Rank, tag: Tag, id: MsgId) {
        let s = self.seq;
        self.seq += 1;
        self.by_src_tag
            .entry((src, tag))
            .or_default()
            .push_back((s, id));
        self.by_src.entry(src).or_default().push_back((s, id, tag));
        self.len += 1;
        #[cfg(debug_assertions)]
        self.shadow.push((id, src, tag));
    }

    /// Match a newly posted receive (exact source, possibly wildcard tag)
    /// against the earliest-arrived compatible message. Returns the
    /// message id (removed from the queue) and the entries probed.
    pub fn match_posted(&mut self, src: Rank, tag: Tag) -> (Option<MsgId>, u64) {
        let mut probes = 0u64;
        let hit = if is_wild(tag) {
            let mut pick = None;
            if let Some(q) = self.by_src.get_mut(&src) {
                // Reclaim tombstones that have reached the front.
                while let Some((_, id, _)) = q.front() {
                    if self.dead.remove(id) {
                        q.pop_front();
                    } else {
                        break;
                    }
                }
                for (i, (_, id, mtag)) in q.iter().enumerate() {
                    probes += 1;
                    if !self.dead.contains(id) && tag_matches(tag, *mtag) {
                        pick = Some(i);
                        break;
                    }
                }
                if let Some(i) = pick {
                    let (_, id, _) = q.remove(i).expect("picked entry present");
                    if q.is_empty() {
                        self.by_src.remove(&src);
                    }
                    // Tombstone the (src, tag) side.
                    self.dead.insert(id);
                    self.len -= 1;
                    Some(id)
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            let mut found = None;
            if let Some(q) = self.by_src_tag.get_mut(&(src, tag)) {
                while let Some((_, id)) = q.front() {
                    probes += 1;
                    let id = *id;
                    if self.dead.remove(&id) {
                        q.pop_front();
                        continue;
                    }
                    q.pop_front();
                    found = Some(id);
                    break;
                }
                if q.is_empty() {
                    self.by_src_tag.remove(&(src, tag));
                }
            }
            if let Some(id) = found {
                // Tombstone the per-source side.
                self.dead.insert(id);
                self.len -= 1;
            }
            found
        };
        #[cfg(debug_assertions)]
        {
            let pos = self
                .shadow
                .iter()
                .position(|&(_, msrc, mtag)| msrc == src && tag_matches(tag, mtag));
            let want = pos.map(|p| self.shadow.remove(p).0);
            debug_assert_eq!(
                hit, want,
                "unexpected-queue index diverged from linear scan for ({src}, {tag})"
            );
        }
        (hit, probes)
    }

    /// Live message ids in arrival order (deadlock diagnostics).
    pub fn ids(&self) -> Vec<MsgId> {
        let mut all: Vec<(u64, MsgId)> = self
            .by_src
            .values()
            .flatten()
            .filter(|(_, id, _)| !self.dead.contains(id))
            .map(|(s, id, _)| (*s, *id))
            .collect();
        all.sort_unstable();
        all.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::any_tag_in_block;

    fn pr(src: Rank, tag: Tag, token: u64) -> PostedRecv {
        PostedRecv {
            src,
            tag,
            token: Token(token),
            mem: MemSpace::Host { node: 0, socket: 0 },
            posted_at: Time::ZERO,
        }
    }

    #[test]
    fn remove_src_cancels_exact_and_wildcard_tags_only_for_the_dead() {
        // Mixed queue: exact-tag and ANY_TAG receives on the dead source,
        // plus a live source's receives that must survive untouched.
        let mut q = PostedQueue::default();
        q.push(pr(3, 7, 0)); // dead src, exact tag
        q.push(pr(3, 8, 1)); // dead src, another exact tag
        q.push(pr(3, crate::program::ANY_TAG, 2)); // dead src, wildcard tag
        q.push(pr(5, 7, 3)); // live src
        q.push(pr(5, crate::program::ANY_TAG, 4)); // live src, wildcard tag
        assert_eq!(q.len(), 5);
        assert_eq!(q.remove_src(3), 3, "all three rank-3 receives cancel");
        assert_eq!(q.len(), 2);
        // The dead source's matches are gone; the live source still works.
        assert!(q.match_arrival(3, 7).0.is_none());
        assert!(q.match_arrival(3, 9).0.is_none());
        assert_eq!(q.match_arrival(5, 7).0.unwrap().token, Token(3));
        assert_eq!(q.match_arrival(5, 9).0.unwrap().token, Token(4));
        assert_eq!(q.len(), 0);
        // Idempotent on an empty/absent source.
        assert_eq!(q.remove_src(3), 0);
    }

    #[test]
    fn posted_fifo_per_src_tag() {
        // Three receives on the same (src, tag): arrivals take them in
        // posting order.
        let mut q = PostedQueue::default();
        for t in 0..3 {
            q.push(pr(5, 7, t));
        }
        for t in 0..3 {
            let (hit, _) = q.match_arrival(5, 7);
            assert_eq!(hit.unwrap().token, Token(t));
        }
        assert_eq!(q.len(), 0);
        assert!(q.match_arrival(5, 7).0.is_none());
    }

    #[test]
    fn posted_source_is_exact() {
        let mut q = PostedQueue::default();
        q.push(pr(1, 7, 0));
        assert!(q.match_arrival(2, 7).0.is_none());
        assert_eq!(q.len(), 1);
        assert!(q.match_arrival(1, 7).0.is_some());
    }

    #[test]
    fn posted_wildcard_interleaves_with_specific_by_posting_order() {
        // Posting order: specific tag 9, ANY_TAG, specific tag 9.
        // First tag-9 arrival takes the first specific (earliest posted);
        // second takes the ANY_TAG (posted before the second specific);
        // third takes the remaining specific.
        let mut q = PostedQueue::default();
        q.push(pr(3, 9, 0));
        q.push(pr(3, ANY_TAG, 1));
        q.push(pr(3, 9, 2));
        let order: Vec<Token> = (0..3)
            .map(|_| q.match_arrival(3, 9).0.unwrap().token)
            .collect();
        assert_eq!(order, vec![Token(0), Token(1), Token(2)]);
    }

    #[test]
    fn posted_wildcard_first_wins_over_later_specific() {
        let mut q = PostedQueue::default();
        q.push(pr(3, ANY_TAG, 0));
        q.push(pr(3, 9, 1));
        assert_eq!(q.match_arrival(3, 9).0.unwrap().token, Token(0));
        assert_eq!(q.match_arrival(3, 9).0.unwrap().token, Token(1));
    }

    #[test]
    fn posted_block_wildcard_scopes_to_its_block() {
        use crate::program::TAG_BLOCK;
        let mut q = PostedQueue::default();
        q.push(pr(3, any_tag_in_block(1), 0));
        // A tag outside block 1 does not match the wildcard.
        assert!(q.match_arrival(3, 5).0.is_none());
        // A tag inside block 1 does.
        assert_eq!(q.match_arrival(3, TAG_BLOCK + 5).0.unwrap().token, Token(0));
    }

    #[test]
    fn posted_mixed_wildcards_and_tags_random_churn() {
        // Random pushes and arrivals; debug builds cross-check every pick
        // against the linear-scan shadow.
        let mut q = PostedQueue::default();
        let mut seed = 42u64;
        let mut live = 0usize;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for step in 0..4_000u64 {
            let r = rng();
            if r % 3 != 0 {
                let src = (r % 4) as Rank;
                let tag = match (r >> 8) % 4 {
                    0 => ANY_TAG,
                    1 => any_tag_in_block(((r >> 16) % 2) as u32),
                    _ => ((r >> 16) % 6) as Tag,
                };
                q.push(pr(src, tag, step));
                live += 1;
            } else {
                let src = ((r >> 4) % 4) as Rank;
                let tag = ((r >> 16) % (2 * crate::program::TAG_BLOCK as u64)) as Tag;
                if q.match_arrival(src, tag).0.is_some() {
                    live -= 1;
                }
            }
            assert_eq!(q.len(), live);
        }
    }

    #[test]
    fn unexp_fifo_per_src_tag_and_exact_pop() {
        let mut q = UnexpQueue::default();
        q.push(2, 7, 10);
        q.push(2, 7, 11);
        q.push(2, 8, 12);
        assert_eq!(q.match_posted(2, 7).0, Some(10));
        assert_eq!(q.match_posted(2, 7).0, Some(11));
        assert_eq!(q.match_posted(2, 7).0, None);
        assert_eq!(q.match_posted(2, 8).0, Some(12));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn unexp_wildcard_takes_arrival_order_across_tags() {
        let mut q = UnexpQueue::default();
        q.push(2, 8, 20);
        q.push(2, 7, 21);
        q.push(2, 9, 22);
        assert_eq!(q.match_posted(2, ANY_TAG).0, Some(20));
        assert_eq!(q.match_posted(2, ANY_TAG).0, Some(21));
        assert_eq!(q.match_posted(2, ANY_TAG).0, Some(22));
    }

    #[test]
    fn unexp_tombstones_reclaimed_across_indexes() {
        // Match through the exact index, then make sure the wildcard walk
        // skips (and reclaims) the ghost; then the reverse.
        let mut q = UnexpQueue::default();
        q.push(2, 7, 30);
        q.push(2, 8, 31);
        assert_eq!(q.match_posted(2, 7).0, Some(30)); // ghost of 30 in by_src
        assert_eq!(q.match_posted(2, ANY_TAG).0, Some(31));
        assert_eq!(q.len(), 0);
        q.push(2, 7, 32);
        q.push(2, 7, 33);
        assert_eq!(q.match_posted(2, ANY_TAG).0, Some(32)); // ghost of 32 in by_src_tag
        assert_eq!(q.match_posted(2, 7).0, Some(33));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn unexp_random_churn_matches_linear_scan() {
        let mut q = UnexpQueue::default();
        let mut seed = 7u64;
        let mut next_id = 0u64;
        let mut live = 0usize;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..4_000u64 {
            let r = rng();
            if r % 2 == 0 {
                q.push((r % 3) as Rank, ((r >> 8) % 5) as Tag, next_id);
                next_id += 1;
                live += 1;
            } else {
                let src = ((r >> 4) % 3) as Rank;
                let tag = match (r >> 8) % 3 {
                    0 => ANY_TAG,
                    1 => any_tag_in_block(0),
                    _ => ((r >> 16) % 5) as Tag,
                };
                if q.match_posted(src, tag).0.is_some() {
                    live -= 1;
                }
            }
            assert_eq!(q.len(), live);
        }
    }
}
