//! The simulated MPI runtime: progress engine, P2P protocol, event loop.
//!
//! ## Execution model
//!
//! Each rank is a single-threaded MPI process: every action that needs its
//! CPU (posting operations, matching, handshakes, completion callbacks,
//! compute) serializes through the rank's *busy horizon* and is preempted
//! by its noise windows. In-flight network transfers progress regardless —
//! DMA does not need the host — which is precisely the asymmetry that lets
//! event-driven collectives absorb noise (§2.2.2 of the paper).
//!
//! ## P2P protocol
//!
//! *Eager* (size ≤ eager limit): data is injected immediately. If it
//! arrives before the matching receive is posted it is buffered as
//! *unexpected* and the receiver later pays an extra copy
//! (`unexpected_overhead + bytes / unexpected_copy_bandwidth`) — the cost
//! ADAPT's `M > N` rule exists to avoid (§2.2.1).
//!
//! *Rendezvous* (size > eager limit): the sender posts a zero-byte RTS;
//! the receiver answers CTS once a matching receive is posted; data flows
//! after the CTS returns. The handshake is what couples a noisy receiver
//! back to its sender in blocking implementations.

use crate::matching::{PostedQueue, PostedRecv, UnexpQueue};
use crate::payload::Payload;
use crate::program::{Completion, Op, ProgramCtx, RankProgram, Tag, Token};
use adapt_faults::{FaultPlan, Schedule};
use adapt_net::{
    min_cross_node_latency, Fabric, FlowId, FlowScheduler, FlowSpec, NetStep, Network, Path,
};
use adapt_noise::ClusterNoise;
use adapt_obs::{
    AnyRecorder, FlowClass, FlowStart, GaugeMetric, HealthReport, Monitor, MsgEvent, NullRecorder,
    ObsData, ObsSummary, ProtoKind, Recorder, SnapshotInput, Trigger,
};
use adapt_sim::audit::{AuditReport, RankAudit};
use adapt_sim::fxhash::{FxHashMap, FxHashSet};
use adapt_sim::queue::{EventKey, EventQueue};
use adapt_sim::rng::{MasterSeed, StreamTag};
use adapt_sim::shard::{ShardCounters, ShardedQueue};
use adapt_sim::time::{Duration, Time};
use adapt_topology::{MachineSpec, MemSpace, Placement, Rank};
use rand::rngs::SmallRng;
use rand::Rng;

/// Fixed CPU cost of handling any completion in the progress engine.
const PROGRESS_OVERHEAD: Duration = Duration(50);
/// Fixed CPU cost of protocol actions (posting a receive, sending CTS,
/// launching rendezvous data, enqueueing GPU work).
const CTRL_OVERHEAD: Duration = Duration(100);

/// Message id in the in-flight table.
use crate::matching::MsgId;

#[derive(Debug)]
struct Msg {
    src: Rank,
    dst: Rank,
    tag: Tag,
    payload: Payload,
    send_token: Token,
    src_mem: MemSpace,
    dst_mem: MemSpace,
    recv_token: Option<Token>,
}

#[derive(Clone, Copy, Debug)]
enum FlowKind {
    Rts(MsgId),
    Cts(MsgId),
    EagerData(MsgId),
    RndvData(MsgId),
    Copy {
        rank: Rank,
        token: Token,
        bytes: u64,
    },
    /// Reliability-layer acknowledgement for transfer lane `key`
    /// (zero-byte, receiver host to sender host, lossy but untracked —
    /// a lost ack is recovered by the sender's retransmit timer).
    Ack {
        key: XferKey,
        from: Rank,
    },
}

/// Key of one reliable transfer lane: `msg * 4 + lane`, where the lane
/// distinguishes the protocol steps that each need their own ack (a
/// message never uses both the eager and rendezvous data lanes).
type XferKey = u64;

const LANE_RTS: u64 = 0;
const LANE_CTS: u64 = 1;
const LANE_DATA: u64 = 2;

/// The retransmit lane a flow kind travels on (`None` for local copies
/// and acks themselves, which the reliability layer does not track).
fn xfer_key(kind: FlowKind) -> Option<XferKey> {
    match kind {
        FlowKind::Rts(m) => Some(m * 4 + LANE_RTS),
        FlowKind::Cts(m) => Some(m * 4 + LANE_CTS),
        FlowKind::EagerData(m) | FlowKind::RndvData(m) => Some(m * 4 + LANE_DATA),
        FlowKind::Copy { .. } | FlowKind::Ack { .. } => None,
    }
}

/// Sentinel for "no causing message" in [`RankItem::Deliver`].
const NO_MSG: MsgId = u64::MAX;

#[derive(Debug)]
enum RankItem {
    Start,
    Deliver {
        c: Completion,
        /// The message whose protocol step produced the completion
        /// (send/recv completions only; `NO_MSG` otherwise) —
        /// observability causality only, never consulted by the
        /// simulation itself. A bare sentinel rather than an `Option`
        /// saves `Option<u64>`'s eight padding bytes, though the field
        /// itself still cost one word of event size (56 → 64 bytes when
        /// it landed). The event queue stores payloads out-of-line in a
        /// slab precisely so growth like this stays off the heap's
        /// sift path.
        msg: MsgId,
    },
    RtsArrived(MsgId),
    CtsArrived(MsgId),
    EagerArrived(MsgId),
    RndvDataArrived(MsgId),
}

enum Ev {
    Net(FlowId),
    Rank {
        rank: Rank,
        item: RankItem,
    },
    Launch {
        kind: FlowKind,
        path: Path,
        bytes: u64,
    },
    /// Retransmit timer for a reliable transfer lane (tracked so the ack
    /// can cancel it).
    Timer {
        key: XferKey,
    },
    /// A degradation-window boundary: rescale one link's capacity and
    /// latency relative to its pristine baseline.
    FaultCmd {
        link: u32,
        cap: f64,
        lat: f64,
    },
    /// The fault plan kills this rank permanently at the event's time.
    Kill {
        rank: Rank,
    },
    /// The heartbeat failure detector declares this rank dead: survivors
    /// converge on the new failed set and are notified.
    Detect {
        rank: Rank,
    },
    /// Health-monitor snapshot timer: read world state, run the
    /// detectors, reschedule. Rides the deterministic queue like any
    /// other event, so the alert stream is thread-count invariant.
    Snapshot,
}

#[derive(Debug, Default)]
struct RankState {
    busy_until: Time,
    /// Progress-thread horizon (used when asynchronous progress is on:
    /// protocol work and callbacks run here, application compute on
    /// `busy_until`).
    prog_busy_until: Time,
    /// Pure CPU work performed (noise stretching excluded).
    busy_accum: Duration,
    posted: PostedQueue,
    unexp_eager: UnexpQueue,
    unexp_rts: UnexpQueue,
    finished_at: Option<Time>,
    gpu_stream_busy: Time,
    /// Posted/completed operation counters for the audit layer.
    audit: RankAudit,
}

/// World-level byte counters feeding the end-of-run [`AuditReport`].
#[derive(Debug, Default)]
struct ByteAudit {
    send_posted: u64,
    recv_completed: u64,
    copy_posted: u64,
    copy_completed: u64,
}

/// One in-flight reliable transfer: everything needed to relaunch it
/// when its retransmit timer fires.
#[derive(Debug)]
struct Xfer {
    kind: FlowKind,
    path: Path,
    bytes: u64,
    /// The rank the transfer is attributed to in traces (the sender
    /// side of the lane). Kept here because a late retransmit can
    /// outlive the message record it belongs to.
    owner: Rank,
    /// Retransmissions performed so far (0 = first attempt in flight).
    attempt: u32,
    /// The pending retransmit timer (cancelled by the ack).
    timer: EventKey,
}

/// Runtime state of the fault-injection and reliability layer. Boxed
/// behind an `Option` in [`World`]: a fault-free run carries a single
/// `None` and executes exactly the code it did before this layer existed.
struct FaultState {
    plan: FaultPlan,
    /// Loss draws and backoff jitter, seeded from the plan via
    /// [`StreamTag::Faults`] so fault randomness never perturbs noise or
    /// workload streams.
    rng: SmallRng,
    /// Sender-side: un-acked transfers by lane key.
    xfers: FxHashMap<XferKey, Xfer>,
    /// Receiver-side duplicate suppression: lanes already processed once,
    /// with the ack return route and acking rank for re-acking
    /// retransmitted duplicates.
    seen: FxHashMap<XferKey, (Rank, Path)>,
    /// Sender messages whose payload drain already fired SendDone
    /// (retransmit drains must not fire it again).
    done_fired: FxHashSet<MsgId>,
    /// Per-rank stall schedules (`None` = rank never stalls, delegating
    /// straight to the noise model).
    stalls: Vec<Option<Schedule>>,
    /// Payload bytes injected by retransmissions (audit ledger column).
    retrans_bytes: u64,
    /// Per-rank kill instants (`None` = alive). Ground truth of the
    /// failure model; survivors only learn of a death via `detected_at`.
    dead_at: Vec<Option<Time>>,
    /// Cached "some rank has died": the hot paths pay one boolean test
    /// until the first kill actually fires.
    any_dead: bool,
    /// Per-rank detection instants: when the heartbeat failure detector
    /// converged survivors on the rank being dead.
    detected_at: Vec<Option<Time>>,
    /// The agreed failed set in detection order — exactly the slice
    /// `on_peer_failed` hands to survivor programs.
    failed_order: Vec<Rank>,
    /// Whether the ack/retransmit machinery is armed. Any plan that was
    /// expressible before kills existed (loss, outages, stalls,
    /// degradation) keeps it on, preserving those runs bit-for-bit;
    /// kill-only plans leave it off — a dead peer is detected, not
    /// retransmitted to — so an inert kill plan costs ~nothing.
    rel_active: bool,
    /// The plan can kill ranks (cheap gate for the kill bookkeeping).
    kills_enabled: bool,
    /// Payload flows (eager or rendezvous data) actually injected into
    /// the network, tracked only when kills are enabled: the audit uses
    /// it to split failed bytes into launched and never-launched.
    data_injected: FxHashSet<MsgId>,
    /// Sends completed (SendDone) by the failure detector because their
    /// receiver died before the payload launched — a CTS already in
    /// flight at detection time must not start the data after all.
    send_failed: FxHashSet<MsgId>,
}

impl FaultState {
    fn new(plan: FaultPlan, nranks: u32) -> FaultState {
        let rng = MasterSeed(plan.seed).rng(StreamTag::Faults, 0);
        let stalls: Vec<Option<Schedule>> = (0..nranks)
            .map(|r| {
                let s = plan.stalls_for(r);
                if s.is_empty() {
                    None
                } else {
                    Some(s)
                }
            })
            .collect();
        let rel_active = plan.loss > 0.0
            || !plan.down.is_empty()
            || !plan.degrade.is_empty()
            || !plan.stalls.is_empty();
        let kills_enabled = !plan.kills.is_empty() || !plan.node_kills.is_empty();
        FaultState {
            plan,
            rng,
            xfers: FxHashMap::default(),
            seen: FxHashMap::default(),
            done_fired: FxHashSet::default(),
            stalls,
            retrans_bytes: 0,
            dead_at: vec![None; nranks as usize],
            any_dead: false,
            detected_at: vec![None; nranks as usize],
            failed_order: Vec::new(),
            rel_active,
            kills_enabled,
            data_injected: FxHashSet::default(),
            send_failed: FxHashSet::default(),
        }
    }

    /// Heartbeat-detector latency: a rank is declared dead after
    /// `max_retries + 1` silent heartbeat periods of length `rto` — the
    /// same budget the reliability layer grants a lossy lane, so tuning
    /// the RTO moves detection latency linearly.
    fn detect_delay(&self) -> Duration {
        Duration::from_nanos(
            self.plan
                .rel
                .rto
                .as_nanos()
                .saturating_mul(self.plan.rel.max_retries as u64 + 1),
        )
    }

    /// Is either endpoint of the pair dead?
    fn endpoint_dead(&self, a: Rank, b: Rank) -> bool {
        self.dead_at[a as usize].is_some() || self.dead_at[b as usize].is_some()
    }
}

/// Why a run stopped making progress: returned by [`World::try_run`]
/// instead of hanging (or panicking without context). Carries a full
/// per-rank report of what each unfinished rank was blocked on.
#[derive(Debug)]
pub struct StallDiagnosis {
    /// Simulated instant at which the stall was detected.
    pub at: Time,
    /// Ranks that had not finished.
    pub stuck: Vec<Rank>,
    /// `true` when the progress watchdog horizon fired; `false` when the
    /// event queue ran dry with unfinished ranks (classic deadlock).
    pub watchdog_fired: bool,
    /// Human-readable report (starts with `deadlock:`); also what
    /// [`std::fmt::Display`] prints.
    pub detail: String,
    /// Flight-recorder tail (a Chrome-trace fragment of the most recent
    /// spans), when the attached recorder keeps one — the post-mortem
    /// companion to the per-rank stuck report.
    pub flight: Option<String>,
}

impl std::fmt::Display for StallDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Per-rank post-mortem for a run abandoned because of rank failures.
#[derive(Debug)]
pub struct FailureDiagnosis {
    /// Simulated instant at which the run was abandoned.
    pub at: Time,
    /// The failed set: every killed rank, detection order first, then
    /// killed-but-not-yet-detected ranks by id.
    pub failed: Vec<Rank>,
    /// Detection instants for the subset the failure detector agreed on.
    pub detected_at: Vec<(Rank, Time)>,
    /// Surviving ranks that had not finished.
    pub stuck: Vec<Rank>,
    /// Human-readable report (what [`std::fmt::Display`] prints).
    pub detail: String,
    /// Flight-recorder tail, when the attached recorder keeps one.
    pub flight: Option<String>,
}

impl std::fmt::Display for FailureDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.detail)
    }
}

/// Why a run could not complete: returned by [`World::try_run`] instead
/// of panicking. Every variant carries a human-readable `detail` (what
/// `Display` prints) and the flight-recorder tail when the attached
/// recorder keeps one, so no failure mode escapes without a post-mortem.
#[derive(Debug)]
pub enum RunError {
    /// The run stopped making progress with no rank failure to blame:
    /// the event queue ran dry or the progress watchdog fired.
    Stalled(StallDiagnosis),
    /// A reliable transfer lane between two *live* ranks exhausted its
    /// retry budget: the loss/outage schedule is not survivable.
    RetryBudgetExhausted {
        /// The lane's owning (sending) rank.
        rank: Rank,
        /// The lane's remote endpoint.
        peer: Rank,
        /// The message the lane belongs to.
        msg: u64,
        /// Protocol lane within the message (0 = RTS, 1 = CTS, 2 = data).
        lane: u32,
        /// Retransmissions performed before giving up.
        attempts: u32,
        /// Simulated instant of the final expiry.
        at: Time,
        /// Human-readable report (what `Display` prints).
        detail: String,
        /// Flight-recorder tail, when the attached recorder keeps one.
        flight: Option<String>,
    },
    /// Ranks were killed and the survivors could not complete around
    /// them; the diagnosis names the agreed failed set per rank.
    RanksFailed(FailureDiagnosis),
}

impl RunError {
    /// The flight-recorder tail attached to the error, if any.
    pub fn flight(&self) -> Option<&str> {
        match self {
            RunError::Stalled(d) => d.flight.as_deref(),
            RunError::RetryBudgetExhausted { flight, .. } => flight.as_deref(),
            RunError::RanksFailed(d) => d.flight.as_deref(),
        }
    }

    /// Ranks that had not finished when the run was abandoned.
    pub fn stuck(&self) -> &[Rank] {
        match self {
            RunError::Stalled(d) => &d.stuck,
            RunError::RetryBudgetExhausted { .. } => &[],
            RunError::RanksFailed(d) => &d.stuck,
        }
    }

    fn set_flight(&mut self, dump: Option<String>) {
        match self {
            RunError::Stalled(d) => d.flight = dump,
            RunError::RetryBudgetExhausted { flight, .. } => *flight = dump,
            RunError::RanksFailed(d) => d.flight = dump,
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Stalled(d) => d.fmt(f),
            RunError::RetryBudgetExhausted { detail, .. } => f.write_str(detail),
            RunError::RanksFailed(d) => d.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

/// One recorded runtime event (tracing enabled via
/// [`World::enable_trace`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time, nanoseconds.
    pub time_ns: u64,
    /// Rank the event belongs to.
    pub rank: Rank,
    /// Event kind.
    pub kind: TraceKind,
    /// Peer rank (sends/recvs) or 0.
    pub peer: Rank,
    /// Bytes involved (transfers) or nanoseconds (compute) or 0.
    pub amount: u64,
}

/// Kinds of traced runtime events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A send was posted.
    SendPosted,
    /// A send completed (buffer reusable).
    SendDone,
    /// A receive was posted.
    RecvPosted,
    /// A receive completed (data arrived and matched).
    RecvDone,
    /// Blocking compute was posted (`amount` = nanoseconds).
    Compute,
    /// The rank finished its program.
    Finish,
}

impl TraceKind {
    /// Stable lowercase label (CSV column value).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::SendPosted => "send_posted",
            TraceKind::SendDone => "send_done",
            TraceKind::RecvPosted => "recv_posted",
            TraceKind::RecvDone => "recv_done",
            TraceKind::Compute => "compute",
            TraceKind::Finish => "finish",
        }
    }
}

/// Render a trace as CSV (`time_ns,rank,kind,peer,amount`).
pub fn trace_to_csv(trace: &[TraceEvent]) -> String {
    let mut out = String::from("time_ns,rank,kind,peer,amount\n");
    for e in trace {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            e.time_ns,
            e.rank,
            e.kind.label(),
            e.peer,
            e.amount
        ));
    }
    out
}

/// Defines [`WorldStats`] once and derives everything that must agree
/// with the field list: [`WorldStats::FIELD_NAMES`],
/// [`WorldStats::fields`], and the `Display` impl. Adding a counter here
/// automatically adds it to the CLI output and its completeness test.
macro_rules! world_stats {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Aggregate counters for one run.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct WorldStats {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl WorldStats {
            /// Every counter's name, in declaration order.
            pub const FIELD_NAMES: &'static [&'static str] = &[$(stringify!($name)),+];

            /// Iterate `(name, value)` over every counter, in declaration
            /// order.
            pub fn fields(&self) -> impl Iterator<Item = (&'static str, u64)> {
                [$((stringify!($name), self.$name)),+].into_iter()
            }
        }

        impl std::fmt::Display for WorldStats {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                for (name, value) in self.fields() {
                    writeln!(f, "  {name:<20} {value}")?;
                }
                Ok(())
            }
        }
    };
}

world_stats! {
    /// Events processed by the main loop.
    events,
    /// Point-to-point messages initiated.
    messages,
    /// Receives that matched an already-arrived (unexpected) eager message.
    unexpected_matches,
    /// Rendezvous handshakes performed.
    rendezvous,
    /// Payload bytes delivered by the network.
    delivered_bytes,
    /// Network-engine diagnostics: neighbour refresh scans.
    net_refreshes,
    /// Network-engine diagnostics: drain-event reschedules.
    net_reschedules,
    /// Matching-engine diagnostics: queue entries examined while matching
    /// arrivals against posted receives and posted receives against the
    /// unexpected queues. The per-event matching cost of the progress
    /// engine is `match_probes / events` — the complexity claim made by
    /// the matching index is checkable from this number alone.
    match_probes,
    /// Network-engine diagnostics: full path-minimum share recomputations
    /// performed while refreshing flows after a perturbation.
    net_share_recomputes,
    /// Flows lost to injected faults (loss draws and link-down windows).
    drops_injected,
    /// Reliability-layer retransmissions launched after an RTO expiry.
    retransmits,
    /// Acknowledgements that reached a sender and retired its timer.
    acks,
    /// Duplicate deliveries suppressed (and re-acked) at receivers.
    duplicates_suppressed,
    /// Nanoseconds of exponential backoff + jitter added beyond the base
    /// RTO across all retransmissions.
    backoff_time,
    /// Events addressed to already-finished ranks and dropped. The audit
    /// flags these in fault-free runs.
    stray_events,
    /// Conservative LBTS epochs (lookahead-wide windows) the event stream
    /// partitioned into — zero on the default single-queue path. The
    /// average events-per-epoch (`events / par_epochs`) is the work a
    /// parallel executor could run between barriers.
    par_epochs,
    /// Events scheduled from one shard's execution context into another
    /// shard — zero on the default single-queue path. High cross-shard
    /// traffic relative to `events` means the shard boundary cuts through
    /// chatty state.
    cross_shard_events,
    /// Ranks killed by the fault plan (the failure model's ground truth).
    ranks_killed,
    /// Rank failures the heartbeat detector converged on and announced
    /// to survivors.
    failures_detected,
}

/// Outcome of a completed simulation.
pub struct RunResult {
    /// Time at which the last rank finished.
    pub makespan: Duration,
    /// Per-rank finish times.
    pub per_rank_finish: Vec<Time>,
    /// Per-rank pure CPU work performed (overheads, matching, folds,
    /// application compute; noise stretching excluded).
    pub per_rank_busy: Vec<Duration>,
    /// Aggregate counters.
    pub stats: WorldStats,
    /// End-of-run invariant report: byte conservation, causality,
    /// matched completions, and event-queue consistency. A violation
    /// means the simulator (or an algorithm driving it) miscounted —
    /// callers should assert [`AuditReport::is_clean`].
    pub audit: AuditReport,
    /// The rank programs, returned for inspection (downcast with
    /// `as Box<dyn Any>` — `RankProgram` upcasts to `Any`).
    pub programs: Vec<Box<dyn RankProgram>>,
    /// Recorded event timeline (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Full observability record (`None` unless a recorder was attached
    /// via [`World::with_recorder`]).
    pub obs: Option<ObsData>,
    /// Bounded-memory streaming summary (`None` unless the attached
    /// recorder aggregates online, e.g. `StreamRecorder`).
    pub summary: Option<ObsSummary>,
    /// Flight-recorder tail, captured only when the audit is dirty and
    /// the attached recorder keeps a flight ring — the post-mortem for
    /// a run that completed but violated an invariant.
    pub flight: Option<String>,
    /// Health-monitor report (`None` unless a monitor was attached via
    /// [`World::with_monitor`]).
    pub health: Option<HealthReport>,
}

struct QueueSched<'a>(&'a mut Queues);

impl FlowScheduler for QueueSched<'_> {
    fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey {
        self.0.schedule(at, Ev::Net(flow))
    }
    fn cancel(&mut self, key: EventKey) {
        self.0.cancel(key);
    }
}

/// The world's event queue: a single slab-indirect queue by default, or —
/// once [`World::with_threads`]/[`World::with_shards`] activates the
/// parallel core — per-node shard queues merged by the global
/// `(time, seq)` key ([`ShardedQueue`]).
///
/// The merge is *exact*: one global sequence counter across all shards
/// makes the sharded pop order byte-identical to the single queue, so
/// every golden fixture holds at any shard count. The sharded form
/// additionally does the conservative-PDES epoch accounting
/// (`par_epochs`, `cross_shard_events`) that sizes how much work an
/// LBTS-synchronized executor could hand to worker threads per lookahead
/// window. The world's event loop itself always executes the merged
/// stream sequentially: the max-min fair-share network couples all nodes
/// with zero lookahead (any flow launch instantly changes every
/// contending flow's share), so intra-run thread parallelism would break
/// exactness — run-level parallelism lives in the bench harness's
/// [`adapt_sim::WorkerPool`] instead, and positive-lookahead models get
/// [`adapt_sim::ShardSim`].
enum Queues {
    Single(EventQueue<Ev>),
    Sharded(ShardedQueue<Ev>),
}

impl Queues {
    // The event loop runs ~10M events/s on the matching microbenches, so
    // the dispatch below sits on a ~100ns/event hot path: every method is
    // `#[inline]` so the Single arm keeps inlining into `try_run` exactly
    // as the bare `EventQueue` did before the enum existed.
    #[inline]
    fn schedule(&mut self, at: Time, ev: Ev) -> EventKey {
        match self {
            Queues::Single(q) => q.schedule(at, ev),
            Queues::Sharded(q) => q.schedule(at, ev),
        }
    }

    #[inline]
    fn schedule_untracked(&mut self, at: Time, ev: Ev) {
        match self {
            Queues::Single(q) => q.schedule_untracked(at, ev),
            Queues::Sharded(q) => q.schedule_untracked(at, ev),
        }
    }

    #[inline]
    fn cancel(&mut self, key: EventKey) {
        match self {
            Queues::Single(q) => {
                q.cancel(key);
            }
            Queues::Sharded(q) => {
                q.cancel(key);
            }
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Time, Ev)> {
        match self {
            Queues::Single(q) => q.pop(),
            Queues::Sharded(q) => q.pop(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Queues::Single(q) => q.len(),
            Queues::Sharded(q) => q.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn audit(&self) -> adapt_sim::queue::QueueAudit {
        match self {
            Queues::Single(q) => q.audit(),
            Queues::Sharded(q) => q.audit(),
        }
    }

    /// Epoch/cross-shard counters — `None` on the single-queue path.
    fn shard_counters(&self) -> Option<ShardCounters> {
        match self {
            Queues::Single(_) => None,
            Queues::Sharded(q) => Some(q.counters()),
        }
    }
}

/// Operation sink handed to program handlers (implements [`ProgramCtx`]).
struct OpSink<'a> {
    rank: Rank,
    nranks: u32,
    now: Time,
    placement: &'a Placement,
    spec: &'a MachineSpec,
    ops: Vec<Op>,
}

impl ProgramCtx for OpSink<'_> {
    fn rank(&self) -> Rank {
        self.rank
    }
    fn nranks(&self) -> u32 {
        self.nranks
    }
    fn now(&self) -> Time {
        self.now
    }
    fn mem_of(&self, rank: Rank) -> MemSpace {
        self.placement.default_mem(rank)
    }
    fn host_of(&self, rank: Rank) -> MemSpace {
        self.placement.host_mem(rank)
    }
    fn cpu_reduce_cost(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.spec.cpu_reduce_bandwidth)
    }
    fn eager_limit(&self) -> u64 {
        self.spec.eager_limit
    }
    fn post(&mut self, op: Op) {
        self.ops.push(op);
    }
}

/// The simulated job: machine + placement + noise + rank programs.
pub struct World {
    spec: MachineSpec,
    placement: Placement,
    fabric: Fabric,
    net: Network,
    noise: ClusterNoise,
    queue: Queues,
    ranks: Vec<RankState>,
    msgs: FxHashMap<MsgId, Msg>,
    next_msg: MsgId,
    /// Per-flow protocol kind, indexed by the network's slab id (flow ids
    /// are small and reused, so a flat vector beats any hash table here).
    flow_kinds: Vec<Option<FlowKind>>,
    programs: Vec<Option<Box<dyn RankProgram>>>,
    finished: u32,
    stats: WorldStats,
    byte_audit: ByteAudit,
    /// Hard cap on processed events (livelock guard).
    pub max_events: u64,
    /// Asynchronous progress (paper §7 future work): when enabled, each
    /// rank has a dedicated progress thread — completion callbacks and
    /// protocol actions no longer wait for application `compute` to
    /// finish, so non-blocking collectives overlap with computation.
    async_progress: bool,
    /// Recorded events (empty unless tracing is enabled).
    trace: Option<Vec<TraceEvent>>,
    /// Fault-injection and reliability layer (`None` = pristine network,
    /// zero-cost transport exactly as before the layer existed).
    faults: Option<Box<FaultState>>,
    /// A fatal condition raised inside an event handler (handlers cannot
    /// return errors); the main loop checks it after every event.
    run_error: Option<RunError>,
    /// Progress-watchdog horizon: a gap of simulated time between
    /// consecutive events larger than this, while ranks are unfinished,
    /// aborts the run with a [`StallDiagnosis`].
    watchdog: Option<Duration>,
    /// Observability recorder (a no-op [`NullRecorder`] by default).
    /// Stored as [`AnyRecorder`] so enabled probes dispatch statically.
    obs: AnyRecorder,
    /// Cached `obs.enabled()` — every probe site branches on this flag
    /// only, so a disabled recorder costs one predictable branch.
    obs_on: bool,
    /// Reusable link-id buffer for the `flow_start` probe; the recorder
    /// borrows it, so the per-flow path copy never allocates after the
    /// first few flows.
    links_scratch: Vec<u32>,
    /// Cached `ADAPT_TRACE` environment check — `start_send` is hot, and
    /// an environment lookup per send is an easily avoided lock+scan.
    trace_sends: bool,
    /// Online health monitor (`None` = no snapshot timer scheduled, the
    /// event stream is byte-identical to a pre-monitor build).
    monitor: Option<Box<Monitor>>,
    /// Reusable per-link utilization buffer (permille) for snapshots.
    util_scratch: Vec<u32>,
    /// Reusable per-rank snapshot buffers — refilled in one pass over
    /// the rank table so a 10µs monitor cadence stays within the
    /// barometer's 5% overhead gate.
    snap_scratch: SnapScratch,
}

/// Per-rank columns of one monitor snapshot (see [`World::on_snapshot`]).
#[derive(Default)]
struct SnapScratch {
    progress_ns: Vec<u64>,
    finished_at_ns: Vec<Option<u64>>,
    posted: Vec<u32>,
    unexp: Vec<u32>,
}

impl World {
    /// Build a world over an explicit placement.
    pub fn custom(spec: MachineSpec, placement: Placement, noise: ClusterNoise) -> World {
        assert_eq!(
            noise.len(),
            placement.len() as usize,
            "noise model must cover every rank"
        );
        let (fabric, links) = Fabric::build(&spec);
        let nranks = placement.len() as usize;
        World {
            spec,
            placement,
            fabric,
            net: Network::new(links),
            noise,
            queue: Queues::Single(EventQueue::new()),
            ranks: (0..nranks).map(|_| RankState::default()).collect(),
            msgs: FxHashMap::default(),
            next_msg: 0,
            flow_kinds: Vec::new(),
            programs: Vec::new(),
            finished: 0,
            stats: WorldStats::default(),
            byte_audit: ByteAudit::default(),
            max_events: 2_000_000_000,
            async_progress: false,
            trace: None,
            faults: None,
            run_error: None,
            watchdog: None,
            obs: AnyRecorder::Null(NullRecorder),
            obs_on: false,
            links_scratch: Vec::new(),
            trace_sends: std::env::var_os("ADAPT_TRACE").is_some(),
            monitor: None,
            util_scratch: Vec::new(),
            snap_scratch: SnapScratch::default(),
        }
    }

    /// Attach a fault plan: lossy links, down/degradation windows, rank
    /// stalls — with the ack/retransmit reliability layer that recovers
    /// from them. An [inert](FaultPlan::is_inert) plan attaches nothing,
    /// so `--faults` with zero rates is bit-identical to no flag at all.
    pub fn with_faults(mut self, plan: FaultPlan) -> World {
        if !plan.is_inert() {
            let nranks = self.nranks();
            self.faults = Some(Box::new(FaultState::new(plan, nranks)));
        }
        self
    }

    /// Rescale the pristine capacity/latency of every link whose debug
    /// label (e.g. `NicTx(3)`) matches `pred` — a what-if intervention
    /// ("what if the NICs were 2× faster?") applied to a real re-run so
    /// the counterfactual prediction can be validated against ground
    /// truth. Returns the number of links rescaled.
    pub fn prescale_links(
        &mut self,
        cap_factor: f64,
        lat_factor: f64,
        pred: impl Fn(&str) -> bool,
    ) -> usize {
        let matching: Vec<u32> = self
            .net
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| pred(&format!("{:?}", l.class)))
            .map(|(i, _)| i as u32)
            .collect();
        for &l in &matching {
            self.net.prescale_link(l, cap_factor, lat_factor);
        }
        matching.len()
    }

    /// Abort (with a per-rank [`StallDiagnosis`]) instead of hanging when
    /// no event fires for `horizon` of simulated time while ranks are
    /// still unfinished.
    pub fn with_watchdog(mut self, horizon: Duration) -> World {
        self.watchdog = Some(horizon);
        self
    }

    /// Attach an observability recorder (see [`adapt_obs`]): structured
    /// spans, message lifetimes, sampled gauges. Recording must never
    /// move a single event — all probes piggyback on values the
    /// simulation computes anyway (noise window generation is
    /// deterministic and idempotent, so obs-only `finish_work` queries
    /// return what a later call would have returned regardless).
    pub fn with_recorder(mut self, rec: impl Into<AnyRecorder>) -> World {
        let rec = rec.into();
        self.obs_on = rec.enabled();
        self.obs = rec;
        self
    }

    /// Attach an online health monitor (see [`adapt_obs::Monitor`]): a
    /// snapshot timer event rides the deterministic queue every
    /// `monitor.interval_ns()` of simulated time, the detectors run over
    /// consecutive snapshots, and the report lands in
    /// [`RunResult::health`]. Keep a [`adapt_obs::HealthView`] (from
    /// [`Monitor::view`]) to query alerts live, mid-run. Snapshots read
    /// state the simulation maintains anyway and never perturb an event,
    /// so the monitored run's makespan and audit are byte-identical to
    /// the unmonitored run — and the alert stream itself is
    /// thread-count invariant.
    pub fn with_monitor(mut self, monitor: Monitor) -> World {
        self.monitor = Some(Box::new(monitor));
        self
    }

    /// Activate the sharded parallel simulation core (see [`Queues`]):
    /// one event-queue shard per node, merged by the global `(time, seq)`
    /// key, with conservative epoch accounting against the fabric's
    /// minimum cross-node latency as lookahead.
    ///
    /// Results are byte-identical at every `threads` value — including
    /// the per-epoch/cross-shard counters, which are pure functions of
    /// the event stream. Not calling this at all keeps the original
    /// single-queue path, byte-identical to every pre-existing fixture.
    pub fn with_threads(self, threads: usize) -> World {
        assert!(threads >= 1, "at least one thread");
        let shards = (self.spec.shape.nodes as usize).max(1);
        self.with_shards(shards)
    }

    /// Like [`World::with_threads`], but with an explicit shard count
    /// (normally one shard per node) — the seeded
    /// shard-count-≠-thread-count determinism case.
    pub fn with_shards(mut self, shards: usize) -> World {
        assert!(shards >= 1, "at least one shard");
        assert!(
            self.queue.is_empty(),
            "shard the queue before scheduling anything"
        );
        // Conservative lookahead: nothing on one node can affect another
        // node sooner than the cheapest NIC/backbone hop. A single-node
        // fabric has no such hop; any positive bound is then valid for
        // epoch accounting (all shards share the node), so use the
        // control overhead as a floor.
        let lookahead = min_cross_node_latency(self.net.links())
            .filter(|l| !l.is_zero())
            .unwrap_or(CTRL_OVERHEAD);
        // Rank events belong to the node hosting the rank; everything
        // else (network steps, flow launches, timers, fault commands)
        // is globally coupled state owned by shard 0.
        let node_of: Vec<usize> = (0..self.placement.len())
            .map(|r| self.placement.location(r).node as usize)
            .collect();
        self.queue = Queues::Sharded(ShardedQueue::new(
            shards,
            lookahead,
            move |ev: &Ev| match ev {
                Ev::Rank { rank, .. } => node_of[*rank as usize],
                Ev::Net(_)
                | Ev::Launch { .. }
                | Ev::Timer { .. }
                | Ev::FaultCmd { .. }
                | Ev::Kill { .. }
                | Ev::Detect { .. }
                | Ev::Snapshot => 0,
            },
        ));
        self
    }

    /// Record a per-rank event timeline into
    /// [`RunResult::trace`] (off by default — a large job produces
    /// millions of events).
    pub fn enable_trace(mut self) -> World {
        self.trace = Some(Vec::new());
        self
    }

    /// Enable asynchronous progress (a per-rank progress thread): protocol
    /// actions and completion callbacks run concurrently with application
    /// `compute`, which is how the paper's §7 envisions non-blocking
    /// collectives overlapping computation. Noise still preempts both.
    pub fn enable_async_progress(mut self) -> World {
        self.async_progress = true;
        self
    }

    /// CPU job: `nranks` ranks block-placed one per core.
    pub fn cpu(spec: MachineSpec, nranks: u32, noise: ClusterNoise) -> World {
        let placement = Placement::block_cpu(spec.shape, nranks);
        World::custom(spec, placement, noise)
    }

    /// GPU job: `nranks` ranks block-placed one per GPU.
    pub fn gpu(spec: MachineSpec, nranks: u32, noise: ClusterNoise) -> World {
        let placement = Placement::block_gpu(spec.shape, nranks);
        World::custom(spec, placement, noise)
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.placement.len()
    }

    /// The machine description.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Run the given per-rank programs to completion (every rank must
    /// eventually call `finish`). Panics on any [`RunError`] — a deadlock
    /// or unsurvivable fault schedule indicates a broken algorithm or
    /// test setup, which tests want loudly. Fault-tolerant callers (the
    /// CLI, the collectives runner, chaos suites) use [`World::try_run`]
    /// to get the diagnosis as a value instead.
    pub fn run(self, programs: Vec<Box<dyn RankProgram>>) -> RunResult {
        match self.try_run(programs) {
            Ok(r) => r,
            Err(d) => panic!("{d}"),
        }
    }

    /// Like [`World::run`], but a run that cannot complete — deadlock,
    /// watchdog expiry, retry-budget exhaustion between live ranks, or
    /// rank failures the survivors could not absorb — returns a typed
    /// [`RunError`] instead of panicking. No fault plan can panic this
    /// path.
    pub fn try_run(
        mut self,
        programs: Vec<Box<dyn RankProgram>>,
    ) -> Result<RunResult, Box<RunError>> {
        assert_eq!(
            programs.len(),
            self.nranks() as usize,
            "one program per rank"
        );
        self.programs = programs.into_iter().map(Some).collect();
        for r in 0..self.nranks() {
            self.queue.schedule_untracked(
                Time::ZERO,
                Ev::Rank {
                    rank: r,
                    item: RankItem::Start,
                },
            );
        }

        if let Some(fs) = &self.faults {
            // Degradation windows become boundary events: scale every
            // link's capacity/latency at the window start, restore the
            // pristine baseline at the end.
            let nlinks = self.net.links().len() as u32;
            for d in &fs.plan.degrade {
                for link in 0..nlinks {
                    self.queue.schedule_untracked(
                        d.window.0,
                        Ev::FaultCmd {
                            link,
                            cap: d.cap_factor,
                            lat: d.lat_factor,
                        },
                    );
                    self.queue.schedule_untracked(
                        d.window.1,
                        Ev::FaultCmd {
                            link,
                            cap: 1.0,
                            lat: 1.0,
                        },
                    );
                }
            }
            // Targeted degradation (`degradelink=LABEL:FACTOR:WIN`)
            // resolves its label against the links' debug names; labels
            // matching nothing are silently inert, so one plan is
            // reusable across fabrics of different shapes.
            for (label, d) in &fs.plan.degrade_links {
                let matching: Vec<u32> = self
                    .net
                    .links()
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| format!("{:?}", l.class) == *label)
                    .map(|(i, _)| i as u32)
                    .collect();
                for link in matching {
                    self.queue.schedule_untracked(
                        d.window.0,
                        Ev::FaultCmd {
                            link,
                            cap: d.cap_factor,
                            lat: d.lat_factor,
                        },
                    );
                    self.queue.schedule_untracked(
                        d.window.1,
                        Ev::FaultCmd {
                            link,
                            cap: 1.0,
                            lat: 1.0,
                        },
                    );
                }
            }
        }

        // Kills become events; node kills expand against the placement.
        // Out-of-range ranks and nodes are ignored (a plan is written
        // independently of any particular job size).
        let kills: Vec<(Time, Rank)> = match &self.faults {
            Some(fs) if fs.kills_enabled => {
                let mut kills: Vec<(Time, Rank)> = fs
                    .plan
                    .kills
                    .iter()
                    .filter(|&&(r, _)| r < self.placement.len())
                    .map(|&(r, at)| (at, r))
                    .collect();
                for &(node, at) in &fs.plan.node_kills {
                    for r in 0..self.placement.len() {
                        if self.placement.location(r).node == node {
                            kills.push((at, r));
                        }
                    }
                }
                kills.sort_unstable();
                kills
            }
            _ => Vec::new(),
        };
        for (at, rank) in kills {
            self.queue.schedule_untracked(at, Ev::Kill { rank });
        }

        if self.obs_on {
            let labels = self
                .net
                .links()
                .iter()
                .map(|l| format!("{:?}", l.class))
                .collect();
            self.obs.meta(self.nranks(), labels);
            // Pristine link parameters, so a recording is enough to
            // rebuild the network for counterfactual replay.
            let caps = self.net.links().iter().map(|l| l.capacity).collect();
            let lats = self
                .net
                .links()
                .iter()
                .map(|l| l.latency.as_nanos())
                .collect();
            self.obs.link_params(caps, lats);
        }
        if let Some(mut mon) = self.monitor.take() {
            let nranks = self.nranks();
            let labels: Vec<String> = self
                .net
                .links()
                .iter()
                .map(|l| format!("{:?}", l.class))
                .collect();
            self.util_scratch = vec![0; labels.len()];
            mon.meta(nranks, &labels);
            let iv = mon.interval_ns();
            // First snapshot one interval in: at t=0 nothing has run, so
            // a snapshot there would only dilute every detector's window.
            self.queue.schedule_untracked(Time(iv), Ev::Snapshot);
            self.monitor = Some(mon);
        }
        let sample_iv = if self.obs_on {
            self.obs.metrics_interval().unwrap_or(0)
        } else {
            0
        };
        let mut next_sample = 0u64;
        let mut prev_t = Time::ZERO;

        while let Some((t, ev)) = self.queue.pop() {
            if sample_iv > 0 {
                // Gauges sample the state *between* events, on interval
                // boundaries up to the event about to be processed.
                while next_sample <= t.as_nanos() {
                    self.sample_gauges(next_sample);
                    next_sample += sample_iv;
                }
            }
            if let Some(h) = self.watchdog {
                if self.finished < self.nranks() && t.saturating_since(prev_t) > h {
                    let mut diag = self.stall_diagnosis(prev_t, t, true);
                    diag.flight = self.obs.flight_dump();
                    return Err(self.classify(diag));
                }
            }
            // Snapshot timers observe the world but are not progress:
            // if they advanced the watchdog's horizon, any monitored
            // stall shorter-period than the snapshot interval could
            // never be diagnosed.
            if !matches!(ev, Ev::Snapshot) {
                prev_t = t;
            }
            self.stats.events += 1;
            assert!(
                self.stats.events <= self.max_events,
                "event cap exceeded: livelock?"
            );
            match ev {
                Ev::Net(flow) => self.on_net_event(t, flow),
                Ev::Rank { rank, item } => self.rank_step(t, rank, item),
                Ev::Launch { kind, path, bytes } => self.launch_flow(t, kind, path, bytes),
                Ev::Timer { key } => self.on_timer(t, key),
                Ev::FaultCmd { link, cap, lat } => {
                    let mut sched = QueueSched(&mut self.queue);
                    self.net.scale_link(t, link, cap, lat, &mut sched);
                }
                Ev::Kill { rank } => self.on_kill(t, rank),
                Ev::Detect { rank } => self.on_detect(t, rank),
                Ev::Snapshot => self.on_snapshot(t),
            }
            if let Some(mut e) = self.run_error.take() {
                e.set_flight(self.obs.flight_dump());
                return Err(Box::new(e));
            }
            if self.finished == self.nranks() && self.faults.is_none() {
                // With faults active the queue drains fully instead:
                // in-flight retransmissions, acks, and timers must
                // resolve so the audit sees a settled network.
                break;
            }
        }

        if self.finished != self.nranks() {
            let mut diag = self.stall_diagnosis(prev_t, prev_t, false);
            diag.flight = self.obs.flight_dump();
            return Err(self.classify(diag));
        }

        let per_rank_finish: Vec<Time> = self
            .ranks
            .iter()
            .map(|r| r.finished_at.expect("finished rank has a time"))
            .collect();
        let per_rank_busy: Vec<Duration> = self.ranks.iter().map(|r| r.busy_accum).collect();
        let makespan = per_rank_finish
            .iter()
            .copied()
            .max()
            .unwrap_or(Time::ZERO)
            .saturating_since(Time::ZERO);
        self.stats.delivered_bytes = self.net.delivered_bytes();
        if let Some(c) = self.queue.shard_counters() {
            self.stats.par_epochs = c.par_epochs;
            self.stats.cross_shard_events = c.cross_shard_events;
        }
        let net_perf = self.net.perf_counters();
        self.stats.net_refreshes = net_perf.refreshes;
        self.stats.net_reschedules = net_perf.reschedules;
        self.stats.net_share_recomputes = net_perf.share_recomputes;
        let audit = self.build_audit();
        let mut trace = self.trace.take().unwrap_or_default();
        // Ops are recorded at their (possibly future) execution instants in
        // processing order; sort so the timeline reads chronologically.
        trace.sort_by_key(|e| e.time_ns);
        let obs = if self.obs_on {
            let finish_ns: Vec<u64> = per_rank_finish.iter().map(|t| t.as_nanos()).collect();
            // Snapshot per-rank preemption windows for the what-if engine.
            // The noise stream is deterministic and idempotent, so
            // generating past the makespan here cannot perturb anything;
            // the slack lets a slowed-down counterfactual replay keep
            // stretching work beyond the recorded end.
            let horizon = Time(
                makespan
                    .as_nanos()
                    .saturating_mul(2)
                    .saturating_add(200_000_000),
            );
            for r in 0..self.nranks() {
                let noise_w: Vec<(u64, u64)> = self
                    .noise
                    .export_windows(r, horizon)
                    .into_iter()
                    .map(|(s, e)| (s.as_nanos(), e.as_nanos()))
                    .collect();
                let stall_w: Vec<(u64, u64)> = self
                    .faults
                    .as_ref()
                    .and_then(|f| f.stalls[r as usize].as_ref())
                    .map(|s| {
                        s.windows()
                            .iter()
                            .map(|&(s, e)| (s.as_nanos(), e.as_nanos()))
                            .collect()
                    })
                    .unwrap_or_default();
                self.obs.rank_windows(r, noise_w, stall_w);
            }
            self.obs.finish(&finish_ns)
        } else {
            None
        };
        let summary = if self.obs_on {
            self.obs.finish_summary()
        } else {
            None
        };
        // A dirty audit is the completed-run analogue of a stall: dump
        // the flight tail (when one is kept) so the violation comes with
        // its most recent spans.
        let flight = if self.obs_on && !audit.is_clean() {
            self.obs.flight_dump()
        } else {
            None
        };
        Ok(RunResult {
            makespan,
            per_rank_finish,
            per_rank_busy,
            trace,
            audit,
            obs,
            summary,
            flight,
            health: self.monitor.take().map(|m| m.into_report()),
            stats: self.stats,
            programs: self
                .programs
                .into_iter()
                .map(|p| p.expect("program"))
                .collect(),
        })
    }

    /// Assemble the per-rank blocked-on report for a stalled run.
    /// Build the per-rank deadlock report. `since` is the last time any
    /// event fired (the silent gap the watchdog measured runs from
    /// `since` to `at`); a rank counts as stalled if its fault schedule
    /// covers any part of that gap.
    fn stall_diagnosis(&self, since: Time, at: Time, watchdog_fired: bool) -> StallDiagnosis {
        let stuck: Vec<u32> = (0..self.nranks())
            .filter(|&r| self.ranks[r as usize].finished_at.is_none())
            .collect();
        let mut sample: Vec<String> = self
            .msgs
            .iter()
            .take(8)
            .map(|(id, m)| {
                format!(
                    "msg{id}: {}->{} tag={} bytes={} recv_token={:?}",
                    m.src,
                    m.dst,
                    m.tag,
                    m.payload.len(),
                    m.recv_token
                )
            })
            .collect();
        sample.sort();
        let mut detail = format!(
            "deadlock: {} of {} ranks never finished (e.g. ranks {:?}) — {} at t={}ns; \
             posted={}, unexpected_eager={}, unexpected_rts={}, in-flight msgs={}, \
             net flows={}, flow_kinds={}, pending retransmit lanes={}",
            stuck.len(),
            self.nranks(),
            &stuck[..stuck.len().min(8)],
            if watchdog_fired {
                "progress watchdog fired"
            } else {
                "event queue ran dry"
            },
            at.as_nanos(),
            self.ranks.iter().map(|r| r.posted.len()).sum::<usize>(),
            self.ranks
                .iter()
                .map(|r| r.unexp_eager.len())
                .sum::<usize>(),
            self.ranks.iter().map(|r| r.unexp_rts.len()).sum::<usize>(),
            self.msgs.len(),
            self.net.active_flows(),
            self.flow_kinds.iter().flatten().count(),
            self.faults.as_ref().map_or(0, |f| f.xfers.len()),
        );
        for &r in stuck.iter().take(8) {
            let st = &self.ranks[r as usize];
            let stall = self
                .faults
                .as_ref()
                .and_then(|f| f.stalls[r as usize].as_ref());
            detail.push_str(&format!(
                "\n  rank {r}: busy_until={:?} posted={:?} unexp_rts_tags={:?} stalled={}",
                st.busy_until,
                st.posted.entries(),
                st.unexp_rts
                    .ids()
                    .iter()
                    .map(|m| (self.msgs[m].src, self.msgs[m].tag))
                    .collect::<Vec<_>>(),
                stall.is_some_and(|s| {
                    s.active_at(since) || s.next_start_at_or_after(since).is_some_and(|w| w <= at)
                }),
            ));
        }
        if !sample.is_empty() {
            detail.push_str("\n  sample msgs:\n    ");
            detail.push_str(&sample.join("\n    "));
        }
        StallDiagnosis {
            at,
            stuck,
            watchdog_fired,
            detail,
            flight: None,
        }
    }

    /// Turn a stall into the right [`RunError`]: once any rank has been
    /// killed, a run that cannot finish is a rank-failure outcome, not a
    /// plain deadlock — the diagnosis names the agreed failed set and the
    /// survivors still stuck on it.
    fn classify(&self, mut diag: StallDiagnosis) -> Box<RunError> {
        let err = match self.faults.as_deref() {
            Some(fs) if fs.any_dead => {
                let mut failed = fs.failed_order.clone();
                for r in 0..self.nranks() {
                    if fs.dead_at[r as usize].is_some() && !failed.contains(&r) {
                        failed.push(r);
                    }
                }
                let detected_at: Vec<(Rank, Time)> = fs
                    .failed_order
                    .iter()
                    .map(|&r| {
                        (
                            r,
                            fs.detected_at[r as usize].expect("detected rank has a time"),
                        )
                    })
                    .collect();
                let stuck = std::mem::take(&mut diag.stuck);
                let detail = format!(
                    "rank failure: {:?} killed ({} of them detected by t={}ns) and {} \
                     survivor(s) could not complete around them\n{}",
                    failed,
                    detected_at.len(),
                    diag.at.as_nanos(),
                    stuck.len(),
                    diag.detail
                );
                RunError::RanksFailed(FailureDiagnosis {
                    at: diag.at,
                    failed,
                    detected_at,
                    stuck,
                    detail,
                    flight: diag.flight.take(),
                })
            }
            _ => RunError::Stalled(diag),
        };
        Box::new(err)
    }

    // ------------------------------------------------------------------
    // Fault injection and the reliability layer
    // ------------------------------------------------------------------

    /// A `kill=` / `killnode=` instant arrived: stop the rank's progress
    /// engine permanently. Everything already addressed to it is dropped
    /// by the stray-event path; flows launched to or from it after this
    /// instant are doomed at launch. The heartbeat failure detector is
    /// armed to converge survivors on the death one detection delay
    /// later.
    fn on_kill(&mut self, t: Time, rank: Rank) {
        let fs = self.faults.as_mut().expect("kills imply a fault plan");
        if fs.dead_at[rank as usize].is_some() {
            return; // doubly killed (rank kill + node kill)
        }
        fs.dead_at[rank as usize] = Some(t);
        fs.any_dead = true;
        let detect_at = t + fs.detect_delay();
        self.stats.ranks_killed += 1;
        self.queue
            .schedule_untracked(detect_at, Ev::Detect { rank });
        let state = &mut self.ranks[rank as usize];
        if state.finished_at.is_none() {
            // The killed rank's clock stops here. Counting it as finished
            // lets the survivors alone decide when the run is over; the
            // audit accounts its unfinished operations via the failed
            // columns instead of the per-rank completion checks.
            state.finished_at = Some(t);
            self.finished += 1;
        }
    }

    /// The heartbeat detector's timeout for a killed rank expired: the
    /// survivors now agree it is dead (ULFM-style revoke). Complete the
    /// operations that can no longer progress, cancel receives naming the
    /// dead source, and notify every unfinished survivor program.
    fn on_detect(&mut self, t: Time, rank: Rank) {
        let nranks = self.nranks();
        let fs = self.faults.as_mut().expect("detect implies a fault plan");
        if fs.detected_at[rank as usize].is_some() {
            return;
        }
        fs.detected_at[rank as usize] = Some(t);
        fs.failed_order.push(rank);
        self.stats.failures_detected += 1;
        // Pending rendezvous sends whose payload can never launch (the
        // receiver died before answering CTS) complete now: the sender's
        // buffer is reusable, exactly like ULFM completing the request
        // with an error class instead of leaving it forever pending.
        let mut to_complete: Vec<(MsgId, Rank, Token)> = Vec::new();
        for (&m, msg) in &self.msgs {
            if msg.dst == rank
                && msg.payload.len() > self.spec.eager_limit
                && fs.dead_at[msg.src as usize].is_none()
                && !fs.data_injected.contains(&m)
                && fs.send_failed.insert(m)
            {
                to_complete.push((m, msg.src, msg.send_token));
            }
        }
        // Hash-map iteration order is capacity-history dependent; sorting
        // by message id keeps the event schedule deterministic.
        to_complete.sort_unstable_by_key(|&(m, _, _)| m);
        for (m, src, token) in to_complete {
            self.queue.schedule_untracked(
                t,
                Ev::Rank {
                    rank: src,
                    item: RankItem::Deliver {
                        c: Completion::SendDone { token },
                        msg: m,
                    },
                },
            );
        }
        // Cancel survivors' posted receives naming the dead source so
        // they can re-post around it; the matches they were waiting for
        // will never arrive. (Cancelled receives look like the M > N
        // rule's legitimate over-posting to the audit.)
        for r in 0..nranks {
            if r != rank && self.ranks[r as usize].finished_at.is_none() {
                self.ranks[r as usize].posted.remove_src(rank);
            }
        }
        // Revoke notifications run *synchronously*, all against the same
        // snapshot of who is dead and who is still running. Handlers on
        // both sides of a repaired edge (a new parent and an adopted
        // child, say) therefore decide from identical information — a
        // rank that finishes inside this batch was already excluded from
        // `active`, so no survivor commits traffic to a rank that will
        // never consume it.
        let dead: Vec<Rank> = self
            .faults
            .as_ref()
            .expect("detect implies a fault plan")
            .failed_order
            .clone();
        let active: Vec<Rank> = (0..nranks)
            .filter(|&r| self.ranks[r as usize].finished_at.is_none())
            .collect();
        for &r in &active {
            self.run_failure_handler(r, t, &dead, &active);
        }
    }

    /// Deliver the revoke notification to one survivor's program: calls
    /// [`RankProgram::on_peer_failed`] with the agreed failed set and the
    /// snapshot of still-active survivors, then applies whatever recovery
    /// operations it posts.
    fn run_failure_handler(&mut self, rank: Rank, t: Time, dead: &[Rank], active: &[Rank]) {
        let mut prog = self.programs[rank as usize]
            .take()
            .expect("program present");
        let ops = {
            let mut sink = OpSink {
                rank,
                nranks: self.nranks(),
                now: t,
                placement: &self.placement,
                spec: &self.spec,
                ops: Vec::new(),
            };
            prog.on_peer_failed(&mut sink, dead, active);
            sink.ops
        };
        self.programs[rank as usize] = Some(prog);
        self.apply_ops(rank, t, PROGRESS_OVERHEAD, ops, None);
    }

    /// Start the flow an `Ev::Launch` describes. With a fault plan
    /// attached this is also where losses are injected (the launch draws
    /// its fate from the fault RNG) and where reliable lanes arm their
    /// retransmit timer.
    fn launch_flow(&mut self, t: Time, kind: FlowKind, path: Path, bytes: u64) {
        if self.obs_on {
            self.links_scratch.clear();
            self.links_scratch
                .extend(path.as_slice().iter().map(|l| l.0));
        }
        let mut doomed = false;
        if let Some(fs) = self.faults.as_mut() {
            // Local copies never traverse faulty links; empty paths are
            // purely local too.
            let lossable = !matches!(kind, FlowKind::Copy { .. }) && !path.is_empty();
            if lossable {
                if fs.plan.loss > 0.0 {
                    // Per-hop independent loss: the flow survives only if
                    // every link on the path keeps it.
                    let p = 1.0 - (1.0 - fs.plan.loss).powi(path.len() as i32);
                    doomed = fs.rng.random::<f64>() < p;
                }
                doomed |= fs.plan.down.active_at(t);
            }
            if fs.kills_enabled {
                // Payload launches are tracked so the audit can tell
                // "launched then dropped at the dead host" apart from
                // "never launched at all" (a rendezvous whose CTS the
                // dead receiver never sent).
                if let FlowKind::EagerData(m) | FlowKind::RndvData(m) = kind {
                    fs.data_injected.insert(m);
                }
                // A killed host neither sources nor sinks traffic: any
                // protocol flow touching it is doomed — it still spends
                // bandwidth (the packets left the live side) and then
                // drains as dropped. The live sender still observes the
                // drain, so its buffer is released as usual.
                if fs.any_dead {
                    doomed |= match kind {
                        FlowKind::Rts(m)
                        | FlowKind::Cts(m)
                        | FlowKind::EagerData(m)
                        | FlowKind::RndvData(m) => self
                            .msgs
                            .get(&m)
                            .is_some_and(|msg| fs.endpoint_dead(msg.src, msg.dst)),
                        FlowKind::Ack { from, .. } => fs.dead_at[from as usize].is_some(),
                        FlowKind::Copy { .. } => false,
                    };
                }
            }
        }
        if doomed {
            self.stats.drops_injected += 1;
        }
        let mut sched = QueueSched(&mut self.queue);
        let flow = self.net.start_flow_doomed(
            t,
            FlowSpec {
                path,
                bytes,
                tag: 0,
            },
            doomed,
            &mut sched,
        );
        let slot = flow.0 as usize;
        if slot >= self.flow_kinds.len() {
            self.flow_kinds.resize_with(slot + 1, || None);
        }
        self.flow_kinds[slot] = Some(kind);
        if self.obs_on {
            let (class, msg, frank, token) = match kind {
                FlowKind::Rts(m) => (FlowClass::Rts, Some(m), self.flow_sender(kind), 0),
                FlowKind::Cts(m) => (FlowClass::Cts, Some(m), self.flow_sender(kind), 0),
                FlowKind::EagerData(m) => (FlowClass::Eager, Some(m), self.flow_sender(kind), 0),
                FlowKind::RndvData(m) => (FlowClass::Rndv, Some(m), self.flow_sender(kind), 0),
                FlowKind::Copy { rank, token, .. } => (FlowClass::Copy, None, rank, token.0),
                FlowKind::Ack { key, from } => (FlowClass::Ack, Some(key >> 2), from, 0),
            };
            match kind {
                FlowKind::Cts(m) => self.obs.msg_event(m, MsgEvent::CtsLaunch, t.as_nanos()),
                FlowKind::RndvData(m) => self.obs.msg_event(m, MsgEvent::DataLaunch, t.as_nanos()),
                _ => {}
            }
            self.obs.flow_start(
                flow.0 as u32,
                FlowStart {
                    class,
                    msg,
                    rank: frank,
                    token,
                    bytes,
                    t_ns: t.as_nanos(),
                },
                &self.links_scratch,
            );
        }
        // Retransmit lanes exist only when the plan injects transport
        // faults (loss, link-down, degradation or stalls). A kill-only
        // plan leaves the reliability machinery off entirely: no timers,
        // no acks, and therefore no overhead relative to a pristine run.
        if self.faults.as_deref().is_some_and(|f| f.rel_active) {
            if let Some(key) = xfer_key(kind) {
                self.arm_timer(t, key, kind, path, bytes);
            }
        }
    }

    /// Arm (or re-arm) the retransmit timer for lane `key`. The deadline
    /// is two current-contention transfer estimates (out and ack back)
    /// plus the exponentially backed-off RTO with jitter.
    fn arm_timer(&mut self, t: Time, key: XferKey, kind: FlowKind, path: Path, bytes: u64) {
        let owner = self.flow_sender(kind);
        let fs = self.faults.as_mut().expect("faults active");
        let attempt = fs.xfers.get(&key).map_or(0, |x| x.attempt);
        let rto_ns = fs.plan.rel.rto.as_nanos();
        let backoff_ns = rto_ns.saturating_mul(1u64 << attempt.min(20));
        let jmax = (backoff_ns as f64 * fs.plan.rel.jitter_frac) as u64;
        let jitter = if jmax > 0 {
            fs.rng.random_range(0..jmax)
        } else {
            0
        };
        if attempt >= 1 {
            self.stats.backoff_time += backoff_ns.saturating_add(jitter) - rto_ns;
        }
        let est = self.net.estimate_transfer(&path, bytes);
        let deadline = t + est + est + Duration::from_nanos(backoff_ns.saturating_add(jitter));
        let timer = self.queue.schedule(deadline, Ev::Timer { key });
        let fs = self.faults.as_mut().expect("faults active");
        let x = fs.xfers.entry(key).or_insert(Xfer {
            kind,
            path,
            bytes,
            owner,
            attempt: 0,
            timer,
        });
        x.timer = timer;
    }

    /// The rank a protocol flow is attributed to in traces: the sender
    /// of the transfer (the destination for a CTS, the source for
    /// everything else). Falls back to the reliability lane's recorded
    /// owner when the message has already completed — a retransmit whose
    /// ack was lost can fire after the receive retired the message.
    fn flow_sender(&self, kind: FlowKind) -> Rank {
        let (m, is_cts) = match kind {
            FlowKind::Cts(m) => (m, true),
            FlowKind::Rts(m) | FlowKind::EagerData(m) | FlowKind::RndvData(m) => (m, false),
            FlowKind::Copy { .. } | FlowKind::Ack { .. } => {
                unreachable!("copies and acks are not reliability lanes")
            }
        };
        if let Some(msg) = self.msgs.get(&m) {
            return if is_cts { msg.dst } else { msg.src };
        }
        let key = xfer_key(kind).expect("protocol lanes always have a key");
        self.faults
            .as_ref()
            .and_then(|f| f.xfers.get(&key))
            .map(|x| x.owner)
            .expect("a lane for a retired message is still tracked until acked")
    }

    /// A retransmit timer fired: if the lane is still un-acked, relaunch
    /// it (which re-arms the timer with a doubled backoff).
    ///
    /// A lane whose message touches a killed rank is *retired* instead —
    /// retransmitting into a dead host forever would be a storm, and
    /// giving up on it is not an error: the failure detector owns that
    /// outcome. A live↔live lane that exhausts its retry budget raises a
    /// structured [`RunError::RetryBudgetExhausted`]; it never panics.
    fn on_timer(&mut self, t: Time, key: XferKey) {
        let Some(fs) = self.faults.as_mut() else {
            return;
        };
        let Some(x) = fs.xfers.get_mut(&key) else {
            return; // acked while the timer was in flight
        };
        x.attempt += 1;
        let owner = x.owner;
        let attempt = x.attempt;
        let (kind, path, bytes) = (x.kind, x.path, x.bytes);
        let m = key >> 2;
        if fs.any_dead {
            let dead = self
                .msgs
                .get(&m)
                .map(|msg| fs.endpoint_dead(msg.src, msg.dst))
                .unwrap_or_else(|| fs.dead_at[owner as usize].is_some());
            if dead {
                fs.xfers.remove(&key);
                return;
            }
        }
        if attempt > fs.plan.rel.max_retries {
            let max_retries = fs.plan.rel.max_retries;
            let lane = (key & 3) as u32;
            let peer = self
                .msgs
                .get(&m)
                .map(|msg| if msg.src == owner { msg.dst } else { msg.src })
                .unwrap_or(owner);
            let detail = format!(
                "reliability: msg {m} lane {lane} exhausted its retry budget \
                 ({max_retries} retransmissions) between live ranks {owner} \
                 and {peer} — the fault schedule is not survivable"
            );
            fs.xfers.remove(&key);
            self.run_error = Some(RunError::RetryBudgetExhausted {
                rank: owner,
                peer,
                msg: m,
                lane,
                attempts: attempt,
                at: t,
                detail,
                flight: None,
            });
            return;
        }
        fs.retrans_bytes += bytes;
        self.stats.retransmits += 1;
        if self.obs_on {
            self.obs
                .msg_event(key >> 2, MsgEvent::Retransmit, t.as_nanos());
        }
        self.launch_flow(t, kind, path, bytes);
    }

    /// Reliability handling for a delivered flow. Returns `true` when the
    /// delivery was fully consumed here (an ack, or a duplicate of an
    /// already-processed lane) and must not reach the protocol layer.
    fn reliable_delivery(&mut self, t: Time, kind: FlowKind) -> bool {
        if let FlowKind::Ack { key, .. } = kind {
            let fs = self.faults.as_mut().expect("faults active");
            if let Some(x) = fs.xfers.remove(&key) {
                self.queue.cancel(x.timer);
                self.stats.acks += 1;
                if self.obs_on {
                    self.obs.msg_event(key >> 2, MsgEvent::Acked, t.as_nanos());
                }
            }
            return true;
        }
        let Some(key) = xfer_key(kind) else {
            return false; // local copy: not a reliable lane
        };
        let fs = self.faults.as_mut().expect("faults active");
        if let Some(&(from, back)) = fs.seen.get(&key) {
            // Retransmitted duplicate: the lane was already processed
            // (its message may be long gone) — just ack again.
            self.stats.duplicates_suppressed += 1;
            self.queue.schedule_untracked(
                t,
                Ev::Launch {
                    kind: FlowKind::Ack { key, from },
                    path: back,
                    bytes: 0,
                },
            );
            return true;
        }
        // First delivery of this lane: record it and send the ack over
        // the host-to-host reverse route (CTS travels receiver→sender, so
        // its ack flows sender→receiver).
        let m = key >> 2;
        let msg = &self.msgs[&m];
        let from = if key & 3 == LANE_CTS {
            msg.src
        } else {
            msg.dst
        };
        let to = if key & 3 == LANE_CTS {
            msg.dst
        } else {
            msg.src
        };
        let back = self
            .fabric
            .route(self.placement.host_mem(from), self.placement.host_mem(to));
        let fs = self.faults.as_mut().expect("faults active");
        fs.seen.insert(key, (from, back));
        self.queue.schedule_untracked(
            t,
            Ev::Launch {
                kind: FlowKind::Ack { key, from },
                path: back,
                bytes: 0,
            },
        );
        false
    }

    /// Assemble the end-of-run invariant report (see
    /// [`adapt_sim::audit`] for what each check means).
    fn build_audit(&self) -> AuditReport {
        // Triage end-of-run leftovers against the failed set: traffic
        // addressed to or from a killed rank is accounted through the
        // `failed_*` columns; everything between live ranks must still
        // balance exactly as in a fault-free run.
        let mut failed_ranks: Vec<Rank> = Vec::new();
        let mut failed_bytes = 0u64;
        let mut failed_unlaunched = 0u64;
        let unclaimed_live;
        let unexp_live;
        match self.faults.as_deref() {
            Some(fs) if fs.any_dead => {
                for r in 0..self.nranks() {
                    if fs.dead_at[r as usize].is_some() {
                        failed_ranks.push(r);
                    }
                }
                let mut unclaimed = 0u64;
                for (&m, msg) in &self.msgs {
                    if fs.endpoint_dead(msg.src, msg.dst) {
                        failed_bytes += msg.payload.len();
                        if !fs.data_injected.contains(&m) {
                            failed_unlaunched += msg.payload.len();
                        }
                    } else {
                        unclaimed += 1;
                    }
                }
                unclaimed_live = unclaimed;
                // Dead ranks keep whatever unexpected-queue state they had
                // at the kill instant; live ranks may legitimately hold
                // unmatched arrivals from (or addressed around) the dead.
                let mut unexp = 0u64;
                for (r, state) in self.ranks.iter().enumerate() {
                    if fs.dead_at[r].is_some() {
                        continue;
                    }
                    for id in state
                        .unexp_eager
                        .ids()
                        .into_iter()
                        .chain(state.unexp_rts.ids())
                    {
                        let live = self
                            .msgs
                            .get(&id)
                            .is_none_or(|msg| !fs.endpoint_dead(msg.src, msg.dst));
                        if live {
                            unexp += 1;
                        }
                    }
                }
                unexp_live = unexp;
            }
            _ => {
                unclaimed_live = self.msgs.len() as u64;
                unexp_live = self
                    .ranks
                    .iter()
                    .map(|r| (r.unexp_eager.len() + r.unexp_rts.len()) as u64)
                    .sum();
            }
        }
        AuditReport {
            queue: self.queue.audit(),
            send_posted_bytes: self.byte_audit.send_posted,
            recv_completed_bytes: self.byte_audit.recv_completed,
            copy_posted_bytes: self.byte_audit.copy_posted,
            copy_completed_bytes: self.byte_audit.copy_completed,
            net_injected_bytes: self.net.injected_bytes(),
            net_delivered_bytes: self.net.delivered_bytes(),
            net_flows_in_flight: self.net.active_flows(),
            net_dropped_bytes: self.net.dropped_bytes(),
            retrans_injected_bytes: self.faults.as_ref().map_or(0, |f| f.retrans_bytes),
            stray_events: self.stats.stray_events,
            faults_active: self.faults.is_some(),
            per_rank: self.ranks.iter().map(|r| r.audit).collect(),
            unclaimed_messages: unclaimed_live,
            unexpected_leftovers: unexp_live,
            leftover_posted_recvs: self.ranks.iter().map(|r| r.posted.len() as u64).sum(),
            failed_ranks,
            failed_bytes,
            failed_unlaunched_bytes: failed_unlaunched,
            failed_copy_bytes: 0,
        }
    }

    /// Record one round of time-series gauges at `t_ns` (recorder
    /// attached and sampling enabled only).
    fn sample_gauges(&mut self, t_ns: u64) {
        let posted: usize = self.ranks.iter().map(|r| r.posted.len()).sum();
        let unexp: usize = self
            .ranks
            .iter()
            .map(|r| r.unexp_eager.len() + r.unexp_rts.len())
            .sum();
        self.obs
            .gauge(t_ns, GaugeMetric::PostedDepth, 0, posted as f64);
        self.obs
            .gauge(t_ns, GaugeMetric::UnexpectedDepth, 0, unexp as f64);
        self.obs.gauge(
            t_ns,
            GaugeMetric::LiveFlows,
            0,
            self.net.active_flows() as f64,
        );
        self.obs
            .gauge(t_ns, GaugeMetric::EventQueueLen, 0, self.queue.len() as f64);
        // Sharded core only: on the single-queue path these gauges do not
        // exist at all, keeping default metric exports byte-identical.
        if let Some(c) = self.queue.shard_counters() {
            self.obs
                .gauge(t_ns, GaugeMetric::ParEpochs, 0, c.par_epochs as f64);
            self.obs.gauge(
                t_ns,
                GaugeMetric::CrossShardEvents,
                0,
                c.cross_shard_events as f64,
            );
        }
        let obs = &mut self.obs;
        self.net.for_each_link_load(|link, count, util| {
            obs.gauge(t_ns, GaugeMetric::LinkFlows, link, count as f64);
            obs.gauge(t_ns, GaugeMetric::LinkUtil, link, util);
        });
    }

    /// Handle the health-monitor snapshot timer: assemble a
    /// [`SnapshotInput`] from state the simulation maintains anyway, run
    /// the detectors, forward fired alerts to the recorder, and re-arm
    /// the timer one interval out. Re-arming stops once every rank has
    /// finished or the queue has drained — a dead queue must stay dead
    /// so the deadlock diagnosis still fires, and a finished run needs
    /// no further snapshots.
    fn on_snapshot(&mut self, t: Time) {
        let Some(mut mon) = self.monitor.take() else {
            return;
        };
        let snap = &mut self.snap_scratch;
        snap.progress_ns.clear();
        snap.finished_at_ns.clear();
        snap.posted.clear();
        snap.unexp.clear();
        for r in &self.ranks {
            snap.progress_ns.push(r.busy_accum.as_nanos());
            snap.finished_at_ns
                .push(r.finished_at.map(|f| f.as_nanos()));
            snap.posted.push(r.posted.len() as u32);
            snap.unexp
                .push((r.unexp_eager.len() + r.unexp_rts.len()) as u32);
        }
        self.util_scratch.fill(0);
        let util = &mut self.util_scratch;
        self.net.for_each_link_load(|link, _count, u| {
            if let Some(slot) = util.get_mut(link as usize) {
                *slot = (u * 1000.0).round().clamp(0.0, 1000.0) as u32;
            }
        });
        let injected = self.net.injected_bytes();
        let delivered = self.net.delivered_bytes();
        let dropped = self.net.dropped_bytes();
        let input = SnapshotInput {
            t_ns: t.as_nanos(),
            progress_ns: &self.snap_scratch.progress_ns,
            finished_at_ns: &self.snap_scratch.finished_at_ns,
            posted: &self.snap_scratch.posted,
            unexp: &self.snap_scratch.unexp,
            link_util_pm: &self.util_scratch,
            in_flight_bytes: injected.saturating_sub(delivered).saturating_sub(dropped),
            active_flows: self.net.active_flows() as u64,
            delivered_bytes: delivered,
            retransmits: self.stats.retransmits,
            acks: self.stats.acks,
        };
        let alerts = mon.observe(&input);
        if self.obs_on {
            for &a in alerts {
                self.obs.alert(a);
            }
        }
        if self.finished < self.nranks() && !self.queue.is_empty() {
            self.queue
                .schedule_untracked(t + Duration(mon.interval_ns()), Ev::Snapshot);
        }
        self.monitor = Some(mon);
    }

    // ------------------------------------------------------------------
    // Network event dispatch
    // ------------------------------------------------------------------

    fn on_net_event(&mut self, t: Time, flow: FlowId) {
        let mut sched = QueueSched(&mut self.queue);
        let step = self.net.handle_event(t, flow, &mut sched);
        match step {
            NetStep::Progress => {}
            NetStep::Drained { flow, .. } => {
                if self.obs_on {
                    self.obs.flow_drained(flow.0 as u32, t.as_nanos());
                }
                match self.flow_kinds[flow.0 as usize].expect("drain of unknown flow") {
                    FlowKind::EagerData(m) | FlowKind::RndvData(m) => {
                        if let Some(fs) = self.faults.as_mut() {
                            // SendDone fires at the *first* drain only —
                            // the sender's buffer is reusable once the
                            // reliability layer holds the payload, and a
                            // retransmit drain may postdate the message's
                            // removal from the in-flight table. Without
                            // retransmits (kill-only plans) every payload
                            // drains exactly once, so nothing to dedupe.
                            if fs.rel_active && !fs.done_fired.insert(m) {
                                return;
                            }
                        }
                        if self.obs_on {
                            self.obs.msg_event(m, MsgEvent::Drained, t.as_nanos());
                        }
                        let msg = &self.msgs[&m];
                        let (src, token) = (msg.src, msg.send_token);
                        self.queue.schedule_untracked(
                            t,
                            Ev::Rank {
                                rank: src,
                                item: RankItem::Deliver {
                                    c: Completion::SendDone { token },
                                    msg: m,
                                },
                            },
                        );
                    }
                    FlowKind::Copy { .. } => {}
                    FlowKind::Rts(_) | FlowKind::Cts(_) | FlowKind::Ack { .. } => {
                        unreachable!("control flows are zero-byte and never drain")
                    }
                }
            }
            NetStep::Delivered(d) => {
                let kind = self.flow_kinds[d.flow.0 as usize]
                    .take()
                    .expect("delivery of unknown flow");
                if self.faults.as_deref().is_some_and(|f| f.rel_active)
                    && self.reliable_delivery(t, kind)
                {
                    // An ack, or a duplicate of an already-processed
                    // lane: consumed by the reliability layer.
                    if self.obs_on {
                        self.obs.flow_delivered(d.flow.0 as u32, t.as_nanos());
                    }
                    return;
                }
                if self.obs_on {
                    self.obs.flow_delivered(d.flow.0 as u32, t.as_nanos());
                    match kind {
                        FlowKind::Rts(m) => {
                            self.obs.msg_event(m, MsgEvent::RtsArrived, t.as_nanos())
                        }
                        FlowKind::Cts(m) => {
                            self.obs.msg_event(m, MsgEvent::CtsArrived, t.as_nanos())
                        }
                        FlowKind::EagerData(m) | FlowKind::RndvData(m) => {
                            self.obs.msg_event(m, MsgEvent::Delivered, t.as_nanos())
                        }
                        FlowKind::Copy { .. } | FlowKind::Ack { .. } => {}
                    }
                }
                let (rank, item) = match kind {
                    FlowKind::Rts(m) => (self.msgs[&m].dst, RankItem::RtsArrived(m)),
                    FlowKind::Cts(m) => (self.msgs[&m].src, RankItem::CtsArrived(m)),
                    FlowKind::EagerData(m) => (self.msgs[&m].dst, RankItem::EagerArrived(m)),
                    FlowKind::RndvData(m) => (self.msgs[&m].dst, RankItem::RndvDataArrived(m)),
                    FlowKind::Copy { rank, token, bytes } => {
                        self.byte_audit.copy_completed += bytes;
                        (
                            rank,
                            RankItem::Deliver {
                                c: Completion::CopyDone { token },
                                msg: NO_MSG,
                            },
                        )
                    }
                    FlowKind::Ack { .. } => {
                        unreachable!("acks are consumed by the reliability layer")
                    }
                };
                self.queue.schedule_untracked(t, Ev::Rank { rank, item });
            }
            NetStep::Dropped(d) => {
                // An injected fault ate the flow: bandwidth was spent but
                // nothing arrived. No rank event fires — recovery is the
                // sender's retransmit timer.
                let kind = self.flow_kinds[d.flow.0 as usize]
                    .take()
                    .expect("drop of unknown flow");
                if self.obs_on {
                    let m = match kind {
                        FlowKind::Ack { key, .. } => Some(key >> 2),
                        k => xfer_key(k).map(|key| key >> 2),
                    };
                    if let Some(m) = m {
                        self.obs.msg_event(m, MsgEvent::Dropped, t.as_nanos());
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Rank CPU steps (deferred by busy horizon and noise)
    // ------------------------------------------------------------------

    fn rank_step(&mut self, t: Time, rank: Rank, item: RankItem) {
        if self.ranks[rank as usize].finished_at.is_some() {
            // A live rank that finished during failure recovery (its dead
            // peers were masked out of the completion target) may still
            // harvest SendDones for transfers addressed to the dead — a
            // doomed payload's drain, or the detector completing a
            // rendezvous that never got its CTS. The sender's buffer is
            // reusable and the op ledger must balance, so count the
            // completion; the program itself is done and is not re-entered.
            if let RankItem::Deliver {
                c: Completion::SendDone { .. },
                msg,
            } = &item
            {
                let to_dead = self.faults.as_deref().is_some_and(|f| {
                    f.any_dead
                        && f.dead_at[rank as usize].is_none()
                        && self
                            .msgs
                            .get(msg)
                            .is_some_and(|mm| f.endpoint_dead(mm.src, mm.dst))
                });
                if to_dead {
                    self.ranks[rank as usize].audit.sends_completed += 1;
                    return;
                }
            }
            // Stray events after finish are dropped — but counted, so the
            // audit can flag a leaked completion in a fault-free run.
            self.stats.stray_events += 1;
            return;
        }

        // Arrival matching happens at arrival time: "unexpected" means the
        // receive had not been *posted* when the data landed (§2.2.1), not
        // that the CPU was momentarily busy. The CPU-side consequences
        // (CTS, copies, callbacks) still honour the busy horizon and noise.
        match item {
            RankItem::EagerArrived(m) => {
                let (src, tag) = {
                    let msg = &self.msgs[&m];
                    (msg.src, msg.tag)
                };
                let state = &mut self.ranks[rank as usize];
                let (hit, probes) = state.posted.match_arrival(src, tag);
                self.stats.match_probes += probes;
                if let Some(posted) = hit {
                    if self.obs_on {
                        self.obs.msg_event(
                            m,
                            MsgEvent::Matched {
                                posted_ns: Some(posted.posted_at.as_nanos()),
                                unexpected: false,
                            },
                            t.as_nanos(),
                        );
                    }
                    self.complete_recv(t, rank, m, posted.token);
                } else {
                    state.unexp_eager.push(src, tag, m);
                    let e = self.cpu_ready(rank, t);
                    let done = self.bump_busy(rank, e, CTRL_OVERHEAD);
                    if self.obs_on {
                        self.obs.protocol(
                            rank,
                            e.as_nanos(),
                            done.as_nanos(),
                            ProtoKind::Unexpected,
                            m,
                        );
                    }
                }
                return;
            }
            RankItem::RtsArrived(m) => {
                let (src, tag) = {
                    let msg = &self.msgs[&m];
                    (msg.src, msg.tag)
                };
                let state = &mut self.ranks[rank as usize];
                let (hit, probes) = state.posted.match_arrival(src, tag);
                self.stats.match_probes += probes;
                if let Some(posted) = hit {
                    let e = self.cpu_ready(rank, t);
                    if self.obs_on {
                        self.obs.msg_event(
                            m,
                            MsgEvent::Matched {
                                posted_ns: Some(posted.posted_at.as_nanos()),
                                unexpected: false,
                            },
                            e.as_nanos(),
                        );
                    }
                    self.accept_rndv(e, rank, m, posted);
                } else {
                    state.unexp_rts.push(src, tag, m);
                    let e = self.cpu_ready(rank, t);
                    let done = self.bump_busy(rank, e, CTRL_OVERHEAD);
                    if self.obs_on {
                        self.obs.protocol(
                            rank,
                            e.as_nanos(),
                            done.as_nanos(),
                            ProtoKind::Unexpected,
                            m,
                        );
                    }
                }
                return;
            }
            RankItem::RndvDataArrived(m) => {
                let token = self.msgs[&m].recv_token.expect("rendezvous was matched");
                self.complete_recv(t, rank, m, token);
                return;
            }
            _ => {}
        }

        let ready = self.cpu_ready(rank, t);
        if ready > t {
            self.queue
                .schedule_untracked(ready, Ev::Rank { rank, item });
            return;
        }

        match item {
            RankItem::Start => self.run_handler(rank, t, None, NO_MSG),
            RankItem::Deliver { c, msg } => self.run_handler(rank, t, Some(c), msg),
            RankItem::CtsArrived(m) => {
                // A CTS still in flight while the failure detector
                // completed this send (the receiver died) must not launch
                // the data: the send already completed-in-error and the
                // payload is accounted as failed-unlaunched.
                if self
                    .faults
                    .as_deref()
                    .is_some_and(|f| f.send_failed.contains(&m))
                {
                    return;
                }
                // Sender side: launch the data flow.
                let (path, bytes) = {
                    let msg = &self.msgs[&m];
                    let src_core = self.core_of(msg.src);
                    let dst_core = self.core_of(msg.dst);
                    (
                        self.fabric.route_p2p(
                            msg.src_mem,
                            msg.dst_mem,
                            Some(src_core),
                            Some(dst_core),
                        ),
                        msg.payload.len(),
                    )
                };
                let at = self.bump_busy(rank, t, CTRL_OVERHEAD);
                if self.obs_on {
                    self.obs
                        .protocol(rank, t.as_nanos(), at.as_nanos(), ProtoKind::DataLaunch, m);
                }
                self.queue.schedule_untracked(
                    at,
                    Ev::Launch {
                        kind: FlowKind::RndvData(m),
                        path,
                        bytes,
                    },
                );
            }
            RankItem::EagerArrived(_) | RankItem::RtsArrived(_) | RankItem::RndvDataArrived(_) => {
                unreachable!("handled above")
            }
        }
    }

    /// Global core index of a rank (for the per-core copy-engine lanes).
    fn core_of(&self, rank: Rank) -> u32 {
        let loc = self.placement.location(rank);
        self.fabric.global_core(loc.node, loc.socket, loc.core)
    }

    /// First instant at or after `t` at which `rank`'s CPU serving the
    /// progress engine is free and not preempted. With asynchronous
    /// progress the dedicated progress thread's horizon applies; otherwise
    /// the single application CPU must also be past its compute.
    fn cpu_ready(&mut self, rank: Rank, t: Time) -> Time {
        let state = &self.ranks[rank as usize];
        let busy = if self.async_progress {
            state.prog_busy_until
        } else {
            state.busy_until
        };
        self.rank_defer(rank, t.max(busy))
    }

    /// True when the fault plan stalls `rank` at some point.
    fn has_stall(&self, rank: Rank) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.stalls[rank as usize].is_some())
    }

    /// Noise- and stall-aware deferral: the earliest instant at or after
    /// `t` outside both the rank's noise windows and its injected stall
    /// windows. Without a stall schedule this is exactly the noise model's
    /// `defer` — the fault-free path is bit-identical.
    fn rank_defer(&mut self, rank: Rank, t: Time) -> Time {
        if !self.has_stall(rank) {
            return self.noise.defer(rank, t);
        }
        // Fixed point of the two deferrals: each pass can only move
        // forward, and each stall window is crossed at most once.
        let mut cur = t;
        loop {
            let a = self.noise.defer(rank, cur);
            let fs = self.faults.as_ref().expect("stall implies faults");
            let b = fs.stalls[rank as usize]
                .as_ref()
                .expect("has_stall")
                .defer(a);
            if b == a {
                return a;
            }
            cur = b;
        }
    }

    /// Noise- and stall-aware work completion: like the noise model's
    /// `finish_work`, but injected stall windows also preempt the rank.
    fn finish_rank_work(&mut self, rank: Rank, t: Time, work: Duration) -> Time {
        if !self.has_stall(rank) {
            return self.noise.finish_work(rank, t, work);
        }
        let mut cur = t;
        let mut left = work;
        loop {
            cur = self.rank_defer(rank, cur);
            if left.is_zero() {
                return cur;
            }
            let done = self.noise.finish_work(rank, cur, left);
            let next_stall = {
                let fs = self.faults.as_ref().expect("stall implies faults");
                fs.stalls[rank as usize]
                    .as_ref()
                    .expect("has_stall")
                    .next_start_at_or_after(cur)
            };
            match next_stall {
                Some(s) if s < done => {
                    // The stall interrupts: bank the noise-free work done
                    // before it and resume (deferred) at the stall start.
                    let did = self.noise.work_in(rank, cur, s);
                    left = Duration::from_nanos(left.as_nanos().saturating_sub(did.as_nanos()));
                    cur = s;
                }
                _ => return done,
            }
        }
    }

    /// Receiver accepted a rendezvous: record the landing space and send CTS.
    fn accept_rndv(&mut self, t: Time, rank: Rank, m: MsgId, posted: PostedRecv) {
        self.stats.rendezvous += 1;
        let cts_path = {
            let msg = self.msgs.get_mut(&m).expect("msg");
            msg.dst_mem = posted.mem;
            msg.recv_token = Some(posted.token);
            // Control messages travel host-to-host.
            self.fabric.route(
                self.placement.host_mem(msg.dst),
                self.placement.host_mem(msg.src),
            )
        };
        let at = self.bump_busy(rank, t, CTRL_OVERHEAD);
        if self.obs_on {
            self.obs
                .protocol(rank, t.as_nanos(), at.as_nanos(), ProtoKind::CtsSend, m);
        }
        self.queue.schedule_untracked(
            at,
            Ev::Launch {
                kind: FlowKind::Cts(m),
                path: cts_path,
                bytes: 0,
            },
        );
    }

    /// Deliver a RecvDone completion for message `m` to `rank`.
    fn complete_recv(&mut self, t: Time, rank: Rank, m: MsgId, token: Token) {
        let msg = self.msgs.remove(&m).expect("msg");
        if self.obs_on {
            self.obs.msg_event(m, MsgEvent::RecvReady, t.as_nanos());
        }
        self.queue.schedule_untracked(
            t,
            Ev::Rank {
                rank,
                item: RankItem::Deliver {
                    c: Completion::RecvDone {
                        token,
                        src: msg.src,
                        tag: msg.tag,
                        data: msg.payload,
                    },
                    msg: m,
                },
            },
        );
    }

    /// Extend a rank's (progress) busy horizon by `work` starting at `t`;
    /// returns the completion instant.
    fn bump_busy(&mut self, rank: Rank, t: Time, work: Duration) -> Time {
        let done = self.finish_rank_work(rank, t, work);
        let state = &mut self.ranks[rank as usize];
        if self.async_progress {
            state.prog_busy_until = done;
        } else {
            state.busy_until = done;
        }
        state.busy_accum += work;
        done
    }

    // ------------------------------------------------------------------
    // Program handlers and op application
    // ------------------------------------------------------------------

    fn run_handler(
        &mut self,
        rank: Rank,
        t: Time,
        completion: Option<Completion>,
        cause_msg: MsgId,
    ) {
        let trigger = if self.obs_on {
            Some(match &completion {
                None => Trigger::Start,
                Some(Completion::SendDone { .. }) => Trigger::SendDone { msg: cause_msg },
                Some(Completion::RecvDone { .. }) => Trigger::RecvDone { msg: cause_msg },
                Some(Completion::ComputeDone { token }) => Trigger::ComputeDone { token: token.0 },
                Some(Completion::CopyDone { token }) => Trigger::CopyDone { token: token.0 },
                Some(Completion::GpuDone { token }) => Trigger::GpuDone { token: token.0 },
            })
        } else {
            None
        };
        match &completion {
            Some(Completion::SendDone { .. }) => {
                self.ranks[rank as usize].audit.sends_completed += 1;
            }
            Some(Completion::RecvDone { data, .. }) => {
                self.ranks[rank as usize].audit.recvs_completed += 1;
                self.byte_audit.recv_completed += data.len();
            }
            _ => {}
        }
        if self.trace.is_some() {
            match &completion {
                Some(Completion::RecvDone { src, data, .. }) => {
                    self.record(t, rank, TraceKind::RecvDone, *src, data.len());
                }
                Some(Completion::SendDone { .. }) => {
                    self.record(t, rank, TraceKind::SendDone, 0, 0);
                }
                _ => {}
            }
        }
        let base_cost = match &completion {
            Some(Completion::RecvDone { .. }) => self.spec.recv_overhead,
            Some(_) => PROGRESS_OVERHEAD,
            None => PROGRESS_OVERHEAD,
        };
        let mut prog = self.programs[rank as usize]
            .take()
            .expect("program present");
        let ops = {
            let mut sink = OpSink {
                rank,
                nranks: self.nranks(),
                now: t,
                placement: &self.placement,
                spec: &self.spec,
                ops: Vec::new(),
            };
            match completion {
                None => prog.on_start(&mut sink),
                Some(c) => prog.on_completion(&mut sink, c),
            }
            sink.ops
        };
        self.programs[rank as usize] = Some(prog);
        self.apply_ops(rank, t, base_cost, ops, trigger);
    }

    #[inline]
    fn record(&mut self, t: Time, rank: Rank, kind: TraceKind, peer: Rank, amount: u64) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time_ns: t.as_nanos(),
                rank,
                kind,
                peer,
                amount,
            });
        }
    }

    fn apply_ops(
        &mut self,
        rank: Rank,
        t: Time,
        base_cost: Duration,
        ops: Vec<Op>,
        trigger: Option<Trigger>,
    ) {
        let mut cost = base_cost;
        for op in ops {
            match op {
                Op::Isend {
                    dst,
                    tag,
                    payload,
                    token,
                    src_mem,
                } => {
                    cost += self.spec.send_overhead;
                    let at = self.finish_rank_work(rank, t, cost);
                    self.record(at, rank, TraceKind::SendPosted, dst, payload.len());
                    self.start_send(at, rank, dst, tag, payload, token, src_mem);
                }
                Op::Irecv {
                    src,
                    tag,
                    token,
                    dst_mem,
                } => {
                    cost += CTRL_OVERHEAD;
                    let at = self.finish_rank_work(rank, t, cost);
                    self.record(at, rank, TraceKind::RecvPosted, src, 0);
                    self.ranks[rank as usize].audit.recvs_posted += 1;
                    let extra = self.post_recv(at, rank, src, tag, token, dst_mem);
                    cost += extra;
                }
                Op::Compute { work, token } => {
                    if self.async_progress {
                        // Application compute runs on the main thread,
                        // serialized with earlier compute but not with the
                        // progress engine.
                        let posted = self.finish_rank_work(rank, t, cost);
                        let start = posted.max(self.ranks[rank as usize].busy_until);
                        let done = self.finish_rank_work(rank, start, work);
                        let state = &mut self.ranks[rank as usize];
                        state.busy_until = done;
                        state.busy_accum += work;
                        if self.obs_on {
                            self.obs.compute(
                                rank,
                                token.0,
                                start.as_nanos(),
                                done.as_nanos(),
                                false,
                            );
                        }
                        self.queue.schedule_untracked(
                            done,
                            Ev::Rank {
                                rank,
                                item: RankItem::Deliver {
                                    c: Completion::ComputeDone { token },
                                    msg: NO_MSG,
                                },
                            },
                        );
                    } else {
                        // The begin query is observability-only: the noise
                        // window stream is deterministic and idempotent,
                        // so asking early returns the same instant a later
                        // call would.
                        let begin = if self.obs_on {
                            Some(self.finish_rank_work(rank, t, cost))
                        } else {
                            None
                        };
                        cost += work;
                        let at = self.finish_rank_work(rank, t, cost);
                        if let Some(begin) = begin {
                            self.obs
                                .compute(rank, token.0, begin.as_nanos(), at.as_nanos(), false);
                        }
                        self.queue.schedule_untracked(
                            at,
                            Ev::Rank {
                                rank,
                                item: RankItem::Deliver {
                                    c: Completion::ComputeDone { token },
                                    msg: NO_MSG,
                                },
                            },
                        );
                    }
                }
                Op::GpuReduce { bytes, token } => {
                    cost += CTRL_OVERHEAD;
                    let enq = self.finish_rank_work(rank, t, cost);
                    assert!(
                        self.spec.gpu_reduce_bandwidth > 0.0,
                        "gpu_reduce on a machine without GPUs"
                    );
                    let state = &mut self.ranks[rank as usize];
                    let start = state.gpu_stream_busy.max(enq);
                    let done = start
                        + Duration::from_secs_f64(bytes as f64 / self.spec.gpu_reduce_bandwidth);
                    state.gpu_stream_busy = done;
                    if self.obs_on {
                        self.obs
                            .compute(rank, token.0, start.as_nanos(), done.as_nanos(), true);
                    }
                    self.queue.schedule_untracked(
                        done,
                        Ev::Rank {
                            rank,
                            item: RankItem::Deliver {
                                c: Completion::GpuDone { token },
                                msg: NO_MSG,
                            },
                        },
                    );
                }
                Op::Copy {
                    from,
                    to,
                    bytes,
                    token,
                } => {
                    cost += CTRL_OVERHEAD;
                    let at = self.finish_rank_work(rank, t, cost);
                    let path = self.fabric.route(from, to);
                    self.byte_audit.copy_posted += bytes;
                    self.queue.schedule_untracked(
                        at,
                        Ev::Launch {
                            kind: FlowKind::Copy { rank, token, bytes },
                            path,
                            bytes,
                        },
                    );
                }
                Op::Phase { index, begin } => {
                    // A pure observability mark: zero cost, no events, so
                    // posting it cannot move the simulation.
                    if self.obs_on {
                        let at = self.finish_rank_work(rank, t, cost);
                        self.obs.phase(rank, index, begin, at.as_nanos());
                    }
                }
                Op::Finish => {
                    let at = self.finish_rank_work(rank, t, cost);
                    self.record(at, rank, TraceKind::Finish, 0, 0);
                    let state = &mut self.ranks[rank as usize];
                    if state.finished_at.is_none() {
                        state.finished_at = Some(at);
                        self.finished += 1;
                    }
                }
            }
        }
        let done = self.finish_rank_work(rank, t, cost);
        if let Some(trigger) = trigger {
            self.obs
                .dispatch(rank, t.as_nanos(), done.as_nanos(), trigger);
        }
        let state = &mut self.ranks[rank as usize];
        if self.async_progress {
            state.prog_busy_until = state.prog_busy_until.max(done);
        } else {
            state.busy_until = state.busy_until.max(done);
        }
        state.busy_accum += cost;
    }

    #[allow(clippy::too_many_arguments)] // the MPI send signature is what it is
    fn start_send(
        &mut self,
        at: Time,
        src: Rank,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        token: Token,
        src_mem: Option<MemSpace>,
    ) {
        if self.trace_sends {
            eprintln!(
                "[{at:?}] isend {src}->{dst} tag={tag} bytes={}",
                payload.len()
            );
        }
        self.stats.messages += 1;
        self.ranks[src as usize].audit.sends_posted += 1;
        self.byte_audit.send_posted += payload.len();
        let src_mem = src_mem.unwrap_or_else(|| self.placement.default_mem(src));
        let dst_mem = self.placement.default_mem(dst);
        let bytes = payload.len();
        let m = self.next_msg;
        self.next_msg += 1;
        if self.obs_on {
            self.obs.msg_posted(
                m,
                src,
                dst,
                tag,
                bytes,
                bytes <= self.spec.eager_limit,
                at.as_nanos(),
            );
        }
        self.msgs.insert(
            m,
            Msg {
                src,
                dst,
                tag,
                payload,
                send_token: token,
                src_mem,
                dst_mem,
                recv_token: None,
            },
        );
        if bytes <= self.spec.eager_limit {
            // Eager: data goes out now, landing in the receiver's default
            // space.
            let path = self.fabric.route_p2p(
                src_mem,
                dst_mem,
                Some(self.core_of(src)),
                Some(self.core_of(dst)),
            );
            self.queue.schedule_untracked(
                at,
                Ev::Launch {
                    kind: FlowKind::EagerData(m),
                    path,
                    bytes,
                },
            );
            if bytes == 0 {
                // Zero-byte sends complete locally right away.
                self.queue.schedule_untracked(
                    at,
                    Ev::Rank {
                        rank: src,
                        item: RankItem::Deliver {
                            c: Completion::SendDone { token },
                            msg: m,
                        },
                    },
                );
            }
        } else {
            // Rendezvous: RTS control message first.
            let path = self
                .fabric
                .route(self.placement.host_mem(src), self.placement.host_mem(dst));
            self.queue.schedule_untracked(
                at,
                Ev::Launch {
                    kind: FlowKind::Rts(m),
                    path,
                    bytes: 0,
                },
            );
        }
    }

    /// Post a receive at time `at`; returns extra CPU cost incurred by an
    /// unexpected-queue match.
    fn post_recv(
        &mut self,
        at: Time,
        rank: Rank,
        src: Rank,
        tag: Tag,
        token: Token,
        dst_mem: Option<MemSpace>,
    ) -> Duration {
        let mem = dst_mem.unwrap_or_else(|| self.placement.default_mem(rank));
        // Unexpected eager data first (MPI matching order).
        let (hit, probes) = self.ranks[rank as usize].unexp_eager.match_posted(src, tag);
        self.stats.match_probes += probes;
        if let Some(m) = hit {
            self.stats.unexpected_matches += 1;
            if self.obs_on {
                self.obs.msg_event(
                    m,
                    MsgEvent::Matched {
                        posted_ns: Some(at.as_nanos()),
                        unexpected: true,
                    },
                    at.as_nanos(),
                );
            }
            let bytes = self.msgs[&m].payload.len();
            let copy_cost = self.spec.unexpected_overhead
                + Duration::from_secs_f64(bytes as f64 / self.spec.unexpected_copy_bandwidth);
            // RecvDone is scheduled at the post instant; busy-horizon
            // deferral makes it fire after the copy cost elapses.
            let done = self.finish_rank_work(rank, at, copy_cost);
            self.complete_recv(done, rank, m, token);
            return copy_cost;
        }
        // Pending rendezvous next.
        let (hit, probes) = self.ranks[rank as usize].unexp_rts.match_posted(src, tag);
        self.stats.match_probes += probes;
        if let Some(m) = hit {
            if self.obs_on {
                self.obs.msg_event(
                    m,
                    MsgEvent::Matched {
                        posted_ns: Some(at.as_nanos()),
                        unexpected: true,
                    },
                    at.as_nanos(),
                );
            }
            let posted = PostedRecv {
                src,
                tag,
                token,
                mem,
                posted_at: at,
            };
            self.accept_rndv(at, rank, m, posted);
            return CTRL_OVERHEAD;
        }
        self.ranks[rank as usize].posted.push(PostedRecv {
            src,
            tag,
            token,
            mem,
            posted_at: at,
        });
        Duration::ZERO
    }
}
