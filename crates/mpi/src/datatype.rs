//! MPI-style datatypes and predefined reduction operators.
//!
//! Buffers travel as raw bytes; this module gives them element-wise
//! meaning so reduction collectives can be verified numerically (the
//! simulated reduce must equal a sequential fold, whatever the tree,
//! segmentation, or noise).

/// Element type of a typed buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// 64-bit IEEE float.
    F64,
    /// 32-bit IEEE float.
    F32,
    /// 32-bit signed integer.
    I32,
    /// Unsigned byte.
    U8,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            DType::F64 => 8,
            DType::F32 => 4,
            DType::I32 => 4,
            DType::U8 => 1,
        }
    }
}

/// Predefined reduction operators (the MPI_Op subset the paper exercises).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

macro_rules! combine_typed {
    ($ty:ty, $op:expr, $acc:expr, $operand:expr) => {{
        let step = std::mem::size_of::<$ty>();
        assert_eq!(
            $acc.len() % step,
            0,
            "buffer not a whole number of elements"
        );
        for (a, b) in $acc.chunks_exact_mut(step).zip($operand.chunks_exact(step)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(b.try_into().unwrap());
            let r = match $op {
                ReduceOp::Sum => x + y,
                ReduceOp::Prod => x * y,
                ReduceOp::Max => {
                    if y > x {
                        y
                    } else {
                        x
                    }
                }
                ReduceOp::Min => {
                    if y < x {
                        y
                    } else {
                        x
                    }
                }
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

/// `acc[i] = op(acc[i], operand[i])` element-wise over little-endian bytes.
///
/// Panics if the buffers differ in length or are not whole elements.
pub fn combine(op: ReduceOp, dtype: DType, acc: &mut [u8], operand: &[u8]) {
    assert_eq!(acc.len(), operand.len(), "operand length mismatch");
    match dtype {
        DType::F64 => combine_typed!(f64, op, acc, operand),
        DType::F32 => combine_typed!(f32, op, acc, operand),
        DType::I32 => combine_typed!(i32, op, acc, operand),
        DType::U8 => combine_typed!(u8, op, acc, operand),
    }
}

/// Encode a slice of f64 as little-endian bytes (test/workload helper).
pub fn f64_to_bytes(xs: &[f64]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// Decode little-endian bytes into f64s (test/workload helper).
pub fn bytes_to_f64(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_sum() {
        let mut acc = f64_to_bytes(&[1.0, 2.0, 3.0]);
        let operand = f64_to_bytes(&[10.0, 20.0, 30.0]);
        combine(ReduceOp::Sum, DType::F64, &mut acc, &operand);
        assert_eq!(bytes_to_f64(&acc), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn f64_prod_max_min() {
        let base = f64_to_bytes(&[2.0, -1.0]);
        let other = f64_to_bytes(&[3.0, 4.0]);
        let mut p = base.clone();
        combine(ReduceOp::Prod, DType::F64, &mut p, &other);
        assert_eq!(bytes_to_f64(&p), vec![6.0, -4.0]);
        let mut mx = base.clone();
        combine(ReduceOp::Max, DType::F64, &mut mx, &other);
        assert_eq!(bytes_to_f64(&mx), vec![3.0, 4.0]);
        let mut mn = base;
        combine(ReduceOp::Min, DType::F64, &mut mn, &other);
        assert_eq!(bytes_to_f64(&mn), vec![2.0, -1.0]);
    }

    #[test]
    fn i32_and_u8_ops() {
        let mut acc = 5i32.to_le_bytes().to_vec();
        combine(ReduceOp::Sum, DType::I32, &mut acc, &7i32.to_le_bytes());
        assert_eq!(i32::from_le_bytes(acc[..4].try_into().unwrap()), 12);
        let mut acc = vec![200u8, 3];
        combine(ReduceOp::Max, DType::U8, &mut acc, &[100u8, 9]);
        assert_eq!(acc, vec![200, 9]);
    }

    #[test]
    #[should_panic(expected = "operand length mismatch")]
    fn mismatched_lengths_panic() {
        let mut acc = vec![0u8; 8];
        combine(ReduceOp::Sum, DType::F64, &mut acc, &[0u8; 16]);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F64.size(), 8);
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::I32.size(), 4);
        assert_eq!(DType::U8.size(), 1);
    }

    #[test]
    fn combine_is_associative_for_sum() {
        // ((a+b)+c) == (a+(b+c)) for integer data — the property reduce
        // trees rely on.
        let a = [1i32, 2, 3];
        let b = [4i32, 5, 6];
        let c = [7i32, 8, 9];
        let enc = |xs: &[i32]| xs.iter().flat_map(|x| x.to_le_bytes()).collect::<Vec<_>>();
        let mut left = enc(&a);
        combine(ReduceOp::Sum, DType::I32, &mut left, &enc(&b));
        combine(ReduceOp::Sum, DType::I32, &mut left, &enc(&c));
        let mut bc = enc(&b);
        combine(ReduceOp::Sum, DType::I32, &mut bc, &enc(&c));
        let mut right = enc(&a);
        combine(ReduceOp::Sum, DType::I32, &mut right, &bc);
        assert_eq!(left, right);
    }
}
