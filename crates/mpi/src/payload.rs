//! Message payloads.
//!
//! Correctness tests run with real bytes so data movement can be verified
//! end-to-end; benchmark sweeps run with synthetic payloads (length only)
//! so a 4 MB broadcast over 1536 ranks does not allocate gigabytes.

use bytes::Bytes;

/// A message body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Length-only payload for timing studies.
    Synthetic(u64),
    /// Real data; cheap to clone (reference-counted).
    Data(Bytes),
}

impl Payload {
    /// Payload size in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Synthetic(n) => *n,
            Payload::Data(b) => b.len() as u64,
        }
    }

    /// True for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the real bytes, if present.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Synthetic(_) => None,
            Payload::Data(b) => Some(b),
        }
    }

    /// A synthetic stand-in with the same length (used when forwarding
    /// metadata without the data).
    pub fn synthetic_like(&self) -> Payload {
        Payload::Synthetic(self.len())
    }

    /// Slice a sub-range `[off, off+len)` out of the payload, staying
    /// synthetic for synthetic inputs. Used by segmentation.
    pub fn slice(&self, off: u64, len: u64) -> Payload {
        debug_assert!(off + len <= self.len(), "slice out of bounds");
        match self {
            Payload::Synthetic(_) => Payload::Synthetic(len),
            Payload::Data(b) => Payload::Data(b.slice(off as usize..(off + len) as usize)),
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::Data(Bytes::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(Payload::Synthetic(42).len(), 42);
        assert_eq!(Payload::from(vec![1u8, 2, 3]).len(), 3);
        assert!(Payload::Synthetic(0).is_empty());
    }

    #[test]
    fn slicing() {
        let p = Payload::from((0u8..10).collect::<Vec<_>>());
        let s = p.slice(2, 3);
        assert_eq!(s.bytes().unwrap().as_ref(), &[2, 3, 4]);
        let syn = Payload::Synthetic(10).slice(2, 3);
        assert_eq!(syn, Payload::Synthetic(3));
    }

    #[test]
    fn synthetic_like_preserves_length() {
        let p = Payload::from(vec![0u8; 17]);
        assert_eq!(p.synthetic_like(), Payload::Synthetic(17));
    }
}
