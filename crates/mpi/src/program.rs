//! The rank-program interface: how algorithms run on the simulated runtime.
//!
//! A [`RankProgram`] is one rank's state machine. It is started once and
//! then driven purely by [`Completion`] events — the completion of a
//! low-level non-blocking operation *is* the event of the paper's
//! event-driven design, and the program's `on_completion` body is the
//! attached callback (`set_Isend_cb` / `set_Irecv_cb` in the paper's
//! Algorithm 3).
//!
//! Blocking and Waitall-style baselines are expressed in the same
//! interface by simply not posting further work until the completions
//! they "wait" for have arrived — which reproduces exactly the
//! synchronization dependencies §2.1 analyzes.

use crate::payload::Payload;
use adapt_sim::time::{Duration, Time};
use adapt_topology::{MemSpace, Rank};

/// Caller-chosen identifier carried through an operation to its completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Message tag (collectives use one tag per segment/phase).
pub type Tag = u32;

/// Wildcard receive tag: matches any tag from the given source, in arrival
/// order. Pipelined collectives use it so a window of `M` posted receives
/// accepts whichever segments complete first on the sender — exactly how
/// the ADAPT window behaves in Open MPI, and necessary to avoid
/// window-mismatch stalls when segments complete out of order.
pub const ANY_TAG: Tag = u32::MAX;

/// Marker bit of a *range* wildcard (see [`any_tag_in_block`]).
pub const WILDCARD_BIT: Tag = 0x8000_0000;

/// Width of one wildcard block in tag space.
pub const TAG_BLOCK: u32 = 1 << 20;

/// A scoped wildcard: matches any tag in block `block`, i.e. the range
/// `[block * TAG_BLOCK, (block + 1) * TAG_BLOCK)`. Phased compositions use
/// one block per phase so an ADAPT-style wildcard window inside a phase
/// cannot capture another phase's traffic.
pub fn any_tag_in_block(block: u32) -> Tag {
    debug_assert!(block < WILDCARD_BIT / TAG_BLOCK);
    WILDCARD_BIT | block
}

/// Does a posted receive tag accept a message tag?
pub fn tag_matches(posted: Tag, actual: Tag) -> bool {
    if posted == ANY_TAG {
        return true;
    }
    if posted & WILDCARD_BIT != 0 {
        let lo = (posted & !WILDCARD_BIT) * TAG_BLOCK;
        return actual >= lo && actual - lo < TAG_BLOCK;
    }
    posted == actual
}

/// A completion event delivered to a rank program.
#[derive(Clone, Debug)]
pub enum Completion {
    /// An `isend` finished: the send buffer is reusable.
    SendDone {
        /// Token from the originating `isend`.
        token: Token,
    },
    /// An `irecv` matched and its data arrived.
    RecvDone {
        /// Token from the originating `irecv`.
        token: Token,
        /// Sending rank.
        src: Rank,
        /// Message tag.
        tag: Tag,
        /// The received payload.
        data: Payload,
    },
    /// A blocking `compute` finished.
    ComputeDone {
        /// Token from the originating `compute`.
        token: Token,
    },
    /// An asynchronous local copy (e.g. GPU staging DMA) finished.
    CopyDone {
        /// Token from the originating `copy`.
        token: Token,
    },
    /// An asynchronous GPU-stream operation finished.
    GpuDone {
        /// Token from the originating `gpu_reduce`.
        token: Token,
    },
}

impl Completion {
    /// The token of any completion kind.
    pub fn token(&self) -> Token {
        match self {
            Completion::SendDone { token }
            | Completion::RecvDone { token, .. }
            | Completion::ComputeDone { token }
            | Completion::CopyDone { token }
            | Completion::GpuDone { token } => *token,
        }
    }
}

/// Operations a program can request. Posted through a [`ProgramCtx`];
/// applied by the runtime in order, each paying its CPU cost on the rank.
#[derive(Clone, Debug)]
pub enum Op {
    /// Non-blocking send.
    Isend {
        /// Destination rank.
        dst: Rank,
        /// Message tag.
        tag: Tag,
        /// Body.
        payload: Payload,
        /// Completion token.
        token: Token,
        /// Memory the data leaves from (default: the rank's default space).
        src_mem: Option<MemSpace>,
    },
    /// Non-blocking receive.
    Irecv {
        /// Source rank.
        src: Rank,
        /// Message tag.
        tag: Tag,
        /// Completion token.
        token: Token,
        /// Memory the data lands in (default: the rank's default space).
        dst_mem: Option<MemSpace>,
    },
    /// Blocking CPU work (reductions, packing, application compute).
    Compute {
        /// CPU time consumed.
        work: Duration,
        /// Completion token.
        token: Token,
    },
    /// Asynchronous reduction offloaded to the rank's GPU stream (§4.2).
    GpuReduce {
        /// Bytes of result produced.
        bytes: u64,
        /// Completion token.
        token: Token,
    },
    /// Asynchronous DMA copy between memory spaces (e.g. device → host
    /// staging buffer, §4.1).
    Copy {
        /// Source memory space.
        from: MemSpace,
        /// Destination memory space.
        to: MemSpace,
        /// Bytes copied.
        bytes: u64,
        /// Completion token.
        token: Token,
    },
    /// Observability mark: the rank entered (`begin`) or left a
    /// collective phase. Zero cost, schedules nothing — a run behaves
    /// identically whether or not any program posts these.
    Phase {
        /// Phase index within the rank's phase chain.
        index: u32,
        /// Entering (`true`) or leaving (`false`) the phase.
        begin: bool,
    },
    /// The rank is done with the operation being simulated.
    Finish,
}

/// One rank's algorithm.
///
/// The `Any` supertrait lets callers downcast the programs returned in
/// [`RunResult`](crate::world::RunResult) to inspect final state (e.g.
/// verify received buffers).
pub trait RankProgram: std::any::Any {
    /// Called once at simulation start (time 0, subject to the rank's
    /// noise process).
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx);

    /// Called on every completion of an operation this program posted.
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion);

    /// Called once per newly detected failed rank, after the runtime's
    /// failure detector converged on it (ULFM-style revoke notification).
    /// `dead` is the *cumulative* agreed failed set, most recent last.
    /// `active` is the snapshot of survivors still running at the
    /// detection instant, taken once and handed to *every* survivor's
    /// callback in the same batch: both sides of a repaired edge (a new
    /// parent and an adopted child, say) decide from identical
    /// information, so a recovery protocol can commit traffic knowing
    /// the peer made the matching commitment. Never send to a rank
    /// outside `active` — it has already finished and will not consume.
    ///
    /// The default ignores the notification: a program that never posts
    /// to or waits on the dead rank completes untouched, and one that
    /// does will be diagnosed by the runtime as a structured failure
    /// (never a panic). Fault-aware collectives override this to rebuild
    /// their communication structure around the dead rank and complete
    /// among survivors.
    fn on_peer_failed(&mut self, ctx: &mut dyn ProgramCtx, dead: &[Rank], active: &[Rank]) {
        let _ = (ctx, dead, active);
    }
}

/// What a program may do and observe while handling an event. Implemented
/// by the runtime's operation sink; object-safe so programs are plain
/// trait objects.
pub trait ProgramCtx {
    /// This rank's id.
    fn rank(&self) -> Rank;
    /// Number of ranks in the job.
    fn nranks(&self) -> u32;
    /// Current virtual time (the handler's start instant).
    fn now(&self) -> Time;
    /// Default memory space of a rank (device memory for GPU-bound ranks).
    fn mem_of(&self, rank: Rank) -> MemSpace;
    /// Host memory space on a rank's socket.
    fn host_of(&self, rank: Rank) -> MemSpace;
    /// CPU time to reduce `bytes` on the host.
    fn cpu_reduce_cost(&self, bytes: u64) -> Duration;
    /// The machine's eager-protocol size limit.
    fn eager_limit(&self) -> u64;
    /// Queue an operation (applied after the handler returns, in order).
    fn post(&mut self, op: Op);
}

/// Convenience extension methods over [`ProgramCtx`].
impl dyn ProgramCtx + '_ {
    /// Non-blocking send from the rank's default memory.
    pub fn isend(&mut self, dst: Rank, tag: Tag, payload: Payload, token: Token) {
        self.post(Op::Isend {
            dst,
            tag,
            payload,
            token,
            src_mem: None,
        });
    }

    /// Non-blocking send from an explicit memory space.
    pub fn isend_from(
        &mut self,
        src_mem: MemSpace,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        token: Token,
    ) {
        self.post(Op::Isend {
            dst,
            tag,
            payload,
            token,
            src_mem: Some(src_mem),
        });
    }

    /// Non-blocking receive into the rank's default memory.
    pub fn irecv(&mut self, src: Rank, tag: Tag, token: Token) {
        self.post(Op::Irecv {
            src,
            tag,
            token,
            dst_mem: None,
        });
    }

    /// Non-blocking receive into an explicit memory space.
    pub fn irecv_into(&mut self, dst_mem: MemSpace, src: Rank, tag: Tag, token: Token) {
        self.post(Op::Irecv {
            src,
            tag,
            token,
            dst_mem: Some(dst_mem),
        });
    }

    /// Blocking CPU work.
    pub fn compute(&mut self, work: Duration, token: Token) {
        self.post(Op::Compute { work, token });
    }

    /// Blocking CPU reduction of `bytes`.
    pub fn cpu_reduce(&mut self, bytes: u64, token: Token) {
        let work = self.cpu_reduce_cost(bytes);
        self.post(Op::Compute { work, token });
    }

    /// Asynchronous GPU-stream reduction of `bytes`.
    pub fn gpu_reduce(&mut self, bytes: u64, token: Token) {
        self.post(Op::GpuReduce { bytes, token });
    }

    /// Asynchronous DMA copy.
    pub fn copy(&mut self, from: MemSpace, to: MemSpace, bytes: u64, token: Token) {
        self.post(Op::Copy {
            from,
            to,
            bytes,
            token,
        });
    }

    /// Declare this rank finished.
    pub fn finish(&mut self) {
        self.post(Op::Finish);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tags_match_exactly() {
        assert!(tag_matches(5, 5));
        assert!(!tag_matches(5, 6));
    }

    #[test]
    fn any_tag_matches_everything() {
        assert!(tag_matches(ANY_TAG, 0));
        assert!(tag_matches(ANY_TAG, 123_456));
    }

    #[test]
    fn block_wildcards_are_scoped() {
        let w1 = any_tag_in_block(1);
        assert!(tag_matches(w1, TAG_BLOCK));
        assert!(tag_matches(w1, 2 * TAG_BLOCK - 1));
        assert!(!tag_matches(w1, TAG_BLOCK - 1));
        assert!(!tag_matches(w1, 2 * TAG_BLOCK));
        let w0 = any_tag_in_block(0);
        assert!(tag_matches(w0, 0));
        assert!(!tag_matches(w0, TAG_BLOCK));
    }

    #[test]
    fn completion_token_accessor() {
        let c = Completion::SendDone { token: Token(9) };
        assert_eq!(c.token(), Token(9));
        let c = Completion::GpuDone { token: Token(4) };
        assert_eq!(c.token(), Token(4));
    }
}
