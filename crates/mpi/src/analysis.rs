//! Post-run analysis over recorded traces and run results.

use crate::world::{RunResult, TraceEvent, TraceKind};
use adapt_sim::time::Duration;

/// Bytes moved rank → rank, from a recorded trace (based on completed
/// receives, i.e. bytes that actually arrived).
pub fn comm_matrix(trace: &[TraceEvent], nranks: u32) -> Vec<Vec<u64>> {
    let n = nranks as usize;
    let mut m = vec![vec![0u64; n]; n];
    for e in trace {
        if e.kind == TraceKind::RecvDone {
            m[e.peer as usize][e.rank as usize] += e.amount;
        }
    }
    m
}

/// Wall-clock attribution for one rank over a whole run.
///
/// `active` is pure CPU work on the simulated clock (noise stretching
/// excluded) and is always available. The dispatch/protocol split
/// (`callbacks` / `progressing`, both wall-clock, noise included) needs
/// span data — a run recorded through
/// [`World::with_recorder`](crate::World::with_recorder); without it both
/// fall back to the active/blocked split.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankPhases {
    /// When the rank finished, as a duration since time zero.
    pub finish: Duration,
    /// Pure CPU work performed (overheads, matching, folds, compute).
    pub active: Duration,
    /// Wall-clock spent inside program handler dispatches (completion
    /// callbacks plus the operation costs they posted).
    pub callbacks: Duration,
    /// Wall-clock spent in progress-engine protocol actions (CTS sends,
    /// rendezvous data launches, unexpected-queue bookkeeping).
    pub progressing: Duration,
    /// The rest of the rank's lifetime: blocked waiting on the network,
    /// on peers, or preempted by noise.
    pub blocked: Duration,
}

/// Break each rank's lifetime into blocked-waiting vs progressing vs
/// callback time. With observability data attached the split comes from
/// recorded spans; otherwise `callbacks` falls back to the `active`
/// counter and `progressing` is zero.
pub fn phase_breakdown(result: &RunResult) -> Vec<RankPhases> {
    let n = result.per_rank_finish.len();
    let mut out = Vec::with_capacity(n);
    for r in 0..n {
        let finish_ns = result.per_rank_finish[r]
            .saturating_since(adapt_sim::time::Time::ZERO)
            .0;
        let active = result.per_rank_busy[r];
        let (callbacks_ns, progressing_ns) = match &result.obs {
            Some(obs) => (
                obs.dispatches
                    .iter()
                    .filter(|d| d.rank as usize == r)
                    .map(|d| d.end_ns - d.begin_ns)
                    .sum::<u64>(),
                obs.protocols
                    .iter()
                    .filter(|p| p.rank as usize == r)
                    .map(|p| p.end_ns - p.begin_ns)
                    .sum::<u64>(),
            ),
            None => (active.0, 0),
        };
        out.push(RankPhases {
            finish: Duration(finish_ns),
            active,
            callbacks: Duration(callbacks_ns),
            progressing: Duration(progressing_ns),
            blocked: Duration(finish_ns.saturating_sub(callbacks_ns + progressing_ns)),
        });
    }
    out
}

/// Per-rank CPU utilization: pure work divided by the run's makespan.
/// A thin view over [`phase_breakdown`]'s `active` column.
pub fn busy_fractions(result: &RunResult) -> Vec<f64> {
    let total = result.makespan.as_secs_f64();
    let phases = phase_breakdown(result);
    if total <= 0.0 {
        return vec![0.0; phases.len()];
    }
    phases
        .iter()
        .map(|p| p.active.as_secs_f64() / total)
        .collect()
}

/// Count trace events per kind, in a fixed order.
pub fn event_counts(trace: &[TraceEvent]) -> Vec<(TraceKind, usize)> {
    let kinds = [
        TraceKind::SendPosted,
        TraceKind::SendDone,
        TraceKind::RecvPosted,
        TraceKind::RecvDone,
        TraceKind::Compute,
        TraceKind::Finish,
    ];
    kinds
        .iter()
        .map(|&k| (k, trace.iter().filter(|e| e.kind == k).count()))
        .collect()
}

/// Idle tail per rank: how long each rank waited between its own finish
/// and the slowest rank's finish — the skew a synchronizing caller would
/// observe.
pub fn finish_skew(result: &RunResult) -> Vec<Duration> {
    let last = result
        .per_rank_finish
        .iter()
        .copied()
        .max()
        .unwrap_or(adapt_sim::time::Time::ZERO);
    result
        .per_rank_finish
        .iter()
        .map(|&t| last.saturating_since(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::TraceEvent;

    fn ev(kind: TraceKind, rank: u32, peer: u32, amount: u64) -> TraceEvent {
        TraceEvent {
            time_ns: 0,
            rank,
            kind,
            peer,
            amount,
        }
    }

    #[test]
    fn comm_matrix_accumulates_by_sender() {
        let trace = vec![
            ev(TraceKind::RecvDone, 1, 0, 100),
            ev(TraceKind::RecvDone, 1, 0, 50),
            ev(TraceKind::RecvDone, 2, 1, 25),
            ev(TraceKind::SendPosted, 0, 1, 999), // ignored
        ];
        let m = comm_matrix(&trace, 3);
        assert_eq!(m[0][1], 150);
        assert_eq!(m[1][2], 25);
        assert_eq!(m[0][2], 0);
    }

    #[test]
    fn event_counts_cover_kinds() {
        let trace = vec![
            ev(TraceKind::SendPosted, 0, 1, 8),
            ev(TraceKind::SendDone, 0, 0, 0),
            ev(TraceKind::Finish, 0, 0, 0),
            ev(TraceKind::Finish, 1, 0, 0),
        ];
        let counts = event_counts(&trace);
        assert!(counts.contains(&(TraceKind::SendPosted, 1)));
        assert!(counts.contains(&(TraceKind::Finish, 2)));
        assert!(counts.contains(&(TraceKind::RecvDone, 0)));
    }

    /// A RunResult with the given per-rank finish and busy times (µs);
    /// makespan is the latest finish.
    fn result(finish_us: &[u64], busy_us: &[u64]) -> RunResult {
        use adapt_sim::time::Time;
        RunResult {
            makespan: Duration::from_micros(finish_us.iter().copied().max().unwrap_or(0)),
            per_rank_finish: finish_us
                .iter()
                .map(|&u| Time::ZERO + Duration::from_micros(u))
                .collect(),
            per_rank_busy: busy_us.iter().map(|&u| Duration::from_micros(u)).collect(),
            stats: Default::default(),
            audit: Default::default(),
            programs: Vec::new(),
            trace: Vec::new(),
            obs: None,
            summary: None,
            flight: None,
            health: None,
        }
    }

    #[test]
    fn busy_fractions_divide_work_by_makespan() {
        let r = result(&[100, 100], &[50, 25]);
        let f = busy_fractions(&r);
        assert!((f[0] - 0.5).abs() < 1e-12, "{f:?}");
        assert!((f[1] - 0.25).abs() < 1e-12, "{f:?}");
    }

    #[test]
    fn busy_fractions_of_empty_run_are_zero() {
        let r = result(&[0, 0, 0], &[0, 0, 0]);
        assert_eq!(busy_fractions(&r), vec![0.0; 3]);
    }

    #[test]
    fn phase_breakdown_without_spans_falls_back_to_active() {
        let r = result(&[100, 100], &[50, 25]);
        let p = phase_breakdown(&r);
        assert_eq!(p[0].callbacks, Duration::from_micros(50));
        assert_eq!(p[0].progressing, Duration::ZERO);
        assert_eq!(p[0].blocked, Duration::from_micros(50));
        assert_eq!(p[1].blocked, Duration::from_micros(75));
    }

    #[test]
    fn phase_breakdown_uses_recorded_spans_when_present() {
        use adapt_obs::{DispatchSpan, ObsData, ProtoKind, ProtoSpan, Trigger};
        let mut r = result(&[100], &[50]);
        let mut obs = ObsData {
            nranks: 1,
            ..ObsData::default()
        };
        obs.dispatches.push(DispatchSpan {
            rank: 0,
            begin_ns: 0,
            end_ns: 40_000,
            trigger: Trigger::Start,
        });
        obs.protocols.push(ProtoSpan {
            rank: 0,
            begin_ns: 50_000,
            end_ns: 80_000,
            kind: ProtoKind::CtsSend,
            msg: 0,
        });
        r.obs = Some(obs);
        let p = phase_breakdown(&r);
        assert_eq!(p[0].callbacks, Duration::from_micros(40));
        assert_eq!(p[0].progressing, Duration::from_micros(30));
        assert_eq!(p[0].blocked, Duration::from_micros(30));
        // busy_fractions stays the active/makespan ratio regardless.
        assert!((busy_fractions(&r)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finish_skew_measures_idle_tail_behind_slowest_rank() {
        let r = result(&[100, 70, 40], &[0, 0, 0]);
        assert_eq!(
            finish_skew(&r),
            vec![
                Duration::ZERO,
                Duration::from_micros(30),
                Duration::from_micros(60),
            ]
        );
    }

    #[test]
    fn finish_skew_of_empty_result_is_empty() {
        let r = result(&[], &[]);
        assert!(finish_skew(&r).is_empty());
    }

    #[test]
    fn trace_to_csv_renders_header_and_rows() {
        let mut a = ev(TraceKind::SendPosted, 0, 1, 4096);
        a.time_ns = 1500;
        let mut b = ev(TraceKind::RecvDone, 1, 0, 4096);
        b.time_ns = 2500;
        let csv = crate::world::trace_to_csv(&[a, b]);
        assert_eq!(
            csv,
            "time_ns,rank,kind,peer,amount\n\
             1500,0,send_posted,1,4096\n\
             2500,1,recv_done,0,4096\n"
        );
    }

    #[test]
    fn trace_to_csv_of_empty_trace_is_just_the_header() {
        assert_eq!(
            crate::world::trace_to_csv(&[]),
            "time_ns,rank,kind,peer,amount\n"
        );
    }
}
