//! Post-run analysis over recorded traces and run results.

use crate::world::{RunResult, TraceEvent, TraceKind};
use adapt_sim::time::Duration;

/// Bytes moved rank → rank, from a recorded trace (based on completed
/// receives, i.e. bytes that actually arrived).
pub fn comm_matrix(trace: &[TraceEvent], nranks: u32) -> Vec<Vec<u64>> {
    let n = nranks as usize;
    let mut m = vec![vec![0u64; n]; n];
    for e in trace {
        if e.kind == TraceKind::RecvDone {
            m[e.peer as usize][e.rank as usize] += e.amount;
        }
    }
    m
}

/// Per-rank CPU utilization: pure work divided by the run's makespan.
pub fn busy_fractions(result: &RunResult) -> Vec<f64> {
    let total = result.makespan.as_secs_f64();
    if total <= 0.0 {
        return vec![0.0; result.per_rank_busy.len()];
    }
    result
        .per_rank_busy
        .iter()
        .map(|b| b.as_secs_f64() / total)
        .collect()
}

/// Count trace events per kind, in a fixed order.
pub fn event_counts(trace: &[TraceEvent]) -> Vec<(TraceKind, usize)> {
    let kinds = [
        TraceKind::SendPosted,
        TraceKind::SendDone,
        TraceKind::RecvPosted,
        TraceKind::RecvDone,
        TraceKind::Compute,
        TraceKind::Finish,
    ];
    kinds
        .iter()
        .map(|&k| (k, trace.iter().filter(|e| e.kind == k).count()))
        .collect()
}

/// Idle tail per rank: how long each rank waited between its own finish
/// and the slowest rank's finish — the skew a synchronizing caller would
/// observe.
pub fn finish_skew(result: &RunResult) -> Vec<Duration> {
    let last = result
        .per_rank_finish
        .iter()
        .copied()
        .max()
        .unwrap_or(adapt_sim::time::Time::ZERO);
    result
        .per_rank_finish
        .iter()
        .map(|&t| last.saturating_since(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::TraceEvent;

    fn ev(kind: TraceKind, rank: u32, peer: u32, amount: u64) -> TraceEvent {
        TraceEvent {
            time_ns: 0,
            rank,
            kind,
            peer,
            amount,
        }
    }

    #[test]
    fn comm_matrix_accumulates_by_sender() {
        let trace = vec![
            ev(TraceKind::RecvDone, 1, 0, 100),
            ev(TraceKind::RecvDone, 1, 0, 50),
            ev(TraceKind::RecvDone, 2, 1, 25),
            ev(TraceKind::SendPosted, 0, 1, 999), // ignored
        ];
        let m = comm_matrix(&trace, 3);
        assert_eq!(m[0][1], 150);
        assert_eq!(m[1][2], 25);
        assert_eq!(m[0][2], 0);
    }

    #[test]
    fn event_counts_cover_kinds() {
        let trace = vec![
            ev(TraceKind::SendPosted, 0, 1, 8),
            ev(TraceKind::SendDone, 0, 0, 0),
            ev(TraceKind::Finish, 0, 0, 0),
            ev(TraceKind::Finish, 1, 0, 0),
        ];
        let counts = event_counts(&trace);
        assert!(counts.contains(&(TraceKind::SendPosted, 1)));
        assert!(counts.contains(&(TraceKind::Finish, 2)));
        assert!(counts.contains(&(TraceKind::RecvDone, 0)));
    }
}
