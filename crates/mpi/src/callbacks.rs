//! The paper's literal callback API: `Isend`/`Irecv` with an attached
//! closure (`set_Isend_cb` / `set_Irecv_cb`, Algorithm 3), as sugar over
//! [`RankProgram`].
//!
//! Each posted operation carries a single-shot closure that runs when the
//! operation completes; the closure can post further operations with their
//! own callbacks — the "completion unfolds the next data movements" model
//! of §2.2. The structured collectives in `adapt-core` use explicit state
//! machines for testability; this module exists for small experiments and
//! for fidelity to the paper's programming interface.
//!
//! ```
//! use adapt_mpi::callbacks::{CallbackProgram, Cb};
//! use adapt_mpi::{Payload, RankProgram, World};
//! use adapt_noise::ClusterNoise;
//! use adapt_topology::profiles;
//!
//! // A 2-rank ping-pong written in callback style.
//! let ping = CallbackProgram::new(|cb: &mut Cb| {
//!     cb.isend_cb(1, 0, Payload::Synthetic(1024), |cb, _done| {
//!         cb.irecv_cb(1, 1, |cb, _pong| cb.finish());
//!     });
//! });
//! let pong = CallbackProgram::new(|cb: &mut Cb| {
//!     cb.irecv_cb(0, 0, |cb, _ping| {
//!         cb.isend_cb(0, 1, Payload::Synthetic(1024), |cb, _done| cb.finish());
//!     });
//! });
//! let world = World::cpu(profiles::minicluster(1, 1, 2), 2, ClusterNoise::silent(2));
//! let result = world.run(vec![Box::new(ping), Box::new(pong)]);
//! assert!(result.makespan.as_nanos() > 0);
//! ```

use crate::payload::Payload;
use crate::program::{Completion, ProgramCtx, RankProgram, Tag, Token};
use adapt_sim::fxhash::FxHashMap;
use adapt_sim::time::Duration;
use adapt_topology::Rank;

/// A single-shot completion callback.
type Handler = Box<dyn FnMut(&mut Cb<'_, '_>, Completion)>;

/// The callback-posting context handed to every closure.
pub struct Cb<'a, 'b> {
    ctx: &'a mut (dyn ProgramCtx + 'b),
    newly_attached: Vec<(u64, Handler)>,
    next_token: &'a mut u64,
}

impl Cb<'_, '_> {
    fn attach(&mut self, handler: Handler) -> Token {
        let id = *self.next_token;
        *self.next_token += 1;
        self.newly_attached.push((id, handler));
        Token(id)
    }

    /// `Isend` + `set_Isend_cb`: non-blocking send whose completion runs
    /// `cb`.
    pub fn isend_cb(
        &mut self,
        dst: Rank,
        tag: Tag,
        payload: Payload,
        cb: impl FnMut(&mut Cb<'_, '_>, Completion) + 'static,
    ) {
        let token = self.attach(Box::new(cb));
        self.ctx.isend(dst, tag, payload, token);
    }

    /// `Irecv` + `set_Irecv_cb`: non-blocking receive whose completion runs
    /// `cb` (the received payload arrives in the [`Completion`]).
    pub fn irecv_cb(
        &mut self,
        src: Rank,
        tag: Tag,
        cb: impl FnMut(&mut Cb<'_, '_>, Completion) + 'static,
    ) {
        let token = self.attach(Box::new(cb));
        self.ctx.irecv(src, tag, token);
    }

    /// Blocking CPU work whose completion runs `cb`.
    pub fn compute_cb(
        &mut self,
        work: Duration,
        cb: impl FnMut(&mut Cb<'_, '_>, Completion) + 'static,
    ) {
        let token = self.attach(Box::new(cb));
        self.ctx.compute(work, token);
    }

    /// Declare this rank finished.
    pub fn finish(&mut self) {
        self.ctx.finish();
    }

    /// The underlying context (rank id, time, memory spaces...).
    pub fn ctx(&mut self) -> &mut dyn ProgramCtx {
        self.ctx
    }
}

/// The program's start closure.
type StartFn = Box<dyn FnOnce(&mut Cb<'_, '_>)>;

/// A rank program assembled from closures (see module docs).
pub struct CallbackProgram {
    start: Option<StartFn>,
    handlers: FxHashMap<u64, Handler>,
    next_token: u64,
}

impl CallbackProgram {
    /// Create a program whose body starts with `start`.
    pub fn new(start: impl FnOnce(&mut Cb<'_, '_>) + 'static) -> CallbackProgram {
        CallbackProgram {
            start: Some(Box::new(start)),
            handlers: FxHashMap::default(),
            next_token: 0,
        }
    }

    fn drive(&mut self, ctx: &mut dyn ProgramCtx, run: impl FnOnce(&mut Cb<'_, '_>)) {
        let attached = {
            let mut cb = Cb {
                ctx,
                newly_attached: Vec::new(),
                next_token: &mut self.next_token,
            };
            run(&mut cb);
            cb.newly_attached
        };
        for (id, h) in attached {
            self.handlers.insert(id, h);
        }
    }
}

impl RankProgram for CallbackProgram {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        let start = self.start.take().expect("started once");
        self.drive(ctx, |cb| start(cb));
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        let token = completion.token();
        let mut handler = self
            .handlers
            .remove(&token.0)
            .expect("completion for unknown callback");
        self.drive(ctx, |cb| handler(cb, completion));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn algorithm3_pipelined_sends() {
        // The paper's Algorithm 3 at the root: keep N sends in flight; each
        // completion posts the next available segment.
        const NSEG: u64 = 16;
        const WINDOW: u64 = 4;

        fn pump(cb: &mut Cb<'_, '_>, sent: Rc<Cell<u64>>, done: Rc<Cell<u64>>) {
            let seg = sent.get();
            if seg >= NSEG {
                if done.get() == NSEG {
                    cb.finish();
                }
                return;
            }
            sent.set(seg + 1);
            let (sent2, done2) = (sent.clone(), done.clone());
            cb.isend_cb(
                1,
                seg as u32,
                Payload::Synthetic(32 * 1024),
                move |cb, _| {
                    done2.set(done2.get() + 1);
                    pump(cb, sent2.clone(), done2.clone());
                },
            );
        }

        let sent = Rc::new(Cell::new(0u64));
        let done = Rc::new(Cell::new(0u64));
        let (s2, d2) = (sent.clone(), done.clone());
        let root = CallbackProgram::new(move |cb| {
            for _ in 0..WINDOW {
                pump(cb, s2.clone(), d2.clone());
            }
        });

        struct Sink {
            got: u64,
        }
        impl RankProgram for Sink {
            fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
                for seg in 0..NSEG {
                    ctx.irecv(0, seg as u32, Token(seg));
                }
            }
            fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, _c: Completion) {
                self.got += 1;
                if self.got == NSEG {
                    ctx.finish();
                }
            }
        }

        let world = World::cpu(profiles::minicluster(1, 1, 2), 2, ClusterNoise::silent(2));
        let res = world.run(vec![Box::new(root), Box::new(Sink { got: 0 })]);
        assert_eq!(res.stats.messages, NSEG);
        assert_eq!(done.get(), NSEG);
    }

    #[test]
    fn compute_callback_chain() {
        let order = Rc::new(std::cell::RefCell::new(Vec::new()));
        let o = order.clone();
        let prog = CallbackProgram::new(move |cb| {
            let o2 = o.clone();
            cb.compute_cb(Duration::from_micros(10), move |cb, _| {
                o2.borrow_mut().push(1);
                let o3 = o2.clone();
                cb.compute_cb(Duration::from_micros(10), move |cb, _| {
                    o3.borrow_mut().push(2);
                    cb.finish();
                });
            });
        });
        let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
        let res = world.run(vec![Box::new(prog)]);
        assert_eq!(*order.borrow(), vec![1, 2]);
        assert!(res.makespan >= Duration::from_micros(20));
    }
}
