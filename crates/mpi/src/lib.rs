//! # adapt-mpi — the simulated MPI runtime
//!
//! A deterministic, event-driven stand-in for the Open MPI communication
//! engine the paper integrates with: ranks with per-CPU progress engines,
//! tag/source matching with an unexpected-message queue, eager and
//! rendezvous protocols, noise-preemptible callbacks, GPU streams, and
//! asynchronous staging copies.
//!
//! Algorithms are [`RankProgram`]s driven by [`Completion`] events — the
//! exact "completion of a non-blocking P2P routine is an event that
//! triggers a callback" model of the paper's §2.2, one level *below*
//! `MPI_Isend`/`MPI_Irecv`, which is why Waitall-free collectives can be
//! expressed here while the MPI-level API cannot.

pub mod analysis;
pub mod callbacks;
pub mod datatype;
mod matching;
pub mod payload;
pub mod program;
pub mod world;

pub use adapt_faults::{FaultPlan, RelConfig};
pub use adapt_sim::audit::{AuditReport, RankAudit};
pub use analysis::{
    busy_fractions, comm_matrix, event_counts, finish_skew, phase_breakdown, RankPhases,
};
pub use callbacks::{CallbackProgram, Cb};
pub use datatype::{bytes_to_f64, combine, f64_to_bytes, DType, ReduceOp};
pub use payload::Payload;
pub use program::{Completion, Op, ProgramCtx, RankProgram, Tag, Token};
pub use world::{
    trace_to_csv, FailureDiagnosis, RunError, RunResult, StallDiagnosis, TraceEvent, TraceKind,
    World, WorldStats,
};
