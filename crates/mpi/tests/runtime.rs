//! End-to-end tests of the simulated MPI runtime: protocol behaviour,
//! timing, noise interaction, determinism.

use adapt_mpi::{Completion, Payload, ProgramCtx, RankProgram, Token, World};
use adapt_noise::{ClusterNoise, DurationLaw, NoiseSpec};
use adapt_sim::rng::MasterSeed;
use adapt_sim::time::{Duration, Time};
use adapt_topology::profiles;

/// A rank that does nothing but finish.
struct Idle;
impl RankProgram for Idle {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        ctx.finish();
    }
    fn on_completion(&mut self, _: &mut dyn ProgramCtx, _: Completion) {}
}

/// Sends one message to rank 1, finishes on SendDone.
struct Sender {
    bytes: u64,
    payload: Option<Payload>,
}
impl RankProgram for Sender {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        let payload = self
            .payload
            .take()
            .unwrap_or(Payload::Synthetic(self.bytes));
        ctx.isend(1, 0, payload, Token(1));
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        assert!(matches!(c, Completion::SendDone { token: Token(1) }));
        ctx.finish();
    }
}

/// Receives one message from rank 0, optionally after local compute,
/// records arrival time and data.
struct Receiver {
    delay: Duration,
    got: Option<(Time, Payload)>,
}
impl RankProgram for Receiver {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.delay.is_zero() {
            ctx.irecv(0, 0, Token(2));
        } else {
            ctx.compute(self.delay, Token(9));
        }
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        match c {
            Completion::ComputeDone { .. } => ctx.irecv(0, 0, Token(2)),
            Completion::RecvDone { data, .. } => {
                self.got = Some((ctx.now(), data));
                ctx.finish();
            }
            other => panic!("unexpected completion {other:?}"),
        }
    }
}

fn two_rank_world(noise: ClusterNoise) -> World {
    World::cpu(profiles::minicluster(2, 1, 1), 2, noise)
}

fn send_recv(bytes: u64, recv_delay: Duration) -> (Duration, adapt_mpi::WorldStats) {
    let world = two_rank_world(ClusterNoise::silent(2));
    let programs: Vec<Box<dyn RankProgram>> = vec![
        Box::new(Sender {
            bytes,
            payload: None,
        }),
        Box::new(Receiver {
            delay: recv_delay,
            got: None,
        }),
    ];
    let res = world.run(programs);
    (res.makespan, res.stats)
}

#[test]
fn idle_world_finishes_at_time_zero_ish() {
    let world = two_rank_world(ClusterNoise::silent(2));
    let res = world.run(vec![Box::new(Idle), Box::new(Idle)]);
    assert!(res.makespan < Duration::from_micros(1));
}

#[test]
fn rendezvous_transfer_time_matches_hockney() {
    // 1 MB inter-node on minicluster: NIC 6 GB/s, latency 1.5 us per NIC
    // side. Transfer alone: 1e6 / 6e9 s ≈ 166.7 us, plus 3 us path latency,
    // plus RTS + CTS round trip (≈ 6 us) and overheads.
    let (t, stats) = send_recv(1_000_000, Duration::ZERO);
    let us = t.as_secs_f64() * 1e6;
    assert!(us > 166.0, "faster than the wire: {us} us");
    assert!(us < 200.0, "too much overhead: {us} us");
    assert_eq!(stats.rendezvous, 1);
    assert_eq!(stats.unexpected_matches, 0);
}

#[test]
fn eager_message_can_be_unexpected() {
    // 2 KB eager message; receiver busy for 1 ms before posting.
    let world = two_rank_world(ClusterNoise::silent(2));
    let res = world.run(vec![
        Box::new(Sender {
            bytes: 2_048,
            payload: None,
        }),
        Box::new(Receiver {
            delay: Duration::from_millis(1),
            got: None,
        }),
    ]);
    assert_eq!(res.stats.unexpected_matches, 1);
    // The receive completes only after the late post + unexpected copy.
    assert!(res.makespan > Duration::from_millis(1));
}

#[test]
fn eager_message_matched_when_posted_early() {
    let (_, stats) = send_recv(2_048, Duration::ZERO);
    assert_eq!(stats.unexpected_matches, 0);
    assert_eq!(stats.rendezvous, 0);
}

#[test]
fn rendezvous_waits_for_receiver() {
    // Large message, receiver posts after 1 ms: data cannot start flowing
    // until the handshake completes, so total time ≈ 1 ms + transfer.
    let world = two_rank_world(ClusterNoise::silent(2));
    let res = world.run(vec![
        Box::new(Sender {
            bytes: 1_000_000,
            payload: None,
        }),
        Box::new(Receiver {
            delay: Duration::from_millis(1),
            got: None,
        }),
    ]);
    let us = res.makespan.as_secs_f64() * 1e6;
    assert!(us > 1_000.0 + 160.0, "handshake not serialized: {us} us");
}

#[test]
fn real_payload_arrives_intact() {
    let data: Vec<u8> = (0..100_000u32).map(|x| (x % 251) as u8).collect();
    let world = two_rank_world(ClusterNoise::silent(2));
    let res = world.run(vec![
        Box::new(Sender {
            bytes: 0,
            payload: Some(Payload::from(data.clone())),
        }),
        Box::new(Receiver {
            delay: Duration::ZERO,
            got: None,
        }),
    ]);
    let receiver = res
        .programs
        .into_iter()
        .nth(1)
        .map(|p| {
            let any: Box<dyn std::any::Any> = p;
            *any.downcast::<Receiver>().expect("receiver program")
        })
        .unwrap();
    let (_, payload) = receiver.got.expect("received");
    assert_eq!(payload.bytes().expect("real data").as_ref(), &data[..]);
}

#[test]
fn noise_on_receiver_slows_rendezvous() {
    // Heavy noise on the receiving rank delays the RTS processing and CTS,
    // stalling the sender — the coupling §2.1 describes.
    let clean = {
        let world = two_rank_world(ClusterNoise::silent(2));
        world
            .run(vec![
                Box::new(Sender {
                    bytes: 4_000_000,
                    payload: None,
                }),
                Box::new(Receiver {
                    delay: Duration::ZERO,
                    got: None,
                }),
            ])
            .makespan
    };
    // A single exchange exposes the receiver's CPU only briefly (that is
    // the point of non-blocking transfers), so sample several seeds and
    // require noise to hurt in at least one, and help in none.
    let noisy_max = (0..8u64)
        .map(|seed| {
            // Short period so windows land inside the ~700 us exchange.
            let spec = NoiseSpec {
                period: Duration::from_micros(100),
                max_duration: Duration::from_micros(90),
                law: DurationLaw::Uniform,
            };
            let noise = ClusterNoise::single_rank(2, 1, spec, MasterSeed(seed));
            let world = two_rank_world(noise);
            world
                .run(vec![
                    Box::new(Sender {
                        bytes: 4_000_000,
                        payload: None,
                    }),
                    Box::new(Receiver {
                        delay: Duration::ZERO,
                        got: None,
                    }),
                ])
                .makespan
        })
        .max()
        .unwrap();
    assert!(
        noisy_max.as_nanos() > clean.as_nanos(),
        "noise must slow the exchange: clean={clean}, noisy_max={noisy_max}"
    );
}

#[test]
fn determinism_with_noise() {
    let mk = || {
        let spec = NoiseSpec::uniform_percent(10.0);
        let noise = ClusterNoise::uniform(2, spec, MasterSeed(42));
        let world = two_rank_world(noise);
        world
            .run(vec![
                Box::new(Sender {
                    bytes: 4_000_000,
                    payload: None,
                }),
                Box::new(Receiver {
                    delay: Duration::ZERO,
                    got: None,
                }),
            ])
            .makespan
    };
    assert_eq!(mk().as_nanos(), mk().as_nanos());
}

#[test]
#[should_panic(expected = "deadlock")]
fn unmatched_recv_deadlocks_loudly() {
    struct RecvForever;
    impl RankProgram for RecvForever {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            ctx.irecv(0, 99, Token(0));
        }
        fn on_completion(&mut self, _: &mut dyn ProgramCtx, _: Completion) {}
    }
    let world = two_rank_world(ClusterNoise::silent(2));
    let _ = world.run(vec![Box::new(Idle), Box::new(RecvForever)]);
}

#[test]
fn compute_blocks_the_rank() {
    struct TwoComputes {
        first_done: Option<Time>,
    }
    impl RankProgram for TwoComputes {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            ctx.compute(Duration::from_micros(100), Token(0));
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
            match c.token() {
                Token(0) => {
                    assert!(ctx.now().as_nanos() >= 100_000, "first compute ran");
                    self.first_done = Some(ctx.now());
                    ctx.compute(Duration::from_micros(100), Token(1));
                }
                Token(1) => {
                    let first = self.first_done.expect("token order");
                    // Sequentially executed: second ends ~100 us after first.
                    assert!(ctx.now().as_nanos() >= first.as_nanos() + 100_000);
                    ctx.finish();
                }
                _ => unreachable!(),
            }
        }
    }
    let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
    world.run(vec![Box::new(TwoComputes { first_done: None })]);
}

#[test]
fn gpu_stream_serializes_reductions() {
    struct GpuTwice {
        done: u32,
        t0: Option<Time>,
    }
    impl RankProgram for GpuTwice {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            // Two 60 MB reductions at 60 GB/s = 1 ms each, enqueued together:
            // the stream runs them back to back while the CPU stays free.
            ctx.gpu_reduce(60_000_000, Token(0));
            ctx.gpu_reduce(60_000_000, Token(1));
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
            self.done += 1;
            match c.token() {
                Token(0) => self.t0 = Some(ctx.now()),
                Token(1) => {
                    let t0 = self.t0.expect("in order");
                    assert!(ctx.now().as_nanos() >= t0.as_nanos() + 1_000_000);
                    ctx.finish();
                }
                _ => unreachable!(),
            }
        }
    }
    let world = World::gpu(profiles::mini_gpu(1), 2, ClusterNoise::silent(2));
    struct IdleG;
    impl RankProgram for IdleG {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            ctx.finish();
        }
        fn on_completion(&mut self, _: &mut dyn ProgramCtx, _: Completion) {}
    }
    world.run(vec![
        Box::new(GpuTwice { done: 0, t0: None }),
        Box::new(IdleG),
    ]);
}

#[test]
fn staging_copy_crosses_pcie() {
    struct Stager {
        done_at: Option<Time>,
    }
    impl RankProgram for Stager {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            let dev = ctx.mem_of(ctx.rank());
            let host = ctx.host_of(ctx.rank());
            assert!(dev.is_device());
            // 10 MB over PCIe at 10 GB/s = 1 ms + 1 us latency.
            ctx.copy(dev, host, 10_000_000, Token(0));
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
            assert!(matches!(c, Completion::CopyDone { .. }));
            self.done_at = Some(ctx.now());
            ctx.finish();
        }
    }
    let world = World::gpu(profiles::mini_gpu(1), 1, ClusterNoise::silent(1));
    let res = world.run(vec![Box::new(Stager { done_at: None })]);
    let us = res.makespan.as_secs_f64() * 1e6;
    assert!(us > 1_000.0 && us < 1_010.0, "PCIe copy took {us} us");
}

#[test]
fn isend_overhead_sequences_multiple_sends() {
    // Root posting N sends in one handler pays N send overheads before the
    // last flow starts — the injection serialization real MPI has.
    struct Fan {
        outstanding: u32,
    }
    impl RankProgram for Fan {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            for child in 1..ctx.nranks() {
                ctx.isend(child, 0, Payload::Synthetic(1024), Token(child as u64));
            }
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, _: Completion) {
            self.outstanding -= 1;
            if self.outstanding == 0 {
                ctx.finish();
            }
        }
    }
    struct RecvOne;
    impl RankProgram for RecvOne {
        fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
            ctx.irecv(0, 0, Token(0));
        }
        fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
            assert!(matches!(c, Completion::RecvDone { .. }));
            ctx.finish();
        }
    }
    let world = World::cpu(profiles::minicluster(1, 1, 8), 8, ClusterNoise::silent(8));
    let res = world.run(
        std::iter::once(Box::new(Fan { outstanding: 7 }) as Box<dyn RankProgram>)
            .chain((1..8).map(|_| Box::new(RecvOne) as Box<dyn RankProgram>))
            .collect(),
    );
    // 7 sends x 400 ns overhead alone is 2.8 us of injection serialization.
    assert!(res.makespan > Duration::from_nanos(2_800));
    assert_eq!(res.stats.messages, 7);
}

#[test]
fn trace_records_the_exchange() {
    use adapt_mpi::{trace_to_csv, TraceKind};
    let world = two_rank_world(ClusterNoise::silent(2)).enable_trace();
    let res = world.run(vec![
        Box::new(Sender {
            bytes: 100_000,
            payload: None,
        }),
        Box::new(Receiver {
            delay: Duration::ZERO,
            got: None,
        }),
    ]);
    let kinds: Vec<TraceKind> = res.trace.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&TraceKind::SendPosted));
    assert!(kinds.contains(&TraceKind::RecvPosted));
    assert!(kinds.contains(&TraceKind::RecvDone));
    assert!(kinds.contains(&TraceKind::SendDone));
    assert_eq!(
        kinds.iter().filter(|k| **k == TraceKind::Finish).count(),
        2,
        "both ranks finish"
    );
    // Timeline is monotone.
    assert!(res.trace.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
    // CSV renders one line per event plus header.
    let csv = trace_to_csv(&res.trace);
    assert_eq!(csv.lines().count(), res.trace.len() + 1);
    assert!(csv.starts_with("time_ns,rank,kind,peer,amount"));
    // The recv event carries the payload size and the sender's rank.
    let recv = res
        .trace
        .iter()
        .find(|e| e.kind == TraceKind::RecvDone)
        .unwrap();
    assert_eq!(recv.rank, 1);
    assert_eq!(recv.peer, 0);
    assert_eq!(recv.amount, 100_000);
}

#[test]
fn trace_disabled_by_default() {
    let world = two_rank_world(ClusterNoise::silent(2));
    let res = world.run(vec![Box::new(Idle), Box::new(Idle)]);
    assert!(res.trace.is_empty());
}

#[test]
fn analysis_over_a_traced_run() {
    use adapt_mpi::{busy_fractions, comm_matrix, finish_skew};
    let world = two_rank_world(ClusterNoise::silent(2)).enable_trace();
    let res = world.run(vec![
        Box::new(Sender {
            bytes: 500_000,
            payload: None,
        }),
        Box::new(Receiver {
            delay: Duration::ZERO,
            got: None,
        }),
    ]);
    let m = comm_matrix(&res.trace, 2);
    assert_eq!(m[0][1], 500_000);
    assert_eq!(m[1][0], 0);
    let busy = busy_fractions(&res);
    assert!(busy.iter().all(|&b| (0.0..=1.0).contains(&b)));
    let skew = finish_skew(&res);
    assert_eq!(
        skew.iter().filter(|d| d.is_zero()).count(),
        1,
        "exactly one last rank"
    );
}

/// Rank 0: a rendezvous-sized send (tag 7) then an eager send (tag 5).
struct RndvThenEager {
    done: u32,
}
impl RankProgram for RndvThenEager {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        ctx.isend(1, 7, Payload::Synthetic(1_000_000), Token(1));
        ctx.isend(1, 5, Payload::Synthetic(1_024), Token(2));
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        assert!(matches!(c, Completion::SendDone { .. }));
        self.done += 1;
        if self.done == 2 {
            ctx.finish();
        }
    }
}

/// Rank 1: stays busy long enough for both arrivals to be unexpected,
/// then drains them with wildcard receives, recording tag order.
struct LateWildcardReceiver {
    tags: Vec<u32>,
}
impl RankProgram for LateWildcardReceiver {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        ctx.compute(Duration::from_millis(1), Token(9));
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
        match c {
            Completion::ComputeDone { .. } => {
                ctx.irecv(0, adapt_mpi::program::ANY_TAG, Token(10));
            }
            Completion::RecvDone { tag, .. } => {
                self.tags.push(tag);
                if self.tags.len() == 1 {
                    ctx.irecv(0, adapt_mpi::program::ANY_TAG, Token(11));
                } else {
                    ctx.finish();
                }
            }
            other => panic!("unexpected completion {other:?}"),
        }
    }
}

#[test]
fn unexpected_eager_matches_before_unexpected_rts() {
    // The RTS (rendezvous, tag 7) reaches the busy receiver before the
    // eager data (tag 5) is even sent, but MPI matching order consults the
    // unexpected-eager queue first: the first wildcard receive must take
    // tag 5, the second tag 7.
    let world = two_rank_world(ClusterNoise::silent(2));
    let res = world.run(vec![
        Box::new(RndvThenEager { done: 0 }),
        Box::new(LateWildcardReceiver { tags: Vec::new() }),
    ]);
    assert!(res.audit.is_clean(), "{}", res.audit);
    assert_eq!(res.stats.rendezvous, 1);
    assert_eq!(res.stats.unexpected_matches, 1);
    let recv = res.programs.into_iter().nth(1).unwrap();
    let recv = (recv as Box<dyn std::any::Any>)
        .downcast::<LateWildcardReceiver>()
        .unwrap();
    assert_eq!(recv.tags, vec![5, 7], "eager must match before RTS");
}
