//! Link identities and flow paths.

use adapt_sim::time::Duration;

/// Index of a link inside a [`crate::flow::Network`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// One shared communication resource (a lane direction).
#[derive(Clone, Debug)]
pub struct Link {
    /// What the link is, for diagnostics.
    pub class: LinkClass,
    /// Capacity in bytes per second, shared max-min among active flows.
    pub capacity: f64,
    /// One-way propagation latency contributed to any path crossing it.
    pub latency: Duration,
}

/// The hardware lane a link models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Shared-memory pipe of one socket (`global_socket` index).
    Shm(u32),
    /// Inter-socket bus of one node.
    InterSocket(u32),
    /// NIC transmit side of one node.
    NicTx(u32),
    /// NIC receive side of one node.
    NicRx(u32),
    /// Aggregate fabric backbone.
    Backbone,
    /// PCI-Express host-bound (device→host) direction of one socket.
    PcieUp(u32),
    /// PCI-Express device-bound (host→device) direction of one socket.
    PcieDown(u32),
    /// NVLink peer lane of one socket's GPUs.
    NvLink(u32),
    /// One core's egress copy engine (`global core` index).
    CoreTx(u32),
    /// One core's ingress copy engine (`global core` index).
    CoreRx(u32),
}

/// Maximum number of links on any route (device → NIC → backbone → NIC →
/// device is the longest).
pub const MAX_PATH: usize = 6;

/// A fixed-capacity inline path of links, avoiding a heap allocation per
/// message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Path {
    links: [LinkId; MAX_PATH],
    len: u8,
}

impl Path {
    /// The empty path (purely local transfer).
    pub const EMPTY: Path = Path {
        links: [LinkId(0); MAX_PATH],
        len: 0,
    };

    /// Construct from a slice of at most [`MAX_PATH`] links.
    pub fn new(links: &[LinkId]) -> Path {
        assert!(links.len() <= MAX_PATH, "path too long: {}", links.len());
        let mut p = Path::EMPTY;
        p.links[..links.len()].copy_from_slice(links);
        p.len = links.len() as u8;
        p
    }

    /// Append a link, panicking if the path is full.
    pub fn push(&mut self, link: LinkId) {
        assert!((self.len as usize) < MAX_PATH, "path overflow");
        self.links[self.len as usize] = link;
        self.len += 1;
    }

    /// The links as a slice. Inlined: the fair-share recompute walks
    /// every active flow's path on each bottleneck perturbation, so
    /// these accessors sit on the `flow_churn` hot path.
    #[inline]
    pub fn as_slice(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the path crosses no shared resource.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the path crosses `link`.
    #[inline]
    pub fn contains(&self, link: LinkId) -> bool {
        self.as_slice().contains(&link)
    }
}

/// Minimum latency of any cross-node link (NIC transmit/receive sides and
/// the fabric backbone) — the conservative lookahead of a node-sharded
/// parallel simulation: no event on one node can affect another node
/// sooner than this. `None` for a fabric with no cross-node links (a
/// single-node machine), where the caller must pick its own bound.
pub fn min_cross_node_latency(links: &[Link]) -> Option<Duration> {
    links
        .iter()
        .filter(|l| {
            matches!(
                l.class,
                LinkClass::NicTx(_) | LinkClass::NicRx(_) | LinkClass::Backbone
            )
        })
        .map(|l| l.latency)
        .min()
}

impl<'a> IntoIterator for &'a Path {
    type Item = LinkId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, LinkId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_push_and_contains() {
        let mut p = Path::EMPTY;
        assert!(p.is_empty());
        p.push(LinkId(3));
        p.push(LinkId(7));
        assert_eq!(p.len(), 2);
        assert!(p.contains(LinkId(3)));
        assert!(!p.contains(LinkId(4)));
        assert_eq!(p.as_slice(), &[LinkId(3), LinkId(7)]);
    }

    #[test]
    fn path_new_roundtrip() {
        let p = Path::new(&[LinkId(1), LinkId(2), LinkId(3)]);
        assert_eq!(p.as_slice().len(), 3);
    }

    #[test]
    fn min_cross_node_latency_picks_the_smallest_nic_or_backbone() {
        let mk = |class, lat| Link {
            class,
            capacity: 1e9,
            latency: Duration::from_nanos(lat),
        };
        let links = vec![
            mk(LinkClass::Shm(0), 10),
            mk(LinkClass::NicTx(0), 900),
            mk(LinkClass::NicRx(1), 700),
            mk(LinkClass::Backbone, 1200),
        ];
        assert_eq!(
            min_cross_node_latency(&links),
            Some(Duration::from_nanos(700))
        );
        // Intra-node lanes alone give no cross-node bound.
        assert_eq!(min_cross_node_latency(&links[..1]), None);
    }

    #[test]
    #[should_panic(expected = "path overflow")]
    fn path_overflow_panics() {
        let mut p = Path::new(&[LinkId(0); MAX_PATH]);
        p.push(LinkId(9));
    }
}
