//! # adapt-net — flow-level network model
//!
//! Models every in-flight message as a *flow* across a path of hardware
//! lanes (shared-memory pipes, inter-socket buses, NICs, PCIe directions).
//! Concurrent flows share each lane's bandwidth equally (processor
//! sharing; a flow drains at the minimum share along its path), which is
//! what produces the congestion phenomena the ADAPT paper reasons about —
//! e.g. three flows on one PCIe direction each seeing a third of the
//! bandwidth (§4.1), or a Waitall forcing heterogeneous lanes to the speed
//! of the slowest (§3.2.2).
//!
//! The per-lane cost model is Hockney's `α + m/β`: each link contributes
//! propagation latency α, and the bandwidth phase runs at the allotted
//! share of β.

pub mod fabric;
pub mod flow;
pub mod links;

pub use fabric::Fabric;
pub use flow::{Delivery, FlowId, FlowScheduler, FlowSpec, NetPerf, NetStep, Network};
pub use links::{min_cross_node_latency, Link, LinkClass, LinkId, Path, MAX_PATH};
