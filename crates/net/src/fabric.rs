//! Fabric construction and routing.
//!
//! Materializes a [`MachineSpec`] into the link set of a
//! [`Network`](crate::flow::Network) and answers routing queries: which
//! links does a transfer between two memory spaces traverse?
//!
//! Lane inventory (one [`Link`] each):
//! - per global socket: a shared-memory pipe;
//! - per node: an inter-socket bus (QPI/UPI);
//! - per node: NIC transmit and NIC receive;
//! - optional: one fabric backbone;
//! - on GPU machines, per global socket: PCIe up (device→host direction)
//!   and PCIe down (host→device).
//!
//! Inter-node GPU transfers are expressed by the *caller's choice of memory
//! spaces*: GPUDirect is a Device→Device route through NIC and PCIe;
//! staging through host memory is a Device→Host copy followed by
//! Host→Host/Host→Device sends (§4.1).

use crate::links::{Link, LinkClass, LinkId, Path};
use adapt_topology::{MachineSpec, MemSpace};

/// Link-id layout and routing for one machine.
#[derive(Clone, Debug)]
pub struct Fabric {
    sockets_total: u32,
    nodes: u32,
    cores_per_socket: u32,
    has_backbone: bool,
    has_pcie: bool,
    has_nvlink: bool,
}

impl Fabric {
    /// Build the link table for `spec`. Returns the fabric (routing oracle)
    /// and the links to construct the network engine with.
    pub fn build(spec: &MachineSpec) -> (Fabric, Vec<Link>) {
        let nodes = spec.shape.nodes;
        let sockets_total = nodes * spec.shape.sockets_per_node;
        let mut links = Vec::new();
        for s in 0..sockets_total {
            links.push(Link {
                class: LinkClass::Shm(s),
                capacity: spec.shm.bandwidth,
                latency: spec.shm.latency,
            });
        }
        for n in 0..nodes {
            links.push(Link {
                class: LinkClass::InterSocket(n),
                capacity: spec.inter_socket.bandwidth,
                latency: spec.inter_socket.latency,
            });
        }
        for n in 0..nodes {
            links.push(Link {
                class: LinkClass::NicTx(n),
                capacity: spec.nic.bandwidth,
                latency: spec.nic.latency,
            });
        }
        for n in 0..nodes {
            links.push(Link {
                class: LinkClass::NicRx(n),
                capacity: spec.nic.bandwidth,
                latency: spec.nic.latency,
            });
        }
        let has_backbone = spec.backbone.is_some();
        if let Some(bb) = spec.backbone {
            links.push(Link {
                class: LinkClass::Backbone,
                capacity: bb.bandwidth,
                latency: bb.latency,
            });
        }
        let has_pcie = spec.pcie.is_some();
        if let Some(pcie) = spec.pcie {
            for s in 0..sockets_total {
                links.push(Link {
                    class: LinkClass::PcieUp(s),
                    capacity: pcie.bandwidth,
                    latency: pcie.latency,
                });
            }
            for s in 0..sockets_total {
                links.push(Link {
                    class: LinkClass::PcieDown(s),
                    capacity: pcie.bandwidth,
                    latency: pcie.latency,
                });
            }
        }
        let has_nvlink = spec.nvlink.is_some();
        if let Some(nv) = spec.nvlink {
            for s in 0..sockets_total {
                links.push(Link {
                    class: LinkClass::NvLink(s),
                    capacity: nv.bandwidth,
                    latency: nv.latency,
                });
            }
        }
        let cores_total = sockets_total * spec.shape.cores_per_socket;
        for c in 0..cores_total {
            links.push(Link {
                class: LinkClass::CoreTx(c),
                capacity: spec.core.bandwidth,
                latency: spec.core.latency,
            });
        }
        for c in 0..cores_total {
            links.push(Link {
                class: LinkClass::CoreRx(c),
                capacity: spec.core.bandwidth,
                latency: spec.core.latency,
            });
        }
        (
            Fabric {
                sockets_total,
                nodes,
                cores_per_socket: spec.shape.cores_per_socket,
                has_backbone,
                has_pcie,
                has_nvlink,
            },
            links,
        )
    }

    fn gsock(&self, node: u32, socket: u32) -> u32 {
        node * (self.sockets_total / self.nodes) + socket
    }

    /// Link id of a socket's shared-memory pipe.
    pub fn shm(&self, node: u32, socket: u32) -> LinkId {
        LinkId(self.gsock(node, socket))
    }

    /// Link id of a node's inter-socket bus.
    pub fn inter_socket(&self, node: u32) -> LinkId {
        LinkId(self.sockets_total + node)
    }

    /// Link id of a node's NIC transmit side.
    pub fn nic_tx(&self, node: u32) -> LinkId {
        LinkId(self.sockets_total + self.nodes + node)
    }

    /// Link id of a node's NIC receive side.
    pub fn nic_rx(&self, node: u32) -> LinkId {
        LinkId(self.sockets_total + 2 * self.nodes + node)
    }

    /// Link id of the backbone, when the machine has one.
    pub fn backbone(&self) -> Option<LinkId> {
        self.has_backbone
            .then(|| LinkId(self.sockets_total + 3 * self.nodes))
    }

    fn pcie_base(&self) -> u32 {
        self.sockets_total + 3 * self.nodes + u32::from(self.has_backbone)
    }

    /// Link id of a socket's device→host PCIe direction.
    pub fn pcie_up(&self, node: u32, socket: u32) -> LinkId {
        assert!(self.has_pcie, "machine has no PCIe lanes");
        LinkId(self.pcie_base() + self.gsock(node, socket))
    }

    /// Link id of a socket's host→device PCIe direction.
    pub fn pcie_down(&self, node: u32, socket: u32) -> LinkId {
        assert!(self.has_pcie, "machine has no PCIe lanes");
        LinkId(self.pcie_base() + self.sockets_total + self.gsock(node, socket))
    }

    fn nvlink_base(&self) -> u32 {
        self.pcie_base()
            + if self.has_pcie {
                2 * self.sockets_total
            } else {
                0
            }
    }

    /// Link id of a socket's NVLink peer lane, when the machine has one.
    pub fn nvlink(&self, node: u32, socket: u32) -> Option<LinkId> {
        self.has_nvlink
            .then(|| LinkId(self.nvlink_base() + self.gsock(node, socket)))
    }

    fn core_base(&self) -> u32 {
        self.nvlink_base()
            + if self.has_nvlink {
                self.sockets_total
            } else {
                0
            }
    }

    /// Global core index of `(node, socket, core)`.
    pub fn global_core(&self, node: u32, socket: u32, core: u32) -> u32 {
        self.gsock(node, socket) * self.cores_per_socket + core
    }

    /// Link id of a core's egress copy engine.
    pub fn core_tx(&self, global_core: u32) -> LinkId {
        LinkId(self.core_base() + global_core)
    }

    /// Link id of a core's ingress copy engine.
    pub fn core_rx(&self, global_core: u32) -> LinkId {
        LinkId(self.core_base() + self.sockets_total * self.cores_per_socket + global_core)
    }

    /// Route a point-to-point transfer, accounting for the CPU cores that
    /// move the bytes. Intra-node host-to-host transfers are memcpys
    /// executed by the endpoint cores, so the sender's egress engine and
    /// the receiver's ingress engine join the path; cores are full duplex
    /// (tx and rx are separate lanes), which is what lets a pipelined rank
    /// overlap its receive of segment `i+1` with its send of segment `i`.
    /// Inter-node and device transfers are DMA (RDMA NICs, cudaMemcpy
    /// engines) and bypass the cores.
    pub fn route_p2p(
        &self,
        src: MemSpace,
        dst: MemSpace,
        src_core: Option<u32>,
        dst_core: Option<u32>,
    ) -> Path {
        let intra_node_host = matches!(
            (src, dst),
            (MemSpace::Host { node: a, .. }, MemSpace::Host { node: b, .. }) if a == b
        );
        if !intra_node_host {
            return self.route(src, dst);
        }
        let inner = self.route(src, dst);
        let mut p = Path::EMPTY;
        if let Some(c) = src_core {
            p.push(self.core_tx(c));
        }
        for l in &inner {
            p.push(l);
        }
        if let Some(c) = dst_core {
            p.push(self.core_rx(c));
        }
        p
    }

    /// The links a transfer from `src` to `dst` traverses, in order.
    ///
    /// Two ranks on the same socket still cross that socket's shm pipe; the
    /// only empty route is device memory to itself (the engine delivers such
    /// transfers immediately; callers model any memcpy cost as compute).
    pub fn route(&self, src: MemSpace, dst: MemSpace) -> Path {
        use MemSpace::*;
        let mut p = Path::EMPTY;
        match (src, dst) {
            (
                Host {
                    node: a,
                    socket: sa,
                },
                Host {
                    node: b,
                    socket: sb,
                },
            ) => {
                if a == b {
                    if sa == sb {
                        p.push(self.shm(a, sa));
                    } else {
                        p.push(self.inter_socket(a));
                    }
                } else {
                    p.push(self.nic_tx(a));
                    if let Some(bb) = self.backbone() {
                        p.push(bb);
                    }
                    p.push(self.nic_rx(b));
                }
            }
            (
                Device {
                    node: a,
                    socket: sa,
                    ..
                },
                Host {
                    node: b,
                    socket: sb,
                },
            ) => {
                p.push(self.pcie_up(a, sa));
                if a == b {
                    if sa != sb {
                        p.push(self.inter_socket(a));
                    }
                } else {
                    p.push(self.nic_tx(a));
                    if let Some(bb) = self.backbone() {
                        p.push(bb);
                    }
                    p.push(self.nic_rx(b));
                }
            }
            (
                Host {
                    node: a,
                    socket: sa,
                },
                Device {
                    node: b,
                    socket: sb,
                    ..
                },
            ) => {
                if a == b {
                    if sa != sb {
                        p.push(self.inter_socket(a));
                    }
                } else {
                    p.push(self.nic_tx(a));
                    if let Some(bb) = self.backbone() {
                        p.push(bb);
                    }
                    p.push(self.nic_rx(b));
                }
                p.push(self.pcie_down(b, sb));
            }
            (
                Device {
                    node: a,
                    socket: sa,
                    gpu: ga,
                },
                Device {
                    node: b,
                    socket: sb,
                    gpu: gb,
                },
            ) => {
                if a == b && sa == sb {
                    if ga == gb {
                        return Path::EMPTY;
                    }
                    if let Some(nv) = self.nvlink(a, sa) {
                        // NVLink peer traffic bypasses the PCIe switch.
                        p.push(nv);
                    } else {
                        // CUDA IPC peer copy through the socket's PCIe
                        // switch: occupies both directions of that switch.
                        p.push(self.pcie_up(a, sa));
                        p.push(self.pcie_down(a, sa));
                    }
                } else if a == b {
                    // Inter-socket GPU transfer goes through CPU memory
                    // (§4: "we assume inter-socket communications go
                    // through CPU memory").
                    p.push(self.pcie_up(a, sa));
                    p.push(self.inter_socket(a));
                    p.push(self.pcie_down(a, sb));
                } else {
                    // GPUDirect RDMA: device → NIC → device.
                    p.push(self.pcie_up(a, sa));
                    p.push(self.nic_tx(a));
                    if let Some(bb) = self.backbone() {
                        p.push(bb);
                    }
                    p.push(self.nic_rx(b));
                    p.push(self.pcie_down(b, sb));
                }
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_topology::profiles;

    #[test]
    fn cpu_fabric_link_count() {
        let spec = profiles::minicluster(4, 2, 4);
        let (_, links) = Fabric::build(&spec);
        // 8 shm + 4 qpi + 4 tx + 4 rx + 32 core_tx + 32 core_rx = 84.
        assert_eq!(links.len(), 84);
    }

    #[test]
    fn gpu_fabric_link_count() {
        let spec = profiles::psg(2);
        let (_, links) = Fabric::build(&spec);
        // 4 shm + 2 qpi + 2 tx + 2 rx + 4 up + 4 down + 40 ctx + 40 crx = 98.
        assert_eq!(links.len(), 98);
    }

    #[test]
    fn link_ids_match_classes() {
        let spec = profiles::psg(2);
        let (f, links) = Fabric::build(&spec);
        assert_eq!(links[f.shm(1, 1).0 as usize].class, LinkClass::Shm(3));
        assert_eq!(
            links[f.inter_socket(1).0 as usize].class,
            LinkClass::InterSocket(1)
        );
        assert_eq!(links[f.nic_tx(0).0 as usize].class, LinkClass::NicTx(0));
        assert_eq!(links[f.nic_rx(1).0 as usize].class, LinkClass::NicRx(1));
        assert_eq!(
            links[f.pcie_up(1, 0).0 as usize].class,
            LinkClass::PcieUp(2)
        );
        assert_eq!(
            links[f.pcie_down(0, 1).0 as usize].class,
            LinkClass::PcieDown(1)
        );
        // Core lanes: node 1 socket 0 core 3 of the 10-core PSG sockets.
        let gc = f.global_core(1, 0, 3);
        assert_eq!(gc, 23);
        assert_eq!(links[f.core_tx(gc).0 as usize].class, LinkClass::CoreTx(23));
        assert_eq!(links[f.core_rx(gc).0 as usize].class, LinkClass::CoreRx(23));
    }

    #[test]
    fn nvlink_routes_bypass_pcie() {
        let spec = profiles::nvlink_cluster(2);
        let (f, links) = Fabric::build(&spec);
        let d = |node, socket, gpu| MemSpace::Device { node, socket, gpu };
        // Same-socket peers ride NVLink.
        let p = f.route(d(0, 0, 0), d(0, 0, 1));
        assert_eq!(p.as_slice(), &[f.nvlink(0, 0).unwrap()]);
        assert_eq!(
            links[f.nvlink(1, 1).unwrap().0 as usize].class,
            LinkClass::NvLink(3)
        );
        // Cross-socket still goes through host memory.
        let p = f.route(d(0, 0, 0), d(0, 1, 0));
        assert_eq!(
            p.as_slice(),
            &[f.pcie_up(0, 0), f.inter_socket(0), f.pcie_down(0, 1)]
        );
        // PSG (no NVLink) keeps the PCIe pair.
        let (f2, _) = Fabric::build(&profiles::psg(2));
        assert!(f2.nvlink(0, 0).is_none());
        let p = f2.route(d(0, 0, 0), d(0, 0, 1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn route_p2p_adds_core_engines_for_host_endpoints() {
        let spec = profiles::minicluster(2, 2, 4);
        let (f, _) = Fabric::build(&spec);
        let h = |node, socket| MemSpace::Host { node, socket };
        // Intra-socket pair, cores 1 and 2 of node 0 socket 0.
        let p = f.route_p2p(h(0, 0), h(0, 0), Some(1), Some(2));
        assert_eq!(p.as_slice(), &[f.core_tx(1), f.shm(0, 0), f.core_rx(2)]);
        // Inter-node transfers are RDMA: no core engines.
        let p = f.route_p2p(h(0, 0), h(1, 1), Some(0), Some(15));
        assert_eq!(p.as_slice(), &[f.nic_tx(0), f.nic_rx(1)]);
        // Without cores the plain route is returned.
        let p = f.route_p2p(h(0, 0), h(0, 1), None, None);
        assert_eq!(p.as_slice(), &[f.inter_socket(0)]);
    }

    #[test]
    fn host_routes() {
        let spec = profiles::minicluster(2, 2, 4);
        let (f, _) = Fabric::build(&spec);
        let h = |node, socket| MemSpace::Host { node, socket };
        // Two ranks on the same socket still cross the shm pipe.
        assert_eq!(f.route(h(0, 0), h(0, 0)).as_slice(), &[f.shm(0, 0)]);
        assert_eq!(f.route(h(0, 0), h(0, 1)).as_slice(), &[f.inter_socket(0)]);
        assert_eq!(f.route(h(0, 1), h(0, 1)).as_slice(), &[f.shm(0, 1)]);
        assert_eq!(
            f.route(h(0, 0), h(1, 1)).as_slice(),
            &[f.nic_tx(0), f.nic_rx(1)]
        );
    }

    #[test]
    fn gpu_routes() {
        let spec = profiles::psg(2);
        let (f, _) = Fabric::build(&spec);
        let d = |node, socket, gpu| MemSpace::Device { node, socket, gpu };
        let h = |node, socket| MemSpace::Host { node, socket };
        // IPC same socket: both PCIe directions of that socket.
        assert_eq!(
            f.route(d(0, 0, 0), d(0, 0, 1)).as_slice(),
            &[f.pcie_up(0, 0), f.pcie_down(0, 0)]
        );
        // Inter-socket through CPU memory.
        assert_eq!(
            f.route(d(0, 0, 0), d(0, 1, 0)).as_slice(),
            &[f.pcie_up(0, 0), f.inter_socket(0), f.pcie_down(0, 1)]
        );
        // GPUDirect inter-node.
        assert_eq!(
            f.route(d(0, 0, 0), d(1, 1, 1)).as_slice(),
            &[f.pcie_up(0, 0), f.nic_tx(0), f.nic_rx(1), f.pcie_down(1, 1)]
        );
        // Device to local host: one PCIe up.
        assert_eq!(f.route(d(0, 0, 0), h(0, 0)).as_slice(), &[f.pcie_up(0, 0)]);
        // Host to remote device: NIC then PCIe down (no source PCIe).
        assert_eq!(
            f.route(h(0, 0), d(1, 0, 0)).as_slice(),
            &[f.nic_tx(0), f.nic_rx(1), f.pcie_down(1, 0)]
        );
        // Same device: local.
        assert_eq!(f.route(d(0, 0, 0), d(0, 0, 0)), Path::EMPTY);
    }
}
