//! Flow-level network simulation with per-link fair bandwidth sharing.
//!
//! Every in-flight message is a *flow* over a path of links. Each link's
//! capacity is shared equally among the flows crossing it (processor
//! sharing), and a flow drains at the minimum share along its path:
//!
//! ```text
//! rate(f) = min over links l of f:  capacity(l) / active_flows(l)
//! ```
//!
//! This is the classic equal-share approximation of max-min fairness. It
//! is *local*: a flow entering or leaving only perturbs flows that share
//! one of its links, which keeps the engine O(affected flows) per event —
//! essential for thousand-rank collectives with tens of thousands of
//! concurrent flows — while still producing the congestion effects the
//! ADAPT paper reasons about (three flows on one PCIe direction each see a
//! third of its bandwidth, §4.1; heterogeneous lanes progress
//! independently, §3.2.2).
//!
//! Each flow passes through two phases:
//!
//! 1. **Draining** — its bytes leave the sender at the allotted rate; a
//!    *drain* event fires when the last byte is injected, at which point
//!    the flow stops consuming link capacity.
//! 2. **Latency tail** — the path's propagation latency elapses; a
//!    *delivery* event fires and the owner is handed the flow's tag.
//!
//! The engine does not own the event queue (the MPI runtime does); it
//! talks to it through [`FlowScheduler`], so flows, rank events, and noise
//! share one deterministic timeline.

use crate::links::{Link, Path, MAX_PATH};
use adapt_sim::queue::EventKey;
use adapt_sim::time::{Duration, Time};

/// Identifier of an in-flight flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// How the owner's event queue is driven by the network engine.
pub trait FlowScheduler {
    /// Schedule a network event for `flow` at `at`; return a cancellable key.
    fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey;
    /// Cancel a previously scheduled network event.
    fn cancel(&mut self, key: EventKey);
}

/// Description of a new flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowSpec {
    /// Links the flow traverses, in order.
    pub path: Path,
    /// Payload size in bytes. Zero-byte flows model control messages and
    /// are charged latency only.
    pub bytes: u64,
    /// Opaque tag returned on delivery (the MPI layer keys its bookkeeping
    /// on this).
    pub tag: u64,
}

/// Outcome handed to the owner when a delivery event fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The completed flow.
    pub flow: FlowId,
    /// The tag from the original [`FlowSpec`].
    pub tag: u64,
    /// Bytes that were carried.
    pub bytes: u64,
}

/// What a network event meant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetStep {
    /// Internal bookkeeping (a stale drain estimate corrected itself);
    /// nothing to act on.
    Progress,
    /// The flow's last byte left the sender: its buffer is reusable and it
    /// stopped consuming link capacity. Delivery follows after the path
    /// latency.
    Drained {
        /// The draining flow.
        flow: FlowId,
        /// The tag from the original [`FlowSpec`].
        tag: u64,
        /// Bytes carried.
        bytes: u64,
    },
    /// The flow arrived at the receiver.
    Delivered(Delivery),
    /// The flow was lost: injected fault (link loss or outage) consumed
    /// the transfer. The flow drained normally — bandwidth was spent — but
    /// nothing arrives; recovery is the reliability layer's job.
    Dropped(Delivery),
}

#[derive(Debug)]
enum Phase {
    /// Consuming link capacity.
    Draining {
        /// Bytes left as of `last_update`.
        remaining: f64,
        /// Current rate, bytes/sec.
        rate: f64,
        /// When `remaining` was last reconciled.
        last_update: Time,
    },
    /// Drained; waiting out the propagation latency.
    Tail,
}

#[derive(Debug)]
struct Flow {
    spec: FlowSpec,
    phase: Phase,
    /// Marked lost at injection time by the fault layer: the flow drains
    /// and ties up bandwidth as usual, but delivery reports
    /// [`NetStep::Dropped`] instead of handing data to the receiver.
    doomed: bool,
    event: EventKey,
    /// Scheduled time of `event` (to judge whether a rate change moved the
    /// estimate enough to warrant a reschedule).
    event_time: Time,
    /// For each path position, this flow's index inside that link's
    /// `link_flows` list — a slot map that turns the leave-link update into
    /// an O(1) `swap_remove` instead of a linear `position()` scan.
    slots: [u32; MAX_PATH],
}

/// The flow-level network engine. Flows live in a slab (vector plus free
/// list) so the per-event refresh of neighbouring flows is direct indexing
/// rather than hashing — the hot path with tens of thousands of
/// concurrent flows.
pub struct Network {
    links: Vec<Link>,
    /// Pristine `(capacity, latency)` of every link, kept so degradation
    /// windows can scale from the base values rather than compounding.
    base_links: Vec<(f64, Duration)>,
    slab: Vec<Option<Flow>>,
    free: Vec<u32>,
    active: usize,
    /// Flows currently draining through each link (unordered slab indices).
    link_flows: Vec<Vec<u32>>,
    /// Cached equal-share rate of each link: `capacity / active.max(1)`,
    /// maintained on every occupancy change. Queries fold cached values
    /// instead of re-dividing, and the cache is what makes the refresh
    /// prefilter possible: a neighbour whose current rate is unaffected by
    /// the one share that moved is skipped without touching its state.
    link_share: Vec<f64>,
    /// Cumulative bytes injected by `start_flow` (audit).
    injected_bytes: u64,
    /// Cumulative bytes delivered (diagnostics and audit).
    delivered_bytes: u64,
    /// Cumulative bytes consumed by doomed flows (injected faults).
    dropped_bytes: u64,
    /// Scratch buffer: flows affected by the current perturbation, each
    /// paired with the perturbed link's comparison share (post-join share
    /// when a flow entered, pre-leave share when one left).
    affected: Vec<(u32, f64)>,
    /// Diagnostics: refresh scans and actual reschedules performed.
    refreshes: u64,
    reschedules: u64,
    /// Diagnostics: full path-minimum share recomputations.
    share_recomputes: u64,
}

/// Network-engine perf counters (diagnostics, surfaced through the MPI
/// runtime's `WorldStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetPerf {
    /// Neighbour flows visited while refreshing after a perturbation.
    pub refreshes: u64,
    /// Drain events actually rescheduled (estimate moved materially).
    pub reschedules: u64,
    /// Full path-minimum share recomputations performed.
    pub share_recomputes: u64,
}

/// Rate below which a flow is considered stalled; avoids division blow-ups
/// from floating-point corner cases. One byte per second.
const MIN_RATE: f64 = 1.0;

/// A drain event is rescheduled only when the new estimate moves by more
/// than this fraction of the remaining drain time (or fires early). Small
/// share fluctuations in steady pipelines thus keep their schedule; the
/// drain event *self-corrects* — if it fires with bytes still unsent it
/// re-arms at the true estimate — so accuracy is preserved, only
/// fast-forwarded deliveries are delayed by at most this fraction.
const RESCHED_TOL: f64 = 0.10;

impl Network {
    /// Create an engine over a fixed set of links.
    pub fn new(links: Vec<Link>) -> Network {
        let n = links.len();
        // An idle link's share is `capacity / 1` (the `.max(1)` clamp), and
        // dividing by one is exact, so seeding with the raw capacity is
        // bit-identical to the formula.
        let link_share = links.iter().map(|l| l.capacity).collect();
        let base_links = links.iter().map(|l| (l.capacity, l.latency)).collect();
        Network {
            links,
            base_links,
            slab: Vec::new(),
            free: Vec::new(),
            active: 0,
            link_flows: vec![Vec::new(); n],
            link_share,
            injected_bytes: 0,
            delivered_bytes: 0,
            dropped_bytes: 0,
            affected: Vec::new(),
            refreshes: 0,
            reschedules: 0,
            share_recomputes: 0,
        }
    }

    fn alloc(&mut self, flow: Flow) -> u32 {
        self.active += 1;
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(flow);
                i
            }
            None => {
                self.slab.push(Some(flow));
                (self.slab.len() - 1) as u32
            }
        }
    }

    /// The link table (for diagnostics and fabric queries).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Permanently rescale one link's pristine capacity and latency before
    /// any flow starts (a what-if intervention applied to a real re-run).
    /// Unlike [`Network::scale_link`], the *baseline* moves too, so later
    /// degradation windows scale relative to the intervened values.
    ///
    /// # Panics
    /// Panics if called while flows are active — the rescale would bypass
    /// the reschedule machinery.
    pub fn prescale_link(&mut self, link: u32, cap_factor: f64, lat_factor: f64) {
        assert_eq!(self.active, 0, "prescale_link requires an idle network");
        assert!(
            cap_factor > 0.0 && lat_factor > 0.0,
            "scale factors must be positive"
        );
        let l = link as usize;
        let cap = self.base_links[l].0 * cap_factor;
        let lat = Duration::from_nanos(
            (self.base_links[l].1.as_nanos() as f64 * lat_factor).round() as u64,
        );
        self.base_links[l] = (cap, lat);
        self.links[l].capacity = cap;
        self.links[l].latency = lat;
        self.link_share[l] = cap;
    }

    /// Number of flows currently in the network (draining or in tail).
    pub fn active_flows(&self) -> usize {
        self.active
    }

    /// Total bytes delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Total bytes injected into flows so far. Once the network is idle
    /// ([`Network::active_flows`] is zero) this must equal
    /// [`Network::delivered_bytes`] plus [`Network::dropped_bytes`] — the
    /// audit layer checks exactly that.
    pub fn injected_bytes(&self) -> u64 {
        self.injected_bytes
    }

    /// Total bytes consumed by doomed flows (injected faults) so far.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Visit every link currently carrying flows, for time-series
    /// sampling: calls `f(link_id, flow_count, utilization)` where
    /// `utilization` is the summed drain rate of the link's flows over
    /// its capacity (flows in tail contribute occupancy but no rate).
    /// Idle links are skipped — a large machine has mostly-idle lanes.
    pub fn for_each_link_load(&self, mut f: impl FnMut(u32, usize, f64)) {
        for (l, flows) in self.link_flows.iter().enumerate() {
            if flows.is_empty() {
                continue;
            }
            let mut used = 0.0;
            for &fi in flows {
                if let Some(Some(flow)) = self.slab.get(fi as usize) {
                    if let Phase::Draining { rate, .. } = flow.phase {
                        used += rate;
                    }
                }
            }
            let cap = self.links[l].capacity;
            let util = if cap > 0.0 { used / cap } else { 0.0 };
            f(l as u32, flows.len(), util);
        }
    }

    /// Diagnostics: perf counters accumulated so far.
    pub fn perf_counters(&self) -> NetPerf {
        NetPerf {
            refreshes: self.refreshes,
            reschedules: self.reschedules,
            share_recomputes: self.share_recomputes,
        }
    }

    /// Sum of path latencies for `path`.
    pub fn path_latency(&self, path: &Path) -> Duration {
        let mut d = Duration::ZERO;
        for l in path {
            d += self.links[l.0 as usize].latency;
        }
        d
    }

    /// Recompute a link's cached share after its occupancy changed. The
    /// expression matches the one historical queries used
    /// (`capacity / count.max(1)`), so cached values are bit-identical to
    /// what an on-the-fly recomputation would produce.
    fn set_share(&mut self, l: usize) {
        let count = self.link_flows[l].len().max(1) as f64;
        self.link_share[l] = self.links[l].capacity / count;
    }

    /// The equal-share rate a flow with `path` gets right now: the minimum
    /// cached link share along the path, clamped at [`MIN_RATE`].
    fn share_rate(&self, path: &Path) -> f64 {
        let mut rate = f64::INFINITY;
        for l in path {
            rate = rate.min(self.link_share[l.0 as usize]);
        }
        rate.max(MIN_RATE)
    }

    /// Time a hypothetical `bytes`-sized transfer over `path` would take
    /// under the *current* share allocation: path latency plus the drain
    /// at today's equal-share rate. The reliability layer uses this as its
    /// RTT stand-in when arming retransmission timers; it is an estimate,
    /// not a promise — shares move as flows come and go.
    pub fn estimate_transfer(&self, path: &Path, bytes: u64) -> Duration {
        let latency = self.path_latency(path);
        if bytes == 0 || path.is_empty() {
            return latency;
        }
        latency + Duration::from_secs_f64_ceil(bytes as f64 / self.share_rate(path))
    }

    /// Scale one link's capacity and latency to `cap_factor` / `lat_factor`
    /// times its *base* values (factors of 1.0 restore the link). Flows
    /// currently draining through the link are re-rated immediately via the
    /// usual refresh; latency changes apply to drains and launches that
    /// happen after the call.
    pub fn scale_link(
        &mut self,
        now: Time,
        link: u32,
        cap_factor: f64,
        lat_factor: f64,
        sched: &mut impl FlowScheduler,
    ) {
        let l = link as usize;
        let (base_cap, base_lat) = self.base_links[l];
        self.links[l].capacity = base_cap * cap_factor;
        self.links[l].latency =
            Duration::from_nanos((base_lat.as_nanos() as f64 * lat_factor).round() as u64);
        let old_share = self.link_share[l];
        self.set_share(l);
        let new_share = self.link_share[l];
        if new_share == old_share {
            return;
        }
        // Reuse the join/leave refresh machinery: shares that fell compare
        // against the new (lower) value, shares that rose against the old
        // one — the same dismissal logic as flow churn (see
        // `refresh_affected`).
        let rose = new_share > old_share;
        let cmp = if rose { old_share } else { new_share };
        self.affected.clear();
        for &fid in &self.link_flows[l] {
            self.affected.push((fid, cmp));
        }
        self.refresh_affected(now, sched, rose);
    }

    /// Inject a new flow at time `now`. Returns its id; a delivery (or
    /// drain) event is scheduled through `sched`.
    pub fn start_flow(
        &mut self,
        now: Time,
        spec: FlowSpec,
        sched: &mut impl FlowScheduler,
    ) -> FlowId {
        self.start_flow_doomed(now, spec, false, sched)
    }

    /// [`Network::start_flow`] with a fault verdict attached: a doomed
    /// flow drains and consumes bandwidth normally but reports
    /// [`NetStep::Dropped`] at delivery time instead of arriving.
    pub fn start_flow_doomed(
        &mut self,
        now: Time,
        spec: FlowSpec,
        doomed: bool,
        sched: &mut impl FlowScheduler,
    ) -> FlowId {
        let latency = self.path_latency(&spec.path);
        self.injected_bytes += spec.bytes;

        if spec.bytes == 0 || spec.path.is_empty() {
            // Control message or purely local hand-off: latency only.
            // Reserve the slot first so the scheduled event's id is right.
            let id = self.alloc(Flow {
                spec,
                phase: Phase::Tail,
                doomed,
                event: EventKey::default(),
                event_time: now + latency,
                slots: [0; MAX_PATH],
            });
            let event = sched.schedule(now + latency, FlowId(id as u64));
            self.slab[id as usize]
                .as_mut()
                .expect("just allocated")
                .event = event;
            return FlowId(id as u64);
        }

        let id = self.alloc(Flow {
            spec,
            phase: Phase::Draining {
                remaining: spec.bytes as f64,
                rate: 0.0,
                last_update: now,
            },
            doomed,
            event: EventKey::default(),
            event_time: Time::MAX,
            slots: [0; MAX_PATH],
        });
        // Join the links, recording this flow's slot in each list and
        // refreshing the cached shares as occupancy grows.
        for (i, l) in spec.path.as_slice().iter().enumerate() {
            let v = &mut self.link_flows[l.0 as usize];
            v.push(id);
            let slot = (v.len() - 1) as u32;
            self.slab[id as usize]
                .as_mut()
                .expect("just allocated")
                .slots[i] = slot;
            self.set_share(l.0 as usize);
        }
        // Collect the neighbours whose share may have changed, paired with
        // the post-join share of the link they were found on. The new flow
        // sits at the tail of every list it joined; skipping it reproduces
        // the pre-join neighbour set exactly.
        self.affected.clear();
        for l in &spec.path {
            let share = self.link_share[l.0 as usize];
            for &fid in &self.link_flows[l.0 as usize] {
                if fid != id {
                    self.affected.push((fid, share));
                }
            }
        }
        self.share_recomputes += 1;
        let rate = self.share_rate(&spec.path);
        let drain_in = Duration::from_secs_f64_ceil(spec.bytes as f64 / rate);
        let event = sched.schedule(now + drain_in, FlowId(id as u64));
        {
            let f = self.slab[id as usize].as_mut().expect("just allocated");
            f.event = event;
            f.event_time = now + drain_in;
            if let Phase::Draining { rate: r, .. } = &mut f.phase {
                *r = rate;
            }
        }
        self.refresh_affected(now, sched, false);
        FlowId(id as u64)
    }

    /// Handle a network event for `flow`: either the drain (last byte
    /// injected — the flow stops consuming bandwidth and its delivery is
    /// scheduled one path-latency later) or the delivery itself.
    pub fn handle_event(
        &mut self,
        now: Time,
        flow: FlowId,
        sched: &mut impl FlowScheduler,
    ) -> NetStep {
        let idx = flow.0 as usize;
        let draining = matches!(
            self.slab[idx]
                .as_ref()
                .expect("event for unknown flow")
                .phase,
            Phase::Draining { .. }
        );
        if draining {
            // Reconcile; if the stale schedule fired before the bytes are
            // really out, re-arm at the true estimate (self-correction).
            {
                let f = self.slab[idx].as_mut().expect("flow vanished");
                if let Phase::Draining {
                    remaining,
                    rate,
                    last_update,
                } = &mut f.phase
                {
                    let drained = *rate * now.saturating_since(*last_update).as_secs_f64();
                    *remaining = (*remaining - drained).max(0.0);
                    *last_update = now;
                    if *remaining > 1.0 {
                        let drain_in = Duration::from_secs_f64_ceil(*remaining / *rate);
                        let event = sched.schedule(now + drain_in, flow);
                        f.event = event;
                        f.event_time = now + drain_in;
                        return NetStep::Progress;
                    }
                }
            }
            let (path, tag, bytes) = {
                let f = self.slab[idx].as_mut().expect("flow vanished");
                f.phase = Phase::Tail;
                (f.spec.path, f.spec.tag, f.spec.bytes)
            };
            // Remember each link's share while this flow still occupies it —
            // the refresh prefilter needs the pre-leave value to tell which
            // neighbours were actually bottlenecked here.
            let mut old_shares = [0.0f64; MAX_PATH];
            for (i, l) in path.as_slice().iter().enumerate() {
                old_shares[i] = self.link_share[l.0 as usize];
            }
            // Stop consuming capacity; neighbours speed up. The slot map
            // makes each leave O(1): swap_remove this flow's recorded slot,
            // then repoint the slot of whichever flow got moved into it.
            for i in 0..path.len() {
                let l = path.as_slice()[i].0 as usize;
                let pos = self.slab[idx].as_ref().expect("flow vanished").slots[i] as usize;
                let v = &mut self.link_flows[l];
                debug_assert_eq!(v[pos], flow.0 as u32, "slot map out of sync");
                let last = v.len() - 1;
                v.swap_remove(pos);
                if pos != last {
                    let moved = v[pos];
                    let mf = self.slab[moved as usize]
                        .as_mut()
                        .expect("moved flow vanished");
                    for (j, ml) in mf.spec.path.as_slice().iter().enumerate() {
                        if ml.0 as usize == l && mf.slots[j] as usize == last {
                            mf.slots[j] = pos as u32;
                            break;
                        }
                    }
                }
                self.set_share(l);
            }
            self.affected.clear();
            for (i, l) in path.as_slice().iter().enumerate() {
                for &fid in &self.link_flows[l.0 as usize] {
                    self.affected.push((fid, old_shares[i]));
                }
            }
            let latency = self.path_latency(&path);
            let event = sched.schedule(now + latency, flow);
            {
                let f = self.slab[idx].as_mut().expect("flow vanished");
                f.event = event;
                f.event_time = now + latency;
            }
            self.refresh_affected(now, sched, true);
            NetStep::Drained { flow, tag, bytes }
        } else {
            let f = self.slab[idx].take().expect("flow vanished");
            self.active -= 1;
            self.free.push(flow.0 as u32);
            let delivery = Delivery {
                flow,
                tag: f.spec.tag,
                bytes: f.spec.bytes,
            };
            if f.doomed {
                self.dropped_bytes += f.spec.bytes;
                NetStep::Dropped(delivery)
            } else {
                self.delivered_bytes += f.spec.bytes;
                NetStep::Delivered(delivery)
            }
        }
    }

    /// Re-derive the rate of every affected flow, reconciling its remaining
    /// bytes at the old rate and rescheduling its drain event if the rate
    /// moved.
    ///
    /// `rose` says which way the perturbed link's share moved (a flow left:
    /// shares rise; a flow joined: shares fall). Each affected entry
    /// carries that link's comparison share, which lets most neighbours be
    /// dismissed in O(1) without recomputing their path minimum:
    ///
    /// * shares **fell** to `s`: a neighbour running at `rate <= s` keeps
    ///   its bottleneck (its path minimum is at most `s`), so its rate is
    ///   literally unchanged;
    /// * shares **rose** from `s`: a neighbour running at `rate < s` was
    ///   bottlenecked on some *other* link, so raising this one cannot
    ///   move its minimum.
    ///
    /// Both dismissals coincide exactly with cases where the full
    /// recomputation would return a bit-identical rate and the epsilon
    /// check below would skip anyway — the prefilter changes which work is
    /// done, never the outcome.
    fn refresh_affected(&mut self, now: Time, sched: &mut impl FlowScheduler, rose: bool) {
        let affected = std::mem::take(&mut self.affected);
        self.refreshes += affected.len() as u64;
        let mut reschedules = 0u64;
        for &(id, cmp) in &affected {
            let f = self.slab[id as usize]
                .as_ref()
                .expect("affected flow vanished");
            let current = match f.phase {
                Phase::Draining { rate, .. } => rate,
                Phase::Tail => continue,
            };
            let unaffected = if rose { current < cmp } else { current <= cmp };
            if unaffected {
                continue;
            }
            let path = f.spec.path;
            self.share_recomputes += 1;
            let new_rate = self.share_rate(&path);
            let f = self.slab[id as usize]
                .as_mut()
                .expect("affected flow vanished");
            let event_time = f.event_time;
            let Phase::Draining {
                remaining,
                rate,
                last_update,
            } = &mut f.phase
            else {
                continue;
            };
            if (*rate - new_rate).abs() <= 1e-9 * new_rate.max(*rate) {
                continue;
            }
            // Reconcile progress at the old rate, then switch.
            let dt = now.saturating_since(*last_update).as_secs_f64();
            *remaining = (*remaining - *rate * dt).max(0.0);
            *last_update = now;
            *rate = new_rate;
            // Keep the existing event unless the estimate moved materially:
            // a late event self-corrects on firing, an early one re-arms.
            let drain_in = Duration::from_secs_f64_ceil(*remaining / new_rate);
            let estimate = now + drain_in;
            let scheduled_in = event_time.saturating_since(now).as_nanos() as f64;
            let shift = (estimate.as_nanos() as f64 - event_time.as_nanos() as f64).abs();
            if shift <= (scheduled_in.max(drain_in.as_nanos() as f64)) * RESCHED_TOL {
                continue;
            }
            reschedules += 1;
            let old_event = f.event;
            let new_event = sched.schedule(estimate, FlowId(id as u64));
            f.event = new_event;
            f.event_time = estimate;
            sched.cancel(old_event);
        }
        self.reschedules += reschedules;
        self.affected = affected;
    }

    /// Test-only invariant: every cached link share equals the formula
    /// recomputed from scratch, bit for bit.
    #[cfg(test)]
    fn check_share_cache(&self) {
        for (i, link) in self.links.iter().enumerate() {
            let count = self.link_flows[i].len().max(1) as f64;
            assert_eq!(
                self.link_share[i].to_bits(),
                (link.capacity / count).to_bits(),
                "stale share cache on link {i}"
            );
        }
    }

    /// Test-only invariant: the slot map and the per-link flow lists agree
    /// in both directions.
    #[cfg(test)]
    fn check_slots(&self) {
        for (l, v) in self.link_flows.iter().enumerate() {
            for (pos, &id) in v.iter().enumerate() {
                let f = self.slab[id as usize]
                    .as_ref()
                    .expect("listed flow vanished");
                assert!(
                    f.spec
                        .path
                        .as_slice()
                        .iter()
                        .enumerate()
                        .any(|(j, pl)| pl.0 as usize == l && f.slots[j] as usize == pos),
                    "flow {id} at link {l} pos {pos} has no matching slot"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::links::LinkId;
    use adapt_sim::queue::EventQueue;

    /// Test scheduler backed directly by an EventQueue.
    struct Q(EventQueue<FlowId>);

    impl FlowScheduler for Q {
        fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey {
            self.0.schedule(at, flow)
        }
        fn cancel(&mut self, key: EventKey) {
            self.0.cancel(key);
        }
    }

    fn one_link(bw: f64, lat_ns: u64) -> Network {
        Network::new(vec![Link {
            class: crate::links::LinkClass::Backbone,
            capacity: bw,
            latency: Duration::from_nanos(lat_ns),
        }])
    }

    fn drive_until_delivery(net: &mut Network, q: &mut Q) -> Vec<(Time, Delivery)> {
        let mut out = Vec::new();
        while let Some((t, fid)) = q.0.pop() {
            if let NetStep::Delivered(d) = net.handle_event(t, fid, q) {
                out.push((t, d));
            }
        }
        out
    }

    #[test]
    fn single_flow_hockney_time() {
        // 1e6 bytes at 1e9 B/s = 1 ms drain + 1 us latency.
        let mut net = one_link(1e9, 1_000);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 7,
            },
            &mut q,
        );
        let deliveries = drive_until_delivery(&mut net, &mut q);
        assert_eq!(deliveries.len(), 1);
        let (t, d) = deliveries[0];
        assert_eq!(d.tag, 7);
        assert_eq!(t.as_nanos(), 1_000_000 + 1_000);
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.delivered_bytes(), 1_000_000);
    }

    #[test]
    fn two_flows_share_fairly() {
        // Two equal flows on one link: each runs at half speed for the
        // duration, so both finish at 2 ms (plus latency).
        let mut net = one_link(1e9, 0);
        let mut q = Q(EventQueue::new());
        for tag in 0..2 {
            net.start_flow(
                Time::ZERO,
                FlowSpec {
                    path: Path::new(&[LinkId(0)]),
                    bytes: 1_000_000,
                    tag,
                },
                &mut q,
            );
        }
        let deliveries = drive_until_delivery(&mut net, &mut q);
        assert_eq!(deliveries.len(), 2);
        for (t, _) in deliveries {
            assert!(t.as_nanos().abs_diff(2_000_000) <= 2);
        }
    }

    #[test]
    fn three_flows_get_third_bandwidth() {
        // The §4.1 congestion claim: three concurrent flows on one PCIe
        // direction each see one third of the bandwidth.
        let mut net = one_link(9e9, 0);
        let mut q = Q(EventQueue::new());
        for tag in 0..3 {
            net.start_flow(
                Time::ZERO,
                FlowSpec {
                    path: Path::new(&[LinkId(0)]),
                    bytes: 3_000_000,
                    tag,
                },
                &mut q,
            );
        }
        let deliveries = drive_until_delivery(&mut net, &mut q);
        // 3 MB at 3 GB/s = 1 ms each.
        for (t, _) in &deliveries {
            assert!(t.as_nanos().abs_diff(1_000_000) <= 2);
        }
    }

    #[test]
    fn late_second_flow_speeds_up_after_first_drains() {
        let mut net = one_link(1e9, 0);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 0,
            },
            &mut q,
        );
        let d = drive_until_delivery(&mut net, &mut q);
        assert_eq!(d[0].0.as_nanos(), 1_000_000);
        net.start_flow(
            Time(1_000_000),
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 1,
            },
            &mut q,
        );
        let d = drive_until_delivery(&mut net, &mut q);
        assert_eq!(d[0].0.as_nanos(), 2_000_000);
    }

    #[test]
    fn preempted_flow_finishes_later() {
        // A (2 MB) starts alone; B (1 MB) joins at 0.5 ms. From then on each
        // gets 0.5 GB/s. B drains after 2 ms shared (at t=2.5ms), after
        // which A runs alone: A drained 0.5 MB by 0.5 ms, another 1 MB
        // while sharing, 0.5 MB left alone at 1 GB/s -> finishes at 3.0 ms.
        let mut net = one_link(1e9, 0);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 2_000_000,
                tag: 0,
            },
            &mut q,
        );
        net.start_flow(
            Time(500_000),
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 1,
            },
            &mut q,
        );
        let deliveries = drive_until_delivery(&mut net, &mut q);
        let t_b = deliveries.iter().find(|(_, d)| d.tag == 1).unwrap().0;
        let t_a = deliveries.iter().find(|(_, d)| d.tag == 0).unwrap().0;
        assert!(t_b.as_nanos().abs_diff(2_500_000) <= 2, "B at {t_b:?}");
        assert!(t_a.as_nanos().abs_diff(3_000_000) <= 4, "A at {t_a:?}");
    }

    #[test]
    fn equal_share_on_shared_bottleneck() {
        // Links: L0 cap 1.0, L1 cap 3.0 (GB/s). Flow A on [L0], flow B on
        // [L0, L1], flow C on [L1]. Equal-share: A and B get 0.5 each on
        // L0; C gets min(3.0 / 2) = 1.5 on L1 (the equal-share model does
        // not redistribute B's unused L1 share — see module docs).
        let mk = |cap| Link {
            class: crate::links::LinkClass::Backbone,
            capacity: cap,
            latency: Duration::ZERO,
        };
        let mut net = Network::new(vec![mk(1e9), mk(3e9)]);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 500_000,
                tag: 0,
            },
            &mut q,
        );
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0), LinkId(1)]),
                bytes: 500_000,
                tag: 1,
            },
            &mut q,
        );
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(1)]),
                bytes: 1_500_000,
                tag: 2,
            },
            &mut q,
        );
        let deliveries = drive_until_delivery(&mut net, &mut q);
        // A and B: 0.5 MB at 0.5 GB/s = 1 ms. C: 1.5 MB at 1.5 GB/s = 1 ms.
        for (t, d) in &deliveries {
            assert!(
                t.as_nanos().abs_diff(1_000_000) <= 2,
                "flow {} at {t:?}",
                d.tag
            );
        }
    }

    #[test]
    fn zero_byte_flow_is_latency_only() {
        let mut net = one_link(1e9, 2_000);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 0,
                tag: 9,
            },
            &mut q,
        );
        let d = drive_until_delivery(&mut net, &mut q);
        assert_eq!(d[0].0.as_nanos(), 2_000);
    }

    #[test]
    fn empty_path_delivers_immediately() {
        let mut net = one_link(1e9, 2_000);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time(5),
            FlowSpec {
                path: Path::EMPTY,
                bytes: 123,
                tag: 4,
            },
            &mut q,
        );
        let d = drive_until_delivery(&mut net, &mut q);
        assert_eq!(d[0].0, Time(5));
        assert_eq!(d[0].1.bytes, 123);
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let mut net = one_link(7e8, 300);
            let mut q = Q(EventQueue::new());
            for tag in 0..20 {
                net.start_flow(
                    Time(tag * 10_000),
                    FlowSpec {
                        path: Path::new(&[LinkId(0)]),
                        bytes: 100_000 + tag * 7_777,
                        tag,
                    },
                    &mut q,
                );
            }
            drive_until_delivery(&mut net, &mut q)
                .into_iter()
                .map(|(t, d)| (t.as_nanos(), d.tag))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn share_cache_and_slot_map_survive_churn() {
        // Overlapping paths over a small fabric, staggered starts, drains
        // interleaved with joins: after every event the cached shares must
        // equal the from-scratch formula and the slot map must be
        // consistent both ways.
        let mk = |cap| Link {
            class: crate::links::LinkClass::Backbone,
            capacity: cap,
            latency: Duration::from_nanos(100),
        };
        let mut net = Network::new(vec![mk(1e9), mk(2e9), mk(4e9), mk(8e9)]);
        let mut q = Q(EventQueue::new());
        let paths = [
            Path::new(&[LinkId(0)]),
            Path::new(&[LinkId(0), LinkId(1)]),
            Path::new(&[LinkId(1), LinkId(2)]),
            Path::new(&[LinkId(2), LinkId(3)]),
            Path::new(&[LinkId(0), LinkId(2), LinkId(3)]),
        ];
        let mut tag = 0u64;
        let mut seed = 1u64;
        for wave in 0..40u64 {
            let wave_start = Time(wave * 20_000);
            // Process everything due before this wave so joins and leaves
            // overlap without time running backwards.
            while q.0.peek_time().is_some_and(|t| t <= wave_start) {
                let (t, fid) = q.0.pop().unwrap();
                net.handle_event(t, fid, &mut q);
                net.check_share_cache();
                net.check_slots();
            }
            for (i, p) in paths.iter().enumerate() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bytes = 10_000 + (seed >> 48);
                net.start_flow(
                    wave_start + Duration::from_nanos(i as u64),
                    FlowSpec {
                        path: *p,
                        bytes,
                        tag,
                    },
                    &mut q,
                );
                tag += 1;
                net.check_share_cache();
                net.check_slots();
            }
        }
        while let Some((t, fid)) = q.0.pop() {
            net.handle_event(t, fid, &mut q);
            net.check_share_cache();
            net.check_slots();
        }
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.injected_bytes(), net.delivered_bytes());
    }

    #[test]
    fn doomed_flow_consumes_bandwidth_but_never_arrives() {
        // A doomed flow shares the link like any other (the honest model of
        // a transfer corrupted in flight), then reports Dropped.
        let mut net = one_link(1e9, 0);
        let mut q = Q(EventQueue::new());
        net.start_flow_doomed(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 0,
            },
            true,
            &mut q,
        );
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 1,
            },
            &mut q,
        );
        let mut dropped = Vec::new();
        let mut delivered = Vec::new();
        while let Some((t, fid)) = q.0.pop() {
            match net.handle_event(t, fid, &mut q) {
                NetStep::Dropped(d) => dropped.push((t, d)),
                NetStep::Delivered(d) => delivered.push((t, d)),
                _ => {}
            }
        }
        assert_eq!(dropped.len(), 1);
        assert_eq!(delivered.len(), 1);
        assert_eq!(dropped[0].1.tag, 0);
        // Both flows shared the link: each finishes around 2 ms.
        assert!(dropped[0].0.as_nanos().abs_diff(2_000_000) <= 2);
        assert!(delivered[0].0.as_nanos().abs_diff(2_000_000) <= 2);
        assert_eq!(net.dropped_bytes(), 1_000_000);
        assert_eq!(net.delivered_bytes(), 1_000_000);
        assert_eq!(
            net.injected_bytes(),
            net.delivered_bytes() + net.dropped_bytes()
        );
    }

    #[test]
    fn scale_link_rerates_inflight_flows() {
        // One flow alone at 1 GB/s; halfway through, the link degrades to
        // 10%: 1 MB total = 0.5 ms at full speed + 5 ms for the rest.
        let mut net = one_link(1e9, 0);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 0,
            },
            &mut q,
        );
        // Drive events up to the degradation instant.
        while q.0.peek_time().is_some_and(|t| t <= Time(500_000)) {
            let (t, fid) = q.0.pop().unwrap();
            net.handle_event(t, fid, &mut q);
        }
        net.scale_link(Time(500_000), 0, 0.1, 1.0, &mut q);
        net.check_share_cache();
        let d = drive_until_delivery(&mut net, &mut q);
        assert_eq!(d.len(), 1);
        assert!(
            d[0].0.as_nanos().abs_diff(5_500_000) <= 4,
            "degraded delivery at {:?}",
            d[0].0
        );
        // Restoring uses base values, not compounded ones.
        net.scale_link(Time(6_000_000), 0, 1.0, 1.0, &mut q);
        assert_eq!(net.links()[0].capacity, 1e9);
    }

    #[test]
    fn estimate_transfer_matches_hockney() {
        let net = one_link(1e9, 1_000);
        let p = Path::new(&[LinkId(0)]);
        assert_eq!(net.estimate_transfer(&p, 0), Duration::from_nanos(1_000));
        assert_eq!(
            net.estimate_transfer(&p, 1_000_000),
            Duration::from_nanos(1_001_000)
        );
        assert_eq!(net.estimate_transfer(&Path::EMPTY, 123), Duration::ZERO);
    }

    #[test]
    fn disjoint_links_do_not_interact() {
        // A flow joining link 1 must not reschedule flows on link 0.
        let mk = |cap| Link {
            class: crate::links::LinkClass::Backbone,
            capacity: cap,
            latency: Duration::ZERO,
        };
        let mut net = Network::new(vec![mk(1e9), mk(1e9)]);
        let mut q = Q(EventQueue::new());
        net.start_flow(
            Time::ZERO,
            FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes: 1_000_000,
                tag: 0,
            },
            &mut q,
        );
        net.start_flow(
            Time(100),
            FlowSpec {
                path: Path::new(&[LinkId(1)]),
                bytes: 1_000_000,
                tag: 1,
            },
            &mut q,
        );
        let deliveries = drive_until_delivery(&mut net, &mut q);
        let t0 = deliveries.iter().find(|(_, d)| d.tag == 0).unwrap().0;
        let t1 = deliveries.iter().find(|(_, d)| d.tag == 1).unwrap().0;
        assert_eq!(t0.as_nanos(), 1_000_000);
        assert_eq!(t1.as_nanos(), 1_000_100);
    }
}
