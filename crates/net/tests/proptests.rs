//! Property-based tests of the flow-level network engine: conservation,
//! fairness, and timing invariants.

use adapt_net::{FlowId, FlowScheduler, FlowSpec, Link, LinkClass, LinkId, NetStep, Network, Path};
use adapt_sim::queue::{EventKey, EventQueue};
use adapt_sim::time::{Duration, Time};
use proptest::prelude::*;

struct Q(EventQueue<FlowId>);

impl FlowScheduler for Q {
    fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey {
        self.0.schedule(at, flow)
    }
    fn cancel(&mut self, key: EventKey) {
        self.0.cancel(key);
    }
}

fn drive(net: &mut Network, q: &mut Q) -> Vec<(Time, u64, u64)> {
    let mut out = Vec::new();
    while let Some((t, fid)) = q.0.pop() {
        if let NetStep::Delivered(d) = net.handle_event(t, fid, q) {
            out.push((t, d.tag, d.bytes));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every injected flow is delivered exactly once, bytes are conserved,
    /// and no flow beats the physical lower bound latency + size/capacity.
    #[test]
    fn flows_conserve_bytes_and_respect_physics(
        capacity_mbs in 1f64..10_000.0,
        latency_ns in 0u64..100_000,
        flows in proptest::collection::vec((0u64..10_000_000, 0u64..1_000_000), 1..40),
    ) {
        let capacity = capacity_mbs * 1e6;
        let mut net = Network::new(vec![Link {
            class: LinkClass::Backbone,
            capacity,
            latency: Duration::from_nanos(latency_ns),
        }]);
        let mut q = Q(EventQueue::new());
        let mut injected = 0u64;
        let mut starts = Vec::new();
        for (i, &(start_ns, bytes)) in flows.iter().enumerate() {
            let start = Time(start_ns);
            starts.push((start, bytes));
            injected += bytes;
            // Interleave injection with progress: injections must happen in
            // time order relative to deliveries, so schedule via a sorted
            // plan instead. Simpler: inject in sorted order up front.
            let _ = i;
        }
        starts.sort();
        let mut deliveries = Vec::new();
        for (i, &(start, bytes)) in starts.iter().enumerate() {
            // Drain any events before this start time (recording deliveries).
            while let Some(t) = q.0.peek_time() {
                if t > start { break; }
                let (t, fid) = q.0.pop().unwrap();
                if let NetStep::Delivered(d) = net.handle_event(t, fid, &mut q) {
                    deliveries.push((t, d.tag, d.bytes));
                }
            }
            net.start_flow(start, FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes,
                tag: i as u64,
            }, &mut q);
        }
        deliveries.extend(drive(&mut net, &mut q));
        prop_assert_eq!(deliveries.len(), starts.len());
        let delivered: u64 = deliveries.iter().map(|&(_, _, b)| b).sum();
        prop_assert_eq!(delivered, injected);
        prop_assert_eq!(net.active_flows(), 0);
        // Physical lower bound per flow.
        for (i, &(start, bytes)) in starts.iter().enumerate() {
            let (t, _, _) = deliveries.iter().find(|&&(_, tag, _)| tag == i as u64).unwrap();
            let min_ns = latency_ns as f64 + (bytes as f64 / capacity) * 1e9;
            prop_assert!(
                t.as_nanos() as f64 >= start.as_nanos() as f64 + min_ns - 2.0,
                "flow {i} of {bytes}B arrived impossibly fast: {t:?}"
            );
        }
    }

    /// Two identical flows injected together finish together (fairness),
    /// and k concurrent flows take k times as long as one.
    #[test]
    fn equal_flows_share_equally(k in 1u64..12, bytes in 1_000u64..5_000_000) {
        let mut net = Network::new(vec![Link {
            class: LinkClass::Backbone,
            capacity: 1e9,
            latency: Duration::ZERO,
        }]);
        let mut q = Q(EventQueue::new());
        for tag in 0..k {
            net.start_flow(Time::ZERO, FlowSpec {
                path: Path::new(&[LinkId(0)]),
                bytes,
                tag,
            }, &mut q);
        }
        let deliveries = drive(&mut net, &mut q);
        let first = deliveries[0].0;
        for &(t, _, _) in &deliveries {
            // Ceil-rounded drain estimates may differ by a nanosecond.
            prop_assert!(t.as_nanos().abs_diff(first.as_nanos()) <= 2,
                "equal flows must finish together: {t:?} vs {first:?}");
        }
        let expect_ns = (k as f64 * bytes as f64 / 1e9) * 1e9;
        let got = first.as_nanos() as f64;
        prop_assert!((got - expect_ns).abs() <= k as f64 * 2.0 + 2.0,
            "expected ~{expect_ns}ns got {got}ns");
    }

    /// Multi-link paths are bottlenecked by their slowest link.
    #[test]
    fn path_bottleneck(cap_a in 1f64..100.0, cap_b in 1f64..100.0, mb in 1u64..16) {
        let bytes = mb * 1_000_000;
        let mk = |cap: f64| Link {
            class: LinkClass::Backbone,
            capacity: cap * 1e6,
            latency: Duration::ZERO,
        };
        let mut net = Network::new(vec![mk(cap_a), mk(cap_b)]);
        let mut q = Q(EventQueue::new());
        net.start_flow(Time::ZERO, FlowSpec {
            path: Path::new(&[LinkId(0), LinkId(1)]),
            bytes,
            tag: 0,
        }, &mut q);
        let deliveries = drive(&mut net, &mut q);
        let expect_s = bytes as f64 / (cap_a.min(cap_b) * 1e6);
        let got_s = deliveries[0].0.as_secs_f64();
        prop_assert!((got_s - expect_s).abs() / expect_s < 1e-6);
    }
}
