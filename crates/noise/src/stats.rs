//! Slowdown reporting, matching the presentation of the paper's Figure 7
//! (bars annotated with "% slowdown under noise").

/// Paper-style slowdown report for one (library, operation) cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowdownReport {
    /// Mean completion time with no noise, in microseconds.
    pub baseline_us: f64,
    /// Mean completion time under noise, in microseconds.
    pub noisy_us: f64,
}

impl SlowdownReport {
    /// Percentage slowdown relative to the noise-free baseline — the number
    /// printed above the bars in Figure 7 (e.g. `24` for 24%).
    pub fn slowdown_percent(&self) -> f64 {
        if self.baseline_us <= 0.0 {
            return 0.0;
        }
        (self.noisy_us / self.baseline_us - 1.0) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_math() {
        let r = SlowdownReport {
            baseline_us: 100.0,
            noisy_us: 124.0,
        };
        assert!((r.slowdown_percent() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_guard() {
        let r = SlowdownReport {
            baseline_us: 0.0,
            noisy_us: 5.0,
        };
        assert_eq!(r.slowdown_percent(), 0.0);
    }
}
