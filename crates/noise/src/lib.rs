//! # adapt-noise — system-noise injection
//!
//! Reproduces the noise model of the paper's §5.1.1: each rank suffers
//! preemption *windows* at a fixed frequency (10 Hz) with uniformly
//! distributed durations (0–10 ms for an average 5% duty cycle, 0–20 ms
//! for 10%), mirroring the kernel-injection methodology of Beckman et al.
//! that the paper cites.
//!
//! During a window the rank's CPU makes no progress: callbacks are
//! deferred and in-progress handler work is stretched. In-flight network
//! transfers continue (DMA does not need the host CPU) — this asymmetry
//! is exactly what lets ADAPT's outstanding operations absorb noise while
//! synchronization-heavy baselines amplify it.

pub mod model;
pub mod stats;

pub use model::{ClusterNoise, DurationLaw, NoiseSpec, RankNoise};
pub use stats::SlowdownReport;
