//! Fixed-frequency uniform-duration noise processes.

use adapt_faults::Schedule;
use adapt_sim::rng::{MasterSeed, StreamTag};
use adapt_sim::time::{Duration, Time};
use rand::rngs::SmallRng;
use rand::Rng;

/// Distribution of noise-window durations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DurationLaw {
    /// Uniform on `[0, max]` — the paper's §5.1.1 parameterization.
    Uniform,
    /// Exponential with mean `max / 2` (clipped at `3 × max` so windows
    /// never overlap the next period) — heavier tail, same mean as the
    /// uniform law, for sensitivity studies.
    Exponential,
}

/// Statistical description of one rank's noise process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseSpec {
    /// Interval between successive noise events (the paper uses 100 ms,
    /// i.e. a fixed 10 Hz frequency).
    pub period: Duration,
    /// Scale of the duration law: uniform draws from `[0, max_duration]`;
    /// exponential has mean `max_duration / 2`.
    pub max_duration: Duration,
    /// Shape of the duration distribution.
    pub law: DurationLaw,
}

impl NoiseSpec {
    /// The paper's parameterization: 10 Hz with an average duty cycle of
    /// `percent`. 5% ⇒ uniform 0–10 ms; 10% ⇒ uniform 0–20 ms.
    pub fn uniform_percent(percent: f64) -> NoiseSpec {
        assert!((0.0..50.0).contains(&percent), "duty cycle out of range");
        let period = Duration::from_millis(100);
        let max = Duration::from_secs_f64(2.0 * (percent / 100.0) * period.as_secs_f64());
        NoiseSpec {
            period,
            max_duration: max,
            law: DurationLaw::Uniform,
        }
    }

    /// Same mean duty cycle as [`NoiseSpec::uniform_percent`] but with
    /// exponentially distributed (heavy-tailed) window durations.
    pub fn exponential_percent(percent: f64) -> NoiseSpec {
        NoiseSpec {
            law: DurationLaw::Exponential,
            ..NoiseSpec::uniform_percent(percent)
        }
    }

    /// Average fraction of CPU time stolen.
    pub fn duty_cycle(&self) -> f64 {
        (self.max_duration.as_secs_f64() / 2.0) / self.period.as_secs_f64()
    }
}

/// One rank's lazily generated stream of noise windows.
///
/// Window `i` starts at `phase + i·period` (the phase is drawn once per
/// rank so ranks are not synchronized) and lasts `U(0, max_duration)`.
/// Windows never overlap as long as `max_duration < period`.
#[derive(Clone, Debug)]
pub struct RankNoise {
    spec: NoiseSpec,
    phase: Duration,
    rng: SmallRng,
    /// Generated windows, in order (appended verbatim — the schedule's
    /// defer/finish-work arithmetic is shared with injected fault stalls).
    windows: Schedule,
    /// Index of the next window to generate.
    next_index: u64,
}

impl RankNoise {
    /// Create the process for one rank from its derived seed.
    pub fn new(spec: NoiseSpec, seed: u64) -> RankNoise {
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let phase =
            Duration::from_secs_f64(rng.random_range(0.0..spec.period.as_secs_f64().max(1e-12)));
        RankNoise {
            spec,
            phase,
            rng,
            windows: Schedule::empty(),
            next_index: 0,
        }
    }

    /// Ensure windows are generated past time `t`.
    fn ensure(&mut self, t: Time) {
        while self.windows.last().map(|(s, _)| s <= t).unwrap_or(true) {
            let start = Time::ZERO
                + self.phase
                + Duration::from_nanos(self.next_index.saturating_mul(self.spec.period.as_nanos()));
            let max = self.spec.max_duration.as_secs_f64().max(1e-12);
            let dur = Duration::from_secs_f64(match self.spec.law {
                DurationLaw::Uniform => self.rng.random_range(0.0..=max),
                DurationLaw::Exponential => {
                    // Inverse-CDF sampling, mean max/2, clipped at 3·max so
                    // successive windows never overlap (max < period / 3 is
                    // guaranteed by the percent constructors).
                    let u: f64 = self.rng.random_range(1e-12..1.0);
                    (-(u.ln()) * max / 2.0).min(3.0 * max)
                }
            });
            self.windows.push_back(start, start + dur);
            self.next_index += 1;
            if self.spec.max_duration.is_zero() {
                // Degenerate zero-noise spec: one dummy window is enough.
                break;
            }
        }
    }

    /// Earliest instant at or after `t` at which the CPU is not preempted.
    pub fn defer(&mut self, t: Time) -> Time {
        if self.spec.max_duration.is_zero() {
            return t;
        }
        self.ensure(t);
        self.windows.defer(t)
    }

    /// Completion time of `work` CPU time starting at `start`, accounting
    /// for preemption windows (work pauses during windows and resumes
    /// after).
    pub fn finish_work(&mut self, start: Time, work: Duration) -> Time {
        if self.spec.max_duration.is_zero() {
            return start + work;
        }
        let mut cur = self.defer(start);
        let mut left = work;
        loop {
            if left.is_zero() {
                return cur;
            }
            // Find the next window beginning after `cur`.
            self.ensure(cur + left);
            match self.windows.next_blocking(cur) {
                Some((s, e)) if s <= cur => {
                    // Inside a window (possible when called directly).
                    cur = e;
                }
                Some((s, e)) if s < cur + left => {
                    let done = s - cur;
                    left = Duration::from_nanos(left.as_nanos() - done.as_nanos());
                    cur = e;
                }
                _ => return cur + left,
            }
        }
    }

    /// Busy time available on this rank in `[start, deadline)` — elapsed
    /// span minus preempted time. The stall-composition logic uses this to
    /// account partial progress before a frozen window begins.
    pub fn work_in(&mut self, start: Time, deadline: Time) -> Duration {
        if self.spec.max_duration.is_zero() {
            return deadline.saturating_since(start);
        }
        self.ensure(deadline);
        self.windows.work_in(start, deadline)
    }

    /// Total preempted time in `[0, until)`, for reporting.
    pub fn stolen_until(&mut self, until: Time) -> Duration {
        if self.spec.max_duration.is_zero() {
            return Duration::ZERO;
        }
        self.ensure(until);
        self.windows.stolen_until(until)
    }

    /// Generate windows out to `until` and return every window generated
    /// so far. The stream is deterministic and idempotent, so exporting
    /// never perturbs later `defer`/`finish_work` queries — the what-if
    /// engine relies on this to snapshot the process at run end.
    pub fn windows_until(&mut self, until: Time) -> Vec<(Time, Time)> {
        if self.spec.max_duration.is_zero() {
            return Vec::new();
        }
        self.ensure(until);
        self.windows.windows().to_vec()
    }
}

/// Per-rank noise for a whole job. `None` entries are noise-free ranks.
#[derive(Clone, Debug)]
pub struct ClusterNoise {
    ranks: Vec<Option<RankNoise>>,
}

impl ClusterNoise {
    /// No noise anywhere (the baseline configuration).
    pub fn silent(nranks: u32) -> ClusterNoise {
        ClusterNoise {
            ranks: vec![None; nranks as usize],
        }
    }

    /// Identical independent noise processes on every rank, seeded from the
    /// master seed (stream = `Noise`, index = rank).
    pub fn uniform(nranks: u32, spec: NoiseSpec, seed: MasterSeed) -> ClusterNoise {
        let ranks = (0..nranks)
            .map(|r| {
                if spec.max_duration.is_zero() {
                    None
                } else {
                    Some(RankNoise::new(
                        spec,
                        seed.stream(StreamTag::Noise, r as u64),
                    ))
                }
            })
            .collect();
        ClusterNoise { ranks }
    }

    /// Noise on a single rank only (used by the noise-propagation study).
    pub fn single_rank(nranks: u32, noisy: u32, spec: NoiseSpec, seed: MasterSeed) -> ClusterNoise {
        ClusterNoise::on_ranks(nranks, &[noisy], spec, seed)
    }

    /// Noise on an explicit subset of ranks; all other ranks are clean.
    pub fn on_ranks(nranks: u32, noisy: &[u32], spec: NoiseSpec, seed: MasterSeed) -> ClusterNoise {
        let mut cn = ClusterNoise::silent(nranks);
        if spec.max_duration.is_zero() {
            return cn;
        }
        for &r in noisy {
            cn.ranks[r as usize] = Some(RankNoise::new(
                spec,
                seed.stream(StreamTag::Noise, r as u64),
            ));
        }
        cn
    }

    /// Number of ranks covered.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when no rank has a noise process.
    pub fn is_empty(&self) -> bool {
        self.ranks.iter().all(|r| r.is_none())
    }

    /// Earliest instant at or after `t` at which `rank`'s CPU can run.
    pub fn defer(&mut self, rank: u32, t: Time) -> Time {
        match &mut self.ranks[rank as usize] {
            Some(n) => n.defer(t),
            None => t,
        }
    }

    /// Completion time of `work` CPU time on `rank` starting at `start`.
    pub fn finish_work(&mut self, rank: u32, start: Time, work: Duration) -> Time {
        match &mut self.ranks[rank as usize] {
            Some(n) => n.finish_work(start, work),
            None => start + work,
        }
    }

    /// Busy time available to `rank` in `[start, deadline)`.
    pub fn work_in(&mut self, rank: u32, start: Time, deadline: Time) -> Duration {
        match &mut self.ranks[rank as usize] {
            Some(n) => n.work_in(start, deadline),
            None => deadline.saturating_since(start),
        }
    }

    /// Remove `rank`'s noise process entirely (the "what if this rank had
    /// no noise" intervention applied to a real re-run).
    pub fn silence_rank(&mut self, rank: u32) {
        self.ranks[rank as usize] = None;
    }

    /// Export `rank`'s preemption windows generated out to `until`
    /// (empty for a clean rank). See [`RankNoise::windows_until`].
    pub fn export_windows(&mut self, rank: u32, until: Time) -> Vec<(Time, Time)> {
        match &mut self.ranks[rank as usize] {
            Some(n) => n.windows_until(until),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_ms(period_ms: u64, max_ms: u64) -> NoiseSpec {
        NoiseSpec {
            period: Duration::from_millis(period_ms),
            max_duration: Duration::from_millis(max_ms),
            law: DurationLaw::Uniform,
        }
    }

    #[test]
    fn percent_parameterization_matches_paper() {
        let five = NoiseSpec::uniform_percent(5.0);
        assert_eq!(five.period, Duration::from_millis(100));
        assert_eq!(five.max_duration, Duration::from_millis(10));
        assert!((five.duty_cycle() - 0.05).abs() < 1e-12);
        let ten = NoiseSpec::uniform_percent(10.0);
        assert_eq!(ten.max_duration, Duration::from_millis(20));
    }

    #[test]
    fn defer_skips_windows() {
        let mut n = RankNoise::new(spec_ms(100, 10), 1);
        n.ensure(Time::ZERO + Duration::from_millis(1000));
        let (s0, e0) = n.windows.windows()[0];
        assert!(e0 > s0, "window has positive duration almost surely");
        // Before the window: unchanged.
        let before = Time(s0.as_nanos().saturating_sub(1));
        assert_eq!(n.defer(before), before);
        // Inside: deferred to the end.
        let inside = Time(s0.as_nanos() + (e0.as_nanos() - s0.as_nanos()) / 2);
        assert_eq!(n.defer(inside), e0);
        // Exactly at the end: runnable.
        assert_eq!(n.defer(e0), e0);
    }

    #[test]
    fn finish_work_stretches_across_window() {
        let mut n = RankNoise::new(spec_ms(100, 10), 7);
        n.ensure(Time::ZERO + Duration::from_millis(500));
        let (s0, e0) = n.windows.windows()[0];
        // Start 1 ms before the window with 2 ms of work: 1 ms done before,
        // the window passes, 1 ms after.
        let start = Time(s0.as_nanos() - 1_000_000);
        let done = n.finish_work(start, Duration::from_millis(2));
        assert_eq!(done.as_nanos(), e0.as_nanos() + 1_000_000);
    }

    #[test]
    fn finish_work_without_noise_is_additive() {
        let mut cn = ClusterNoise::silent(4);
        let t = cn.finish_work(2, Time(100), Duration::from_nanos(50));
        assert_eq!(t, Time(150));
        assert_eq!(cn.defer(1, Time(42)), Time(42));
        assert!(cn.is_empty());
    }

    #[test]
    fn cluster_noise_is_deterministic_per_seed() {
        let mk = || {
            let mut cn = ClusterNoise::uniform(8, spec_ms(100, 10), MasterSeed(5));
            (0..8)
                .map(|r| cn.defer(r, Time::ZERO + Duration::from_millis(50)).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
        // Different ranks have different phases/durations (almost surely),
        // so the same work finishes at different times on different ranks.
        let mut cn = ClusterNoise::uniform(8, spec_ms(100, 10), MasterSeed(5));
        let d: Vec<u64> = (0..8)
            .map(|r| cn.finish_work(r, Time::ZERO, Duration::from_millis(1000)).0)
            .collect();
        assert!(d.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn stolen_time_tracks_duty_cycle() {
        let mut n = RankNoise::new(NoiseSpec::uniform_percent(10.0), 3);
        let horizon = Time::ZERO + Duration::from_millis(100 * 1000); // 100 s
        let stolen = n.stolen_until(horizon);
        let frac = stolen.as_secs_f64() / horizon.as_secs_f64();
        assert!(
            (frac - 0.10).abs() < 0.02,
            "empirical duty cycle {frac} should be near 0.10"
        );
    }

    #[test]
    fn single_rank_noise() {
        let mut cn = ClusterNoise::single_rank(4, 2, spec_ms(100, 50), MasterSeed(1));
        assert!(!cn.is_empty());
        // Rank 0 is clean.
        assert_eq!(cn.defer(0, Time(12345)), Time(12345));
    }

    #[test]
    fn exponential_law_has_matching_duty_cycle() {
        let mut n = RankNoise::new(NoiseSpec::exponential_percent(10.0), 9);
        let horizon = Time::ZERO + Duration::from_millis(100 * 1000);
        let stolen = n.stolen_until(horizon);
        let frac = stolen.as_secs_f64() / horizon.as_secs_f64();
        assert!(
            (frac - 0.10).abs() < 0.03,
            "exponential duty cycle {frac} should be near 0.10"
        );
    }

    #[test]
    fn exponential_windows_never_overlap_period() {
        let spec = NoiseSpec::exponential_percent(10.0); // max 20ms, clip 60ms < 100ms
        let mut n = RankNoise::new(spec, 4);
        n.ensure(Time::ZERO + Duration::from_millis(5_000));
        // Windows are disjoint and ordered.
        let w = n.windows.windows().to_vec();
        for pair in w.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "windows overlap: {pair:?}");
        }
    }

    #[test]
    fn work_spanning_multiple_windows() {
        let mut n = RankNoise::new(spec_ms(10, 5), 11);
        // 100 ms of work crosses ~10 windows; completion must exceed the
        // pure duration and every deferred instant must be runnable.
        let done = n.finish_work(Time::ZERO, Duration::from_millis(100));
        assert!(done > Time::ZERO + Duration::from_millis(100));
        assert_eq!(n.defer(done), done);
    }
}
