//! Property-based tests of the tree builders and the ADAPT collectives.

use adapt_core::{
    topology_aware_tree_rooted, AdaptConfig, BcastSpec, ReduceData, ReduceExec, ReduceSpec,
    TopoTreeConfig, Tree, TreeKind,
};
use adapt_mpi::{bytes_to_f64, f64_to_bytes, DType, ReduceOp, World};
use adapt_noise::{ClusterNoise, DurationLaw, NoiseSpec};
use adapt_sim::rng::MasterSeed;
use adapt_sim::time::Duration;
use adapt_topology::{ClusterShape, Placement};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_kind() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        Just(TreeKind::Chain),
        Just(TreeKind::Binary),
        Just(TreeKind::Binomial),
        Just(TreeKind::Flat),
        (2u32..6).prop_map(TreeKind::Kary),
        (2u32..6).prop_map(TreeKind::Knomial),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every builder yields a valid spanning tree for any size and root.
    #[test]
    fn trees_are_valid_spanning_trees(kind in arb_kind(), n in 1u32..200, root_pick in 0u32..200) {
        let root = root_pick % n;
        let t = Tree::build(kind, n, root);
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert_eq!(t.root(), root);
        // Edge count of a spanning tree.
        let edges: usize = (0..n).map(|r| t.children(r).len()).sum();
        prop_assert_eq!(edges as u32, n - 1);
    }

    /// The topology-aware tree is a valid spanning tree for any shape,
    /// job size, and root.
    #[test]
    fn topo_trees_are_valid(
        nodes in 1u32..5,
        sockets in 1u32..3,
        cores in 1u32..6,
        fill in 1u32..120,
        root_pick in 0u32..128,
    ) {
        let shape = ClusterShape { nodes, sockets_per_node: sockets, cores_per_socket: cores, gpus_per_socket: 0 };
        let total = shape.total_cores();
        let nranks = (fill % total) + 1;
        let root = root_pick % nranks;
        let placement = Placement::block_cpu(shape, nranks);
        let t = topology_aware_tree_rooted(&placement, TopoTreeConfig::default(), root);
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert_eq!(t.root(), root);
    }

    /// Broadcast delivers the root's exact bytes to every rank, for any
    /// tree shape, message size, segmentation, and window config — with or
    /// without noise.
    #[test]
    fn bcast_delivers_exact_data(
        kind in arb_kind(),
        n in 2u32..24,
        msg_kb in 1u64..64,
        seg_kb in 1u64..32,
        sends in 1u32..5,
        extra_recvs in 0u32..4,
        noisy in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let msg = msg_kb * 1024 + 13; // ragged tail
        let data: Vec<u8> = (0..msg).map(|i| (i * 31 % 251) as u8).collect();
        let spec = BcastSpec {
            tree: Arc::new(Tree::build(kind, n, 0)),
            msg_bytes: msg,
            cfg: AdaptConfig::default()
                .with_seg_size(seg_kb * 1024)
                .with_outstanding(sends, sends + extra_recvs + 1),
            data: Some(Bytes::from(data.clone())),
        };
        let machine = adapt_topology::profiles::minicluster(3, 2, 4);
        let noise = if noisy {
            ClusterNoise::uniform(n, NoiseSpec {
                period: Duration::from_micros(200),
                max_duration: Duration::from_micros(120),
                law: DurationLaw::Uniform,
            }, MasterSeed(seed))
        } else {
            ClusterNoise::silent(n)
        };
        let world = World::cpu(machine, n, noise);
        let res = world.run(spec.programs());
        for p in res.programs {
            let any: Box<dyn std::any::Any> = p;
            let b = any.downcast::<adapt_core::AdaptBcast>().unwrap();
            prop_assert_eq!(b.assembled().unwrap(), data.clone());
        }
    }

    /// Reduce equals the sequential fold for any tree, segmentation, and
    /// noise (sum over integer-valued f64 is associative-exact).
    #[test]
    fn reduce_equals_sequential_fold(
        kind in arb_kind(),
        n in 2u32..20,
        elems in 16usize..600,
        seg in 64u64..4096,
        noisy in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| {
                let v: Vec<f64> = (0..elems).map(|i| ((r as usize * 7 + i) % 91) as f64).collect();
                Bytes::from(f64_to_bytes(&v))
            })
            .collect();
        let expected: Vec<f64> = (0..elems)
            .map(|i| (0..n).map(|r| ((r as usize * 7 + i) % 91) as f64).sum())
            .collect();
        let spec = ReduceSpec {
            tree: Arc::new(Tree::build(kind, n, 0)),
            msg_bytes: (elems * 8) as u64,
            cfg: AdaptConfig::default().with_seg_size(seg * 8),
            data: ReduceData::Real {
                op: ReduceOp::Sum,
                dtype: DType::F64,
                contributions: Arc::new(contributions),
            },
            exec: ReduceExec::Cpu,
        };
        let machine = adapt_topology::profiles::minicluster(3, 2, 4);
        let noise = if noisy {
            ClusterNoise::uniform(n, NoiseSpec {
                period: Duration::from_micros(150),
                max_duration: Duration::from_micros(100),
                law: DurationLaw::Uniform,
            }, MasterSeed(seed))
        } else {
            ClusterNoise::silent(n)
        };
        let world = World::cpu(machine, n, noise);
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<adapt_core::AdaptReduce>().unwrap();
        prop_assert_eq!(bytes_to_f64(&root.result().unwrap()), expected);
    }

    /// Noise can only slow a collective down, never speed it up, and the
    /// simulation stays deterministic per seed.
    #[test]
    fn noise_is_monotone_and_deterministic(seed in 0u64..200) {
        let n = 12u32;
        let mk = |noise: ClusterNoise| {
            let spec = BcastSpec {
                tree: Arc::new(Tree::build(TreeKind::Chain, n, 0)),
                msg_bytes: 1 << 20,
                cfg: AdaptConfig::default(),
                data: None,
            };
            let machine = adapt_topology::profiles::minicluster(3, 2, 2);
            World::cpu(machine, n, noise).run(spec.programs()).makespan
        };
        let clean = mk(ClusterNoise::silent(n));
        let heavy = NoiseSpec {
            period: Duration::from_micros(100),
            max_duration: Duration::from_micros(95),
            law: DurationLaw::Uniform,
        };
        let noisy1 = mk(ClusterNoise::uniform(n, heavy, MasterSeed(seed)));
        let noisy2 = mk(ClusterNoise::uniform(n, heavy, MasterSeed(seed)));
        prop_assert_eq!(noisy1, noisy2);
        prop_assert!(noisy1 >= clean);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scatter delivers each rank exactly its block, any size/segmentation.
    #[test]
    fn scatter_delivers_blocks(n in 2u32..20, msg_kb in 1u64..48, seg_kb in 1u64..16) {
        use adapt_core::{AdaptScatter, ScatterSpec};
        let msg = msg_kb * 1024 + 5;
        let data: Vec<u8> = (0..msg).map(|i| (i * 41 % 251) as u8).collect();
        let spec = ScatterSpec {
            nranks: n,
            msg_bytes: msg,
            cfg: AdaptConfig::default().with_seg_size(seg_kb * 1024),
            data: Some(Bytes::from(data.clone())),
        };
        let machine = adapt_topology::profiles::minicluster(3, 2, 4);
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        // Expected block boundaries (MPI convention).
        let block = |i: u64| -> u64 {
            let base = msg / n as u64;
            let rem = msg % n as u64;
            i * base + i.min(rem)
        };
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let s = any.downcast::<AdaptScatter>().unwrap();
            let (lo, hi) = (block(r as u64) as usize, block(r as u64 + 1) as usize);
            prop_assert_eq!(s.own_block().unwrap(), &data[lo..hi]);
        }
    }

    /// Gather reassembles all blocks at the root, any size/segmentation.
    #[test]
    fn gather_reassembles(n in 2u32..20, msg_kb in 1u64..48, seg_kb in 1u64..16) {
        use adapt_core::{AdaptGather, GatherSpec};
        let msg = msg_kb * 1024 + 9;
        let block = |i: u64| -> u64 {
            let base = msg / n as u64;
            let rem = msg % n as u64;
            i * base + i.min(rem)
        };
        let contributions: Vec<Bytes> = (0..n as u64)
            .map(|r| {
                Bytes::from(
                    (block(r)..block(r + 1))
                        .map(|i| ((i * 29 + r) % 251) as u8)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut expected = Vec::new();
        for c in &contributions {
            expected.extend_from_slice(c);
        }
        let spec = GatherSpec {
            nranks: n,
            msg_bytes: msg,
            cfg: AdaptConfig::default().with_seg_size(seg_kb * 1024),
            data: Some(Arc::new(contributions)),
        };
        let machine = adapt_topology::profiles::minicluster(3, 2, 4);
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<AdaptGather>().unwrap();
        prop_assert_eq!(root.result().unwrap(), expected);
    }

    /// Ring allreduce equals the sequential fold on every rank, with or
    /// without noise.
    #[test]
    fn allreduce_exact_on_every_rank(
        n in 2u32..16,
        elems in 16usize..700,
        noisy in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        use adapt_core::{AdaptAllreduce, AllreduceSpec};
        let contributions: Arc<Vec<Bytes>> = Arc::new(
            (0..n)
                .map(|r| {
                    let v: Vec<f64> = (0..elems).map(|i| ((r as usize * 5 + i) % 43) as f64).collect();
                    Bytes::from(f64_to_bytes(&v))
                })
                .collect(),
        );
        let expected: Vec<f64> = (0..elems)
            .map(|i| (0..n).map(|r| ((r as usize * 5 + i) % 43) as f64).sum())
            .collect();
        let spec = AllreduceSpec {
            nranks: n,
            msg_bytes: (elems * 8) as u64,
            cfg: AdaptConfig::default(),
            data: Some((ReduceOp::Sum, DType::F64, contributions)),
        };
        let machine = adapt_topology::profiles::minicluster(3, 2, 4);
        let noise = if noisy {
            ClusterNoise::uniform(n, NoiseSpec {
                period: Duration::from_micros(250),
                max_duration: Duration::from_micros(150),
                law: DurationLaw::Uniform,
            }, MasterSeed(seed))
        } else {
            ClusterNoise::silent(n)
        };
        let world = World::cpu(machine, n, noise);
        let res = world.run(spec.programs());
        for p in res.programs {
            let any: Box<dyn std::any::Any> = p;
            let a = any.downcast::<AdaptAllreduce>().unwrap();
            prop_assert_eq!(bytes_to_f64(&a.result().unwrap()), expected.clone());
        }
    }
}
