//! ADAPT event-driven inclusive scan (`MPI_Scan`) — prefix reduction along
//! rank order, more §7 coverage (the paper cites Sanders et al.'s
//! broadcast/reduction/scan family as the advanced-tree frontier).
//!
//! Rank `r` ends with `op(x_0, ..., x_r)`. The linear-pipeline algorithm
//! segments the message: rank `r` receives the prefix-so-far for segment
//! `s` from rank `r−1`, folds its contribution, stores the result, and
//! forwards it to `r+1` — every segment's journey is independent, windowed
//! by `N` outstanding sends and `M` wildcard receives exactly like the
//! broadcast engine.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use crate::segments::Segments;
use adapt_mpi::{
    combine, program::ANY_TAG, Completion, DType, Payload, ProgramCtx, RankProgram, ReduceOp, Tag,
};
use bytes::Bytes;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;
const KIND_FOLD: u8 = 3;

/// Description of one ADAPT scan.
#[derive(Clone)]
pub struct ScanSpec {
    /// Number of ranks.
    pub nranks: u32,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline configuration.
    pub cfg: AdaptConfig,
    /// Real inputs: `(op, dtype, contributions[r])`; `None` = synthetic.
    pub data: Option<(ReduceOp, DType, Arc<Vec<Bytes>>)>,
}

impl ScanSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.nranks)
            .map(|r| Box::new(AdaptScan::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's event-driven scan.
pub struct AdaptScan {
    rank: u32,
    n: u32,
    segs: Segments,
    cfg: AdaptConfig,
    real: Option<(ReduceOp, DType)>,
    /// This rank's running prefix (starts as its own contribution).
    acc: Option<Vec<u8>>,
    /// Per segment: prefix folded (ready to forward / final for this rank).
    folded: Vec<bool>,
    /// Segments ready to forward, in completion order.
    ready: Vec<u64>,
    cursor: usize,
    outstanding: u32,
    sends_done: u64,
    recvs_posted: u64,
    recvs_done: u64,
    folds_done: u64,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptScan {
    fn new(spec: &ScanSpec, rank: u32) -> AdaptScan {
        let segs = Segments::new(spec.msg_bytes, spec.cfg.seg_size);
        let (real, acc) = match &spec.data {
            None => (None, None),
            Some((op, dtype, contributions)) => {
                let own = contributions[rank as usize].to_vec();
                assert_eq!(own.len() as u64, spec.msg_bytes, "contribution size");
                (Some((*op, *dtype)), Some(own))
            }
        };
        let nseg = segs.count();
        // Rank 0 has nothing to fold: every segment is final immediately.
        let (folded, ready, folds_done) = if rank == 0 {
            (vec![true; nseg as usize], (0..nseg).collect(), nseg)
        } else {
            (vec![false; nseg as usize], Vec::new(), 0)
        };
        AdaptScan {
            rank,
            n: spec.nranks,
            segs,
            cfg: spec.cfg,
            real,
            acc,
            folded,
            ready,
            cursor: 0,
            outstanding: 0,
            sends_done: 0,
            recvs_posted: 0,
            recvs_done: 0,
            folds_done,
            finished: false,
            finished_at: None,
        }
    }

    fn is_last(&self) -> bool {
        self.rank + 1 == self.n
    }

    fn seg_payload(&self, s: u64) -> Payload {
        match &self.acc {
            Some(acc) => {
                let off = self.segs.offset(s) as usize;
                let len = self.segs.len(s) as usize;
                Payload::from(acc[off..off + len].to_vec())
            }
            None => Payload::Synthetic(self.segs.len(s)),
        }
    }

    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.is_last() {
            return;
        }
        while self.outstanding < self.cfg.outstanding_sends && self.cursor < self.ready.len() {
            let seg = self.ready[self.cursor];
            self.cursor += 1;
            self.outstanding += 1;
            let payload = self.seg_payload(seg);
            ctx.isend(
                self.rank + 1,
                seg as Tag,
                payload,
                pack_token(KIND_SEND, 0, seg),
            );
        }
    }

    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.rank == 0 {
            return;
        }
        while self.recvs_posted < self.segs.count()
            && self.recvs_posted - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let idx = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv(self.rank - 1, ANY_TAG, pack_token(KIND_RECV, 0, idx));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        let folded_all = self.folds_done == self.segs.count();
        let sent_all = self.is_last() || self.sends_done == self.segs.count();
        if folded_all && sent_all {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// This rank's inclusive prefix (real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        self.acc.clone()
    }
}

impl RankProgram for AdaptScan {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.segs.count() == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_recvs(ctx);
        self.push_sends(ctx);
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, _, _) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                self.outstanding -= 1;
                self.sends_done += 1;
                self.push_sends(ctx);
            }
            Completion::RecvDone { tag, data, .. } => {
                self.recvs_done += 1;
                let seg = tag as u64;
                // Fold the incoming prefix (of ranks 0..r-1) into the own
                // contribution: acc[seg] = op(prefix, own).
                if let (Some((op, dtype)), Some(acc), Some(prefix)) =
                    (self.real, self.acc.as_mut(), data.bytes())
                {
                    let off = self.segs.offset(seg) as usize;
                    let len = self.segs.len(seg) as usize;
                    combine(op, dtype, &mut acc[off..off + len], prefix);
                }
                ctx.cpu_reduce(self.segs.len(seg), pack_token(KIND_FOLD, 0, seg));
                self.push_recvs(ctx);
            }
            Completion::ComputeDone { token } => {
                let (kind, _, seg) = unpack_token(token);
                debug_assert_eq!(kind, KIND_FOLD);
                debug_assert!(!self.folded[seg as usize]);
                self.folded[seg as usize] = true;
                self.folds_done += 1;
                self.ready.push(seg);
                self.push_sends(ctx);
            }
            other => panic!("scan got {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::{bytes_to_f64, f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn run_scan(n: u32, elems: usize, seg: u64) {
        let contributions: Arc<Vec<Bytes>> = Arc::new(
            (0..n)
                .map(|r| {
                    let v: Vec<f64> = (0..elems)
                        .map(|i| ((r as usize * 7 + i) % 19) as f64)
                        .collect();
                    Bytes::from(f64_to_bytes(&v))
                })
                .collect(),
        );
        let spec = ScanSpec {
            nranks: n,
            msg_bytes: (elems * 8) as u64,
            cfg: AdaptConfig::default().with_seg_size(seg),
            data: Some((ReduceOp::Sum, DType::F64, contributions)),
        };
        let world = World::cpu(profiles::minicluster(3, 2, 4), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let s = any.downcast::<AdaptScan>().unwrap();
            let expected: Vec<f64> = (0..elems)
                .map(|i| (0..=r).map(|q| ((q * 7 + i) % 19) as f64).sum())
                .collect();
            assert_eq!(
                bytes_to_f64(&s.result().unwrap()),
                expected,
                "rank {r} of {n}"
            );
        }
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        run_scan(2, 100, 256);
        run_scan(7, 1000, 1024);
        run_scan(12, 3000, 4096);
    }

    #[test]
    fn scan_synthetic_pipelines() {
        let spec = ScanSpec {
            nranks: 16,
            msg_bytes: 4 << 20,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(4, 2, 2), 16, ClusterNoise::silent(16));
        let res = world.run(spec.programs());
        assert!(res.makespan.as_nanos() > 0);
        // Pipelining: the scan should take far less than 15 sequential
        // full-message hops.
        let one_hop_us = (4u64 << 20) as f64 / 10e9 * 1e6;
        assert!(
            res.makespan.as_micros_f64() < 15.0 * one_hop_us,
            "scan did not pipeline: {}",
            res.makespan
        );
    }

    #[test]
    fn single_rank_scan_is_identity() {
        let v: Vec<f64> = (0..64).map(|x| x as f64).collect();
        let spec = ScanSpec {
            nranks: 1,
            msg_bytes: 64 * 8,
            cfg: AdaptConfig::default(),
            data: Some((
                ReduceOp::Sum,
                DType::F64,
                Arc::new(vec![Bytes::from(f64_to_bytes(&v))]),
            )),
        };
        let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
        let res = world.run(spec.programs());
        let p: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let s = p.downcast::<AdaptScan>().unwrap();
        assert_eq!(bytes_to_f64(&s.result().unwrap()), v);
    }
}
