//! Message segmentation for pipelined collectives.

/// Partition of a message into fixed-size segments (the last one may be
/// short).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segments {
    total: u64,
    seg: u64,
}

impl Segments {
    /// Split `total` bytes into segments of at most `seg` bytes.
    pub fn new(total: u64, seg: u64) -> Segments {
        assert!(seg > 0, "segment size must be positive");
        Segments { total, seg }
    }

    /// Total message size.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of segments (zero for an empty message).
    pub fn count(&self) -> u64 {
        self.total.div_ceil(self.seg)
    }

    /// Byte offset of segment `i`.
    pub fn offset(&self, i: u64) -> u64 {
        debug_assert!(i < self.count());
        i * self.seg
    }

    /// Length of segment `i`.
    pub fn len(&self, i: u64) -> u64 {
        debug_assert!(i < self.count());
        (self.total - i * self.seg).min(self.seg)
    }

    /// True when the message is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let s = Segments::new(1024, 256);
        assert_eq!(s.count(), 4);
        assert_eq!(s.len(3), 256);
        assert_eq!(s.offset(2), 512);
    }

    #[test]
    fn ragged_tail() {
        let s = Segments::new(1000, 256);
        assert_eq!(s.count(), 4);
        assert_eq!(s.len(3), 232);
        assert_eq!((0..s.count()).map(|i| s.len(i)).sum::<u64>(), 1000);
    }

    #[test]
    fn empty_message() {
        let s = Segments::new(0, 64);
        assert_eq!(s.count(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn oversized_segment() {
        let s = Segments::new(10, 4096);
        assert_eq!(s.count(), 1);
        assert_eq!(s.len(0), 10);
    }
}
