//! Event-driven dissemination barrier and ring allgather — more of the §7
//! "coverage" extensions.
//!
//! The dissemination barrier runs ⌈log₂ n⌉ rounds; in round `k` rank `r`
//! signals `(r + 2^k) mod n` and proceeds when the matching signal from
//! `(r − 2^k) mod n` arrives. Rounds are data dependencies (a rank cannot
//! signal round `k+1` before completing round `k`), so this is already
//! Waitall-free.
//!
//! The ring allgather is the allgather phase of
//! [`crate::allreduce::AdaptAllreduce`] standalone: every rank's block
//! makes an independent (n−1)-hop journey.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use adapt_mpi::{program::ANY_TAG, Completion, Payload, ProgramCtx, RankProgram, Tag};
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;

/// Description of a dissemination barrier.
#[derive(Clone, Copy)]
pub struct BarrierSpec {
    /// Number of ranks.
    pub nranks: u32,
}

impl BarrierSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.nranks)
            .map(|r| Box::new(AdaptBarrier::new(self.nranks, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's dissemination barrier.
pub struct AdaptBarrier {
    rank: u32,
    n: u32,
    rounds: u32,
    round: u32,
    /// Signals that arrived early (round index).
    early: Vec<u32>,
    send_pending: bool,
    recv_pending: bool,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptBarrier {
    fn new(n: u32, rank: u32) -> AdaptBarrier {
        let rounds = 32 - (n - 1).leading_zeros();
        AdaptBarrier {
            rank,
            n,
            rounds: if n == 1 { 0 } else { rounds },
            round: 0,
            early: Vec::new(),
            send_pending: false,
            recv_pending: false,
            finished: false,
            finished_at: None,
        }
    }

    fn start_round(&mut self, ctx: &mut dyn ProgramCtx) {
        loop {
            if self.round == self.rounds {
                if !self.finished {
                    self.finished = true;
                    self.finished_at = Some(ctx.now());
                    ctx.finish();
                }
                return;
            }
            let k = self.round;
            let dist = 1u32 << k;
            let to = (self.rank + dist) % self.n;
            let from = (self.rank + self.n - dist % self.n) % self.n;
            self.send_pending = true;
            ctx.isend(
                to,
                k,
                Payload::Synthetic(0),
                pack_token(KIND_SEND, 0, k as u64),
            );
            if let Some(pos) = self.early.iter().position(|&e| e == k) {
                self.early.swap_remove(pos);
                self.recv_pending = false;
            } else {
                self.recv_pending = true;
                ctx.irecv(from, k, pack_token(KIND_RECV, 0, k as u64));
            }
            if self.send_pending || self.recv_pending {
                return;
            }
            self.round += 1;
        }
    }

    fn try_advance(&mut self, ctx: &mut dyn ProgramCtx) {
        if !self.send_pending && !self.recv_pending {
            self.round += 1;
            self.start_round(ctx);
        }
    }
}

impl RankProgram for AdaptBarrier {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.start_round(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, _, k) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                debug_assert_eq!(k, self.round as u64);
                self.send_pending = false;
            }
            Completion::RecvDone { tag, .. } => {
                if tag == self.round {
                    self.recv_pending = false;
                } else {
                    // A faster peer signalled a future round already.
                    debug_assert!(tag > self.round);
                    self.early.push(tag);
                }
            }
            other => panic!("barrier got {other:?}"),
        }
        self.try_advance(ctx);
    }
}

/// Description of one ADAPT ring allgather.
#[derive(Clone)]
pub struct AllgatherSpec {
    /// Number of ranks.
    pub nranks: u32,
    /// Total gathered size (each rank contributes its ~`msg/n` block).
    pub msg_bytes: u64,
    /// Pipeline configuration.
    pub cfg: AdaptConfig,
    /// Real per-rank block contributions (`None` = synthetic).
    pub data: Option<Arc<Vec<Bytes>>>,
}

impl AllgatherSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.nranks)
            .map(|r| Box::new(AdaptAllgather::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

fn block_range(msg: u64, n: u64, i: u64) -> (u64, u64) {
    let off = |i: u64| -> u64 {
        let base = msg / n;
        let rem = msg % n;
        i * base + i.min(rem)
    };
    (off(i), off(i + 1))
}

/// One rank's event-driven ring allgather.
pub struct AdaptAllgather {
    rank: u32,
    n: u64,
    msg: u64,
    cfg: AdaptConfig,
    real: bool,
    result: Option<Vec<u8>>,
    have: u64,
    queue: VecDeque<(Tag, Payload)>,
    outstanding: u32,
    sends_done: u64,
    recvs_posted: u64,
    recvs_done: u64,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptAllgather {
    fn new(spec: &AllgatherSpec, rank: u32) -> AdaptAllgather {
        let n = spec.nranks as u64;
        let mut result = spec
            .data
            .is_some()
            .then(|| vec![0u8; spec.msg_bytes as usize]);
        if let (Some(res), Some(contribs)) = (result.as_mut(), spec.data.as_deref()) {
            let (lo, hi) = block_range(spec.msg_bytes, n, rank as u64);
            let own = &contribs[rank as usize];
            assert_eq!(own.len() as u64, hi - lo, "contribution size");
            res[lo as usize..hi as usize].copy_from_slice(own);
        }
        AdaptAllgather {
            rank,
            n,
            msg: spec.msg_bytes,
            cfg: spec.cfg,
            real: spec.data.is_some(),
            result,
            have: 1,
            queue: VecDeque::new(),
            outstanding: 0,
            sends_done: 0,
            recvs_posted: 0,
            recvs_done: 0,
            finished: false,
            finished_at: None,
        }
    }

    fn block_payload(&self, b: u64) -> Payload {
        let (lo, hi) = block_range(self.msg, self.n, b);
        match &self.result {
            Some(res) => Payload::from(res[lo as usize..hi as usize].to_vec()),
            None => Payload::Synthetic(hi - lo),
        }
    }

    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx) {
        let next = ((self.rank as u64 + 1) % self.n) as u32;
        while self.outstanding < self.cfg.outstanding_sends {
            let Some((tag, payload)) = self.queue.pop_front() else {
                return;
            };
            self.outstanding += 1;
            ctx.isend(next, tag, payload, pack_token(KIND_SEND, 0, tag as u64));
        }
    }

    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        let prev = ((self.rank as u64 + self.n - 1) % self.n) as u32;
        let total = self.n - 1;
        while self.recvs_posted < total
            && self.recvs_posted - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let idx = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv(prev, ANY_TAG, pack_token(KIND_RECV, 0, idx));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        if self.have == self.n && self.sends_done == self.n - 1 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The gathered vector (real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        self.result.clone()
    }
}

impl RankProgram for AdaptAllgather {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.n == 1 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_recvs(ctx);
        // The own block starts its (n−1)-hop journey.
        let b = self.rank as u64;
        let payload = self.block_payload(b);
        self.queue.push_back((b as Tag, payload));
        self.push_sends(ctx);
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { .. } => {
                self.outstanding -= 1;
                self.sends_done += 1;
                self.push_sends(ctx);
            }
            Completion::RecvDone { tag, data, .. } => {
                self.recvs_done += 1;
                let b = tag as u64;
                let (lo, hi) = block_range(self.msg, self.n, b);
                if let (Some(res), Some(bytes)) = (self.result.as_mut(), data.bytes()) {
                    res[lo as usize..hi as usize].copy_from_slice(bytes);
                }
                debug_assert!(self.real == data.bytes().is_some());
                self.have += 1;
                // Forward unless the successor is the block's origin.
                if (self.rank as u64 + 1) % self.n != b {
                    self.queue.push_back((tag, data));
                    self.push_sends(ctx);
                }
                self.push_recvs(ctx);
            }
            other => panic!("allgather got {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    #[test]
    fn barrier_completes_for_any_rank_count() {
        for n in [1u32, 2, 3, 7, 16, 33] {
            let world = World::cpu(
                profiles::minicluster(4, 2, 8),
                n.min(64),
                ClusterNoise::silent(n.min(64)),
            );
            let res = world.run(BarrierSpec { nranks: n }.programs());
            assert!(res.makespan.as_micros_f64() < 1_000.0, "n={n}");
        }
    }

    #[test]
    fn barrier_is_a_synchronization_point() {
        // A rank that computes for 1 ms before entering the barrier holds
        // everyone back: all ranks finish at ≥ 1 ms.
        use adapt_mpi::{Op, Token};
        struct LateBarrier {
            inner: AdaptBarrier,
            delayed: bool,
            started: bool,
        }
        impl RankProgram for LateBarrier {
            fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
                if self.delayed {
                    ctx.post(Op::Compute {
                        work: adapt_sim::time::Duration::from_millis(1),
                        token: Token(u64::MAX - 7),
                    });
                } else {
                    self.started = true;
                    self.inner.on_start(ctx);
                }
            }
            fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, c: Completion) {
                if !self.started {
                    self.started = true;
                    self.inner.on_start(ctx);
                    return;
                }
                self.inner.on_completion(ctx, c);
            }
        }
        let n = 8u32;
        let world = World::cpu(profiles::minicluster(2, 2, 2), n, ClusterNoise::silent(n));
        let programs: Vec<Box<dyn RankProgram>> = (0..n)
            .map(|r| {
                Box::new(LateBarrier {
                    inner: AdaptBarrier::new(n, r),
                    delayed: r == 3,
                    started: false,
                }) as Box<dyn RankProgram>
            })
            .collect();
        let res = world.run(programs);
        for (r, t) in res.per_rank_finish.iter().enumerate() {
            assert!(
                t.as_millis_f64() >= 1.0,
                "rank {r} left the barrier at {t} before the straggler"
            );
        }
    }

    #[test]
    fn allgather_assembles_all_blocks_everywhere() {
        for n in [2u32, 5, 8, 13] {
            let msg = 40_000u64;
            let contributions: Vec<Bytes> = (0..n)
                .map(|r| {
                    let (lo, hi) = block_range(msg, n as u64, r as u64);
                    Bytes::from(
                        (lo..hi)
                            .map(|i| ((i * 7 + r as u64) % 251) as u8)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            let mut expected = Vec::new();
            for c in &contributions {
                expected.extend_from_slice(c);
            }
            let spec = AllgatherSpec {
                nranks: n,
                msg_bytes: msg,
                cfg: AdaptConfig::default(),
                data: Some(Arc::new(contributions)),
            };
            let world = World::cpu(profiles::minicluster(4, 2, 4), n, ClusterNoise::silent(n));
            let res = world.run(spec.programs());
            for (r, p) in res.programs.into_iter().enumerate() {
                let any: Box<dyn std::any::Any> = p;
                let a = any.downcast::<AdaptAllgather>().unwrap();
                assert_eq!(a.result().unwrap(), expected, "rank {r} of {n}");
            }
        }
    }
}
