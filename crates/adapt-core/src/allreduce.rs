//! ADAPT event-driven ring allreduce (and allgather) — the "increasing
//! the collective communications coverage" direction of the paper's §7.
//!
//! The bandwidth-optimal ring algorithm decomposes naturally into ADAPT's
//! building blocks: each of the `n` message blocks makes an independent
//! 2(n−1)-hop journey around the ring (reduce-scatter phase folding
//! contributions, then allgather phase distributing the finished block).
//! Blocks never synchronize with each other — every hop is a non-blocking
//! send posted from the completion callback of the receive that enabled
//! it, with an `N`-deep send window to the successor and an `M`-deep
//! wildcard receive window from the predecessor.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use adapt_mpi::{
    combine, program::ANY_TAG, Completion, DType, Payload, ProgramCtx, RankProgram, ReduceOp, Tag,
};
use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;
const PHASE_RS: u32 = 0;
const PHASE_AG: u32 = 1;

/// Block `i`'s byte range, partitioning `msg` into `n` blocks aligned to
/// `grain` bytes (the element size — splitting an element across blocks
/// would corrupt the fold).
fn block_range(msg: u64, n: u64, grain: u64, i: u64) -> (u64, u64) {
    let units = msg / grain;
    let off = |i: u64| -> u64 {
        let base = units / n;
        let rem = units % n;
        (i * base + i.min(rem)) * grain
    };
    (off(i), off(i + 1))
}

/// Description of one ADAPT ring allreduce.
#[derive(Clone)]
pub struct AllreduceSpec {
    /// Number of ranks.
    pub nranks: u32,
    /// Message size in bytes (every rank contributes and receives this).
    pub msg_bytes: u64,
    /// Pipeline configuration (`outstanding_sends`/`_recvs` window the
    /// per-neighbour block streams; blocks are the pipelining granularity).
    pub cfg: AdaptConfig,
    /// Real inputs: `(op, dtype, contributions[r])`; `None` = synthetic.
    pub data: Option<(ReduceOp, DType, Arc<Vec<Bytes>>)>,
}

impl AllreduceSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.nranks)
            .map(|r| Box::new(AdaptAllreduce::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's event-driven ring allreduce.
pub struct AdaptAllreduce {
    rank: u32,
    n: u64,
    msg: u64,
    grain: u64,
    cfg: AdaptConfig,
    real: Option<(ReduceOp, DType)>,
    /// Own contribution (real mode).
    own: Option<Bytes>,
    /// Final result (real mode), assembled block by block.
    result: Option<Vec<u8>>,
    /// Blocks finalized on this rank.
    finals: u64,
    /// Outgoing block queue to the successor: `(tag, payload)`.
    queue: VecDeque<(Tag, Payload)>,
    outstanding: u32,
    sends_done: u64,
    sends_total: u64,
    recvs_posted: u64,
    recvs_done: u64,
    recvs_total: u64,
    /// Folds in flight: `(block, folded payload)` awaiting their modelled
    /// compute completion before forwarding.
    pending_folds: Vec<(u64, Payload)>,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptAllreduce {
    fn new(spec: &AllreduceSpec, rank: u32) -> AdaptAllreduce {
        let n = spec.nranks as u64;
        let (real, own) = match &spec.data {
            None => (None, None),
            Some((op, dtype, contributions)) => {
                let own = contributions[rank as usize].clone();
                assert_eq!(own.len() as u64, spec.msg_bytes, "contribution size");
                (Some((*op, *dtype)), Some(own))
            }
        };
        let grain = real.map(|(_, dtype)| dtype.size() as u64).unwrap_or(1);
        assert_eq!(spec.msg_bytes % grain, 0, "message not whole elements");
        AdaptAllreduce {
            rank,
            n,
            msg: spec.msg_bytes,
            grain,
            cfg: spec.cfg,
            real,
            own,
            result: real.is_some().then(|| vec![0u8; spec.msg_bytes as usize]),
            finals: 0,
            queue: VecDeque::new(),
            outstanding: 0,
            sends_done: 0,
            sends_total: 2 * (n - 1),
            recvs_posted: 0,
            recvs_done: 0,
            recvs_total: 2 * (n - 1),
            pending_folds: Vec::new(),
            finished: false,
            finished_at: None,
        }
    }

    fn next_rank(&self) -> u32 {
        ((self.rank as u64 + 1) % self.n) as u32
    }

    fn prev_rank(&self) -> u32 {
        ((self.rank as u64 + self.n - 1) % self.n) as u32
    }

    /// Own contribution of block `b` (real mode).
    fn own_block(&self, b: u64) -> Option<&[u8]> {
        let (lo, hi) = block_range(self.msg, self.n, self.grain, b);
        self.own.as_ref().map(|o| &o[lo as usize..hi as usize])
    }

    fn block_len(&self, b: u64) -> u64 {
        let (lo, hi) = block_range(self.msg, self.n, self.grain, b);
        hi - lo
    }

    /// Record a finalized block (real mode stores it into the result).
    fn finalize(&mut self, b: u64, data: &Payload) {
        let (lo, hi) = block_range(self.msg, self.n, self.grain, b);
        if let (Some(result), Some(bytes)) = (self.result.as_mut(), data.bytes()) {
            result[lo as usize..hi as usize].copy_from_slice(bytes);
        } else if let (Some(result), None) = (self.result.as_mut(), data.bytes()) {
            // Synthetic payload in real mode cannot happen (same spec).
            let _ = result;
            unreachable!("payload mode mismatch");
        }
        let _ = (lo, hi);
        self.finals += 1;
    }

    fn enqueue(&mut self, ctx: &mut dyn ProgramCtx, phase: u32, b: u64, payload: Payload) {
        self.queue.push_back(((2 * b as u32) + phase, payload));
        self.push_sends(ctx);
    }

    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx) {
        while self.outstanding < self.cfg.outstanding_sends {
            let Some((tag, payload)) = self.queue.pop_front() else {
                return;
            };
            self.outstanding += 1;
            ctx.isend(
                self.next_rank(),
                tag,
                payload,
                pack_token(KIND_SEND, 0, tag as u64),
            );
        }
    }

    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        while self.recvs_posted < self.recvs_total
            && self.recvs_posted - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let idx = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv(self.prev_rank(), ANY_TAG, pack_token(KIND_RECV, 0, idx));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        if self.finals == self.n && self.sends_done == self.sends_total {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The allreduced vector on this rank (real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        self.result.clone()
    }
}

impl RankProgram for AdaptAllreduce {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.n == 1 {
            // Trivial: the result is the own contribution.
            if let (Some(result), Some(own)) = (self.result.as_mut(), self.own.as_ref()) {
                result.copy_from_slice(own);
            }
            self.finals = 1;
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_recvs(ctx);
        // Initiate the reduce-scatter journey of block (rank − 1) mod n.
        let b = (self.rank as u64 + self.n - 1) % self.n;
        let payload = match self.own_block(b) {
            Some(bytes) => Payload::from(bytes.to_vec()),
            None => Payload::Synthetic(self.block_len(b)),
        };
        self.enqueue(ctx, PHASE_RS, b, payload);
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, _, _) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                self.outstanding -= 1;
                self.sends_done += 1;
                self.push_sends(ctx);
            }
            Completion::RecvDone { tag, data, .. } => {
                self.recvs_done += 1;
                let b = (tag / 2) as u64;
                let phase = tag % 2;
                if phase == PHASE_RS {
                    // Fold the own contribution into the travelling partial.
                    let folded = match (&self.real, data.bytes(), self.own_block(b)) {
                        (Some((op, dtype)), Some(partial), Some(mine)) => {
                            let mut acc = partial.to_vec();
                            combine(*op, *dtype, &mut acc, mine);
                            Payload::from(acc)
                        }
                        _ => Payload::Synthetic(self.block_len(b)),
                    };
                    // Charge the fold cost; forwarding continues from the
                    // compute completion to keep the data dependency honest.
                    ctx.cpu_reduce(self.block_len(b), pack_token(3, phase, b));
                    // Stash the folded payload until the fold "completes".
                    self.pending_folds.push((b, folded));
                } else {
                    // Allgather: the block is final.
                    self.finalize(b, &data);
                    if (self.rank as u64 + 1) % self.n != b {
                        self.enqueue(ctx, PHASE_AG, b, data.clone());
                    }
                }
                self.push_recvs(ctx);
            }
            Completion::ComputeDone { token } => {
                let (_, _phase, b) = unpack_token(token);
                let pos = self
                    .pending_folds
                    .iter()
                    .position(|(pb, _)| *pb == b)
                    .expect("fold pending");
                // Stash order is irrelevant (blocks are unique keys), so the
                // O(1) removal is safe.
                let (_, folded) = self.pending_folds.swap_remove(pos);
                if self.rank as u64 == b {
                    // Journey complete on this rank: finalize and start the
                    // allgather phase.
                    self.finalize(b, &folded);
                    self.enqueue(ctx, PHASE_AG, b, folded);
                } else {
                    self.enqueue(ctx, PHASE_RS, b, folded);
                }
            }
            other => panic!("allreduce got {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::{bytes_to_f64, f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn run_real(n: u32, elems: usize) {
        let contributions: Arc<Vec<Bytes>> = Arc::new(
            (0..n)
                .map(|r| {
                    let v: Vec<f64> = (0..elems)
                        .map(|i| ((r as usize * 3 + i) % 53) as f64)
                        .collect();
                    Bytes::from(f64_to_bytes(&v))
                })
                .collect(),
        );
        let expected: Vec<f64> = (0..elems)
            .map(|i| (0..n).map(|r| ((r as usize * 3 + i) % 53) as f64).sum())
            .collect();
        let spec = AllreduceSpec {
            nranks: n,
            msg_bytes: (elems * 8) as u64,
            cfg: AdaptConfig::default(),
            data: Some((ReduceOp::Sum, DType::F64, contributions)),
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let a = any.downcast::<AdaptAllreduce>().unwrap();
            assert_eq!(
                bytes_to_f64(&a.result().unwrap()),
                expected,
                "rank {r} of {n}"
            );
        }
    }

    #[test]
    fn allreduce_matches_sequential_fold_on_every_rank() {
        run_real(2, 100);
        run_real(5, 999);
        run_real(8, 4096);
        run_real(13, 777);
    }

    #[test]
    fn allreduce_synthetic_large() {
        let spec = AllreduceSpec {
            nranks: 32,
            msg_bytes: 16 << 20,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), 32, ClusterNoise::silent(32));
        let res = world.run(spec.programs());
        assert!(res.makespan.as_nanos() > 0);
        // Ring allreduce moves ~2x the message through each rank pair.
        assert!(res.stats.delivered_bytes >= 2 * (16 << 20));
    }

    #[test]
    fn single_rank_allreduce_is_identity() {
        let data: Vec<f64> = (0..64).map(|x| x as f64).collect();
        let spec = AllreduceSpec {
            nranks: 1,
            msg_bytes: 64 * 8,
            cfg: AdaptConfig::default(),
            data: Some((
                ReduceOp::Sum,
                DType::F64,
                Arc::new(vec![Bytes::from(f64_to_bytes(&data))]),
            )),
        };
        let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
        let res = world.run(spec.programs());
        let p: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let a = p.downcast::<AdaptAllreduce>().unwrap();
        assert_eq!(bytes_to_f64(&a.result().unwrap()), data);
    }
}
