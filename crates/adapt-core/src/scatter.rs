//! ADAPT event-driven scatter (§2.2.3: for other one-to-all and
//! all-to-one collectives, a process always needs to send or receive
//! data from other processes — the same basic building block applies).
//!
//! Scatter sends rank `v` its own block of the root's buffer; the tree
//! routes the contiguous range `[v, v + subtree(v))` through rank `v`.
//! Gather is the mirror image. Both use per-child independent windows and
//! no Waitall, like the broadcast engine; ranges large enough to need
//! pipelining are segmented.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use crate::tree::{Tree, TreeKind};
use adapt_mpi::{program::ANY_TAG, Completion, Payload, ProgramCtx, RankProgram, Tag};
use bytes::Bytes;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;

/// Byte range of ranks `[lo, hi)` in a block-partitioned message.
fn block_range(msg: u64, n: u64, lo: u64, hi: u64) -> (u64, u64) {
    let off = |i: u64| -> u64 {
        let base = msg / n;
        let rem = msg % n;
        i * base + i.min(rem)
    };
    (off(lo), off(hi))
}

/// Subtree size of `v` in a binomial tree over `n` ranks.
fn binomial_subtree(v: u64, n: u64) -> u64 {
    if v == 0 {
        return n;
    }
    let lsb = v & v.wrapping_neg();
    lsb.min(n - v)
}

/// Description of one ADAPT scatter (root = rank 0, binomial routing — the
/// shape under which subtree block ranges are contiguous).
#[derive(Clone)]
pub struct ScatterSpec {
    /// Number of ranks.
    pub nranks: u32,
    /// Total message size (each rank receives its ~`msg/n` block).
    pub msg_bytes: u64,
    /// Pipeline configuration (segmentation applies to each child range).
    pub cfg: AdaptConfig,
    /// Real payload at the root (`None` = synthetic).
    pub data: Option<Bytes>,
}

impl ScatterSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        let tree = Arc::new(Tree::build(TreeKind::Binomial, self.nranks, 0));
        (0..self.nranks)
            .map(|r| Box::new(AdaptScatter::new(self, &tree, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's event-driven scatter.
pub struct AdaptScatter {
    rank: u32,
    n: u64,
    msg: u64,
    parent: Option<u32>,
    children: Vec<u32>,
    cfg: AdaptConfig,
    /// Range this rank is responsible for (bytes), and what has arrived.
    range: (u64, u64),
    buffer: Option<Vec<u8>>,
    /// Per own-range segment: arrived yet? (segments may arrive out of
    /// order through the wildcard window).
    have: Vec<bool>,
    /// Contiguous prefix of arrived segments (forwarding bound).
    prefix_segs: u64,
    recvs_posted: u64,
    recvs_done: u64,
    is_root: bool,
    root_data: Option<Bytes>,
    /// Per child: (range, next unsent offset, outstanding, done bytes).
    child_ranges: Vec<(u64, u64)>,
    next_off: Vec<u64>,
    outstanding: Vec<u32>,
    sent: Vec<u64>,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptScatter {
    fn new(spec: &ScatterSpec, tree: &Tree, rank: u32) -> AdaptScatter {
        let n = spec.nranks as u64;
        let (lo, hi) = {
            let size = binomial_subtree(rank as u64, n);
            block_range(spec.msg_bytes, n, rank as u64, rank as u64 + size)
        };
        let children = tree.children(rank).to_vec();
        let child_ranges: Vec<(u64, u64)> = children
            .iter()
            .map(|&c| {
                let size = binomial_subtree(c as u64, n);
                block_range(spec.msg_bytes, n, c as u64, c as u64 + size)
            })
            .collect();
        let own_segs = (hi - lo).div_ceil(spec.cfg.seg_size) as usize;
        AdaptScatter {
            rank,
            n,
            msg: spec.msg_bytes,
            parent: tree.parent(rank),
            outstanding: vec![0; children.len()],
            sent: vec![0; children.len()],
            children,
            cfg: spec.cfg,
            range: (lo, hi),
            buffer: spec.data.is_some().then(|| vec![0u8; (hi - lo) as usize]),
            have: vec![false; own_segs],
            prefix_segs: 0,
            recvs_posted: 0,
            recvs_done: 0,
            is_root: rank == 0,
            root_data: spec.data.clone(),
            next_off: child_ranges.iter().map(|&(lo, _)| lo).collect(),
            child_ranges,
            finished: false,
            finished_at: None,
        }
    }

    /// Bytes of range `[off, off+len)` as a payload (root slices its data;
    /// intermediates slice their received buffer).
    fn payload_for(&self, off: u64, len: u64) -> Payload {
        if let Some(d) = &self.root_data {
            return Payload::Data(d.slice(off as usize..(off + len) as usize));
        }
        if let Some(buf) = &self.buffer {
            let rel = (off - self.range.0) as usize;
            return Payload::from(buf[rel..rel + len as usize].to_vec());
        }
        Payload::Synthetic(len)
    }

    /// Bytes of the own range available for forwarding so far. The root
    /// has everything; others can forward the contiguous arrived prefix
    /// (segments may arrive out of order; forwarding holds at gaps).
    fn available_until(&self) -> u64 {
        if self.is_root {
            self.msg
        } else {
            (self.range.0 + self.prefix_segs * self.cfg.seg_size).min(self.range.1)
        }
    }

    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx, c: usize) {
        let (_, hi) = self.child_ranges[c];
        while self.outstanding[c] < self.cfg.outstanding_sends && self.next_off[c] < hi {
            let off = self.next_off[c];
            let seg_len = (hi - off).min(self.cfg.seg_size);
            if self.available_until() < off + seg_len {
                return; // waiting for more of the range to arrive
            }
            self.next_off[c] = off + seg_len;
            self.outstanding[c] += 1;
            let payload = self.payload_for(off, seg_len);
            // The tag is the segment index in the *receiver's* own-range
            // grid (child ranges are rarely aligned to a global grid).
            let (child_lo, _) = self.child_ranges[c];
            let seg_idx = (off - child_lo) / self.cfg.seg_size;
            ctx.isend(
                self.children[c],
                seg_idx as Tag,
                payload,
                pack_token(KIND_SEND, c as u32, off),
            );
        }
    }

    /// Keep the receive window for the own range `M` deep.
    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        let Some(parent) = self.parent else { return };
        let nseg = self.have.len() as u64;
        while self.recvs_posted < nseg
            && self.recvs_posted - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let idx = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv(parent, ANY_TAG, pack_token(KIND_RECV, 0, idx));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        let recv_done = self.is_root || self.recvs_done == self.have.len() as u64;
        let send_done = self
            .child_ranges
            .iter()
            .zip(&self.sent)
            .all(|(&(lo, hi), &sent)| sent == hi - lo);
        if recv_done && send_done {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The rank's own block after the run (real mode).
    pub fn own_block(&self) -> Option<Vec<u8>> {
        let n = self.n;
        let (lo, hi) = block_range(self.msg, n, self.rank as u64, self.rank as u64 + 1);
        if let Some(d) = &self.root_data {
            return Some(d.slice(lo as usize..hi as usize).to_vec());
        }
        let buf = self.buffer.as_ref()?;
        let rel = (lo - self.range.0) as usize;
        Some(buf[rel..rel + (hi - lo) as usize].to_vec())
    }
}

impl RankProgram for AdaptScatter {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.msg == 0 || self.n == 1 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_recvs(ctx);
        for c in 0..self.children.len() {
            self.push_sends(ctx, c);
        }
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, c, off) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                let c = c as usize;
                self.outstanding[c] -= 1;
                let (_, hi) = self.child_ranges[c];
                self.sent[c] += (hi - off).min(self.cfg.seg_size);
                self.push_sends(ctx, c);
            }
            Completion::RecvDone { tag, data, .. } => {
                // The tag is the segment index in this rank's own grid.
                let own_idx = tag as usize;
                let off = self.range.0 + tag as u64 * self.cfg.seg_size;
                let len = data.len();
                if let (Some(buf), Some(bytes)) = (self.buffer.as_mut(), data.bytes()) {
                    let rel = (off - self.range.0) as usize;
                    buf[rel..rel + len as usize].copy_from_slice(bytes);
                }
                debug_assert!(!self.have[own_idx], "duplicate segment");
                self.have[own_idx] = true;
                self.recvs_done += 1;
                while (self.prefix_segs as usize) < self.have.len()
                    && self.have[self.prefix_segs as usize]
                {
                    self.prefix_segs += 1;
                }
                self.push_recvs(ctx);
                for c in 0..self.children.len() {
                    self.push_sends(ctx, c);
                }
            }
            other => panic!("scatter got {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    #[test]
    fn block_ranges_cover_message() {
        let (lo, hi) = block_range(1000, 7, 0, 7);
        assert_eq!((lo, hi), (0, 1000));
        let mut total = 0;
        for i in 0..7 {
            let (a, b) = block_range(1000, 7, i, i + 1);
            total += b - a;
        }
        assert_eq!(total, 1000);
    }

    fn run_scatter(n: u32, msg: u64, seg: u64) {
        let data: Vec<u8> = (0..msg).map(|i| (i * 17 % 253) as u8).collect();
        let spec = ScatterSpec {
            nranks: n,
            msg_bytes: msg,
            cfg: AdaptConfig::default().with_seg_size(seg),
            data: Some(Bytes::from(data.clone())),
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let s = any.downcast::<AdaptScatter>().unwrap();
            let (lo, hi) = block_range(msg, n as u64, r as u64, r as u64 + 1);
            assert_eq!(
                s.own_block().unwrap(),
                &data[lo as usize..hi as usize],
                "rank {r} of {n}"
            );
        }
    }

    #[test]
    fn scatter_delivers_each_block() {
        run_scatter(8, 100_000, 4 * 1024);
        run_scatter(13, 77_777, 2 * 1024);
        run_scatter(2, 10_000, 64 * 1024);
    }

    #[test]
    fn single_rank_scatter() {
        let spec = ScatterSpec {
            nranks: 1,
            msg_bytes: 1024,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
        assert!(world.run(spec.programs()).makespan.as_nanos() < 1_000_000);
    }
}
