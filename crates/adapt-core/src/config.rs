//! Tuning knobs of the ADAPT engine.

/// Configuration of the event-driven pipeline (§2.2.1).
///
/// ```
/// use adapt_core::AdaptConfig;
/// let cfg = AdaptConfig::default().with_seg_size(32 * 1024).with_outstanding(2, 6);
/// assert_eq!(cfg.seg_size, 32 * 1024);
/// assert!(cfg.outstanding_recvs > cfg.outstanding_sends, "the M > N rule");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptConfig {
    /// Pipeline segment size in bytes.
    pub seg_size: u64,
    /// `N`: concurrent outstanding sends per child.
    pub outstanding_sends: u32,
    /// `M`: concurrent outstanding receives per parent/child link. The
    /// paper sets `M > N` so a segment's receive is always posted before
    /// the segment arrives, avoiding the unexpected-message copy.
    pub outstanding_recvs: u32,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            seg_size: 64 * 1024,
            outstanding_sends: 4,
            outstanding_recvs: 8,
        }
    }
}

impl AdaptConfig {
    /// A configuration with a different segment size.
    pub fn with_seg_size(mut self, seg_size: u64) -> Self {
        assert!(seg_size > 0);
        self.seg_size = seg_size;
        self
    }

    /// A configuration with different pipeline depths.
    pub fn with_outstanding(mut self, sends: u32, recvs: u32) -> Self {
        assert!(sends > 0 && recvs > 0);
        self.outstanding_sends = sends;
        self.outstanding_recvs = recvs;
        self
    }
}

/// Pack an operation token: an 8-bit kind, a 24-bit peer index, and a
/// 32-bit segment index.
pub(crate) fn pack_token(kind: u8, peer: u32, seg: u64) -> adapt_mpi::Token {
    debug_assert!(peer < (1 << 24));
    debug_assert!(seg < (1 << 32));
    adapt_mpi::Token(((kind as u64) << 56) | ((peer as u64) << 32) | seg)
}

/// Unpack a token produced by [`pack_token`].
pub(crate) fn unpack_token(t: adapt_mpi::Token) -> (u8, u32, u64) {
    (
        (t.0 >> 56) as u8,
        ((t.0 >> 32) & 0xFF_FFFF) as u32,
        t.0 & 0xFFFF_FFFF,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_m_greater_than_n() {
        let c = AdaptConfig::default();
        assert!(c.outstanding_recvs > c.outstanding_sends);
    }

    #[test]
    fn token_roundtrip() {
        for (k, p, s) in [
            (0u8, 0u32, 0u64),
            (3, 1023, 4_000_000_000),
            (255, (1 << 24) - 1, u32::MAX as u64),
        ] {
            assert_eq!(unpack_token(pack_token(k, p, s)), (k, p, s));
        }
    }

    #[test]
    fn builder_methods() {
        let c = AdaptConfig::default()
            .with_seg_size(4096)
            .with_outstanding(2, 5);
        assert_eq!(c.seg_size, 4096);
        assert_eq!(c.outstanding_sends, 2);
        assert_eq!(c.outstanding_recvs, 5);
    }
}
