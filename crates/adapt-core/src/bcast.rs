//! ADAPT event-driven broadcast (paper §2.2.1, Figure 4, Algorithm 3).
//!
//! Every rank keeps *per-child independent* send pipelines (`N` outstanding
//! sends each) and an *independent* receive pipeline from its parent
//! (`M >= N` outstanding receives). The completion callback of each low-level
//! operation posts the next one — there is no Wait/Waitall anywhere, so a
//! delayed segment or a slow child never stalls its siblings
//! (child independence) and segments rebalance across the in-flight window
//! (segment independence).

use crate::config::{pack_token, unpack_token, AdaptConfig};
use crate::segments::Segments;
use crate::tree::Tree;
use adapt_mpi::{program::ANY_TAG, Completion, Payload, ProgramCtx, RankProgram, Tag};
use bytes::Bytes;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;

/// Description of one ADAPT broadcast, shared by all ranks.
#[derive(Clone)]
pub struct BcastSpec {
    /// Communication tree (any shape, including the topology-aware tree).
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline configuration.
    pub cfg: AdaptConfig,
    /// Real payload at the root (`None` runs in synthetic timing mode).
    pub data: Option<Bytes>,
}

impl BcastSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.tree.len())
            .map(|r| Box::new(AdaptBcast::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's state machine for the ADAPT broadcast.
///
/// Fault tolerance (ULFM-style shrink): on a revoke notification the
/// rank rebuilds the tree around the agreed dead set. A child whose
/// parent died re-posts a full receive window toward its adopting
/// parent; the adopting parent resends every segment from 0 to each
/// adopted child. Both sides derive the decision from the *same*
/// runtime snapshot (`dead` + `active`), so the resend and the re-post
/// always pair up. Duplicate payloads are ignored; dead children are
/// dropped from the completion target. When the root dies no survivor
/// holds the payload authoritatively — the rank stops posting and the
/// runtime reports a structured `RanksFailed` instead of hanging.
pub struct AdaptBcast {
    rank: u32,
    parent: Option<u32>,
    /// The original tree, kept for deterministic rebuilds on failure.
    tree: Arc<Tree>,
    /// Child slots only grow (send tokens encode the slot index): a dead
    /// child is masked via `alive`, an adopted child appends a new slot.
    children: Vec<u32>,
    /// Per child: still alive? Dead slots stop refilling and leave the
    /// completion target.
    alive: Vec<bool>,
    segs: Segments,
    cfg: AdaptConfig,
    /// The root's full payload (root only).
    root_payload: Option<Payload>,
    /// Received segments, indexed by segment id (non-root).
    received: Vec<Option<Payload>>,
    /// Segment ids available for forwarding, in availability order. For the
    /// root this is `0..nseg` up front (the paper's "segment pool").
    /// Distinct: a duplicate arrival is never pushed twice.
    ready: Vec<u64>,
    /// Per child: cursor into `ready`.
    cursor: Vec<usize>,
    /// Per child: sends currently in flight.
    outstanding: Vec<u32>,
    /// Per child: SendDone count.
    done: Vec<u64>,
    /// Receives completed from the *current* parent (resets on adoption).
    recvs_done: u64,
    /// Receives posted toward the current parent (resets on adoption).
    recvs_posted: u64,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptBcast {
    /// Build rank `rank`'s program for `spec`.
    pub fn new(spec: &BcastSpec, rank: u32) -> AdaptBcast {
        let segs = Segments::new(spec.msg_bytes, spec.cfg.seg_size);
        let children = spec.tree.children(rank).to_vec();
        let is_root = rank == spec.tree.root();
        let root_payload = if is_root {
            Some(match &spec.data {
                Some(b) => Payload::Data(b.clone()),
                None => Payload::Synthetic(spec.msg_bytes),
            })
        } else {
            None
        };
        let nseg = segs.count();
        let ready = if is_root {
            (0..nseg).collect()
        } else {
            Vec::new()
        };
        AdaptBcast {
            rank,
            parent: spec.tree.parent(rank),
            tree: spec.tree.clone(),
            alive: vec![true; children.len()],
            cursor: vec![0; children.len()],
            outstanding: vec![0; children.len()],
            done: vec![0; children.len()],
            children,
            segs,
            cfg: spec.cfg,
            root_payload,
            received: vec![None; nseg as usize],
            ready,
            recvs_done: 0,
            recvs_posted: 0,
            finished: false,
            finished_at: None,
        }
    }

    fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    fn nseg(&self) -> u64 {
        self.segs.count()
    }

    /// The payload of segment `s` as this rank knows it.
    fn seg_payload(&self, s: u64) -> Payload {
        match &self.root_payload {
            Some(p) => p.slice(self.segs.offset(s), self.segs.len(s)),
            None => self.received[s as usize]
                .clone()
                .expect("forwarding a segment that has not arrived"),
        }
    }

    /// Keep child `c`'s pipeline full: post sends while below `N` and
    /// segments are available. A dead child's pipeline never refills.
    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx, c: usize) {
        if !self.alive[c] {
            return;
        }
        while self.outstanding[c] < self.cfg.outstanding_sends && self.cursor[c] < self.ready.len()
        {
            let seg = self.ready[self.cursor[c]];
            self.cursor[c] += 1;
            self.outstanding[c] += 1;
            let payload = self.seg_payload(seg);
            ctx.isend(
                self.children[c],
                seg as Tag,
                payload,
                pack_token(KIND_SEND, c as u32, seg),
            );
        }
    }

    /// Keep the receive pipeline `M` deep. Receives are wildcard-tagged so
    /// the window accepts whichever segments the parent completes first —
    /// segment identity travels in the message tag.
    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        let Some(parent) = self.parent else { return };
        while self.recvs_posted < self.nseg()
            && self.recvs_posted - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let idx = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv(parent, ANY_TAG, pack_token(KIND_RECV, 0, idx));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        let nseg = self.nseg();
        let recv_done = self.is_root() || self.recvs_done == nseg;
        // Shrink semantics: only live children count toward completion;
        // a dead child's outstanding sends complete (or are completed by
        // the failure detector) but its remaining segments are owed to
        // no one.
        let send_done = (0..self.children.len()).all(|c| !self.alive[c] || self.done[c] == nseg);
        if recv_done && send_done {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The rank this program runs on.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Received segments reassembled into the full message (testing aid;
    /// root returns its own payload).
    pub fn assembled(&self) -> Option<Vec<u8>> {
        if let Some(p) = &self.root_payload {
            return p.bytes().map(|b| b.to_vec());
        }
        let mut out = Vec::with_capacity(self.segs.total() as usize);
        for seg in &self.received {
            out.extend_from_slice(seg.as_ref()?.bytes()?);
        }
        Some(out)
    }
}

impl RankProgram for AdaptBcast {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.nseg() == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_recvs(ctx);
        for c in 0..self.children.len() {
            self.push_sends(ctx, c);
        }
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, c, _seg) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                let c = c as usize;
                self.outstanding[c] -= 1;
                self.done[c] += 1;
                self.push_sends(ctx, c);
            }
            Completion::RecvDone {
                token,
                src,
                tag,
                data,
            } => {
                let (kind, _, _idx) = unpack_token(token);
                debug_assert_eq!(kind, KIND_RECV);
                let seg = tag as u64;
                // First arrival wins: after an adoption the new parent
                // resends everything, so segments the dead parent already
                // delivered arrive again and are dropped here.
                if self.received[seg as usize].is_none() {
                    self.received[seg as usize] = Some(data);
                    self.ready.push(seg);
                }
                // Only the current parent's deliveries advance the
                // pipeline: a straggler from a dead parent (matched
                // before the revoke) still contributes its data above
                // but must not distort the new window's accounting.
                if Some(src) == self.parent {
                    self.recvs_done += 1;
                    self.push_recvs(ctx);
                }
                for c in 0..self.children.len() {
                    self.push_sends(ctx, c);
                }
            }
            // Broadcast posts no compute/copy/GPU work; a stray
            // completion of those kinds is a harness bug, but never
            // worth killing a fault-injected run over.
            other => debug_assert!(false, "broadcast got unexpected completion {other:?}"),
        }
        self.check_done(ctx);
    }

    fn on_peer_failed(&mut self, ctx: &mut dyn ProgramCtx, dead: &[u32], active: &[u32]) {
        if self.finished || self.nseg() == 0 {
            return;
        }
        // Dead children leave the completion target; their slots stay
        // (send tokens encode the slot index) but never refill.
        for (c, &child) in self.children.iter().enumerate() {
            if dead.contains(&child) {
                self.alive[c] = false;
            }
        }
        let Ok(rebuilt) = self.tree.rebuild_without(dead) else {
            // The root died: no survivor holds the payload with
            // authority, so recovery is impossible. Posting nothing lets
            // the runtime diagnose a structured RanksFailed.
            return;
        };
        // Child side: my parent died — attach to the adopting parent.
        if let Some(p) = self.parent {
            if dead.contains(&p) {
                let np = rebuilt.parent(self.rank);
                self.parent = np;
                if np.is_some_and(|np| active.contains(&np)) {
                    // The adopting parent (same snapshot) commits to
                    // resending every segment from 0; mirror it with a
                    // fresh full receive window. Anything the dead parent
                    // already delivered arrives again and deduplicates.
                    self.recvs_posted = 0;
                    self.recvs_done = 0;
                    self.push_recvs(ctx);
                }
                // Otherwise the adopting parent already finished (or no
                // live ancestor remains): no resend can come. If segments
                // are missing this rank stalls and the run ends in a
                // structured RanksFailed — partial completion, no panic.
            }
        }
        // Parent side: adopt the orphans the rebuilt tree assigns to us,
        // skipping any that already finished (they need nothing, and
        // sending to a finished rank would poison the run).
        for &child in rebuilt.children(self.rank) {
            if !self.children.contains(&child) && active.contains(&child) {
                self.children.push(child);
                self.alive.push(true);
                self.cursor.push(0);
                self.outstanding.push(0);
                self.done.push(0);
                let c = self.children.len() - 1;
                self.push_sends(ctx, c);
            }
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeKind;
    use adapt_mpi::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn run(
        kind: TreeKind,
        nranks: u32,
        msg: u64,
        cfg: AdaptConfig,
        data: Option<Bytes>,
    ) -> (adapt_sim::time::Duration, Vec<Box<dyn RankProgram>>) {
        let spec = BcastSpec {
            tree: Arc::new(Tree::build(kind, nranks, 0)),
            msg_bytes: msg,
            cfg,
            data,
        };
        let machine = profiles::minicluster(4, 2, 2);
        let world = World::cpu(machine, nranks, ClusterNoise::silent(nranks));
        let res = world.run(spec.programs());
        (res.makespan, res.programs)
    }

    fn assert_all_received(programs: Vec<Box<dyn RankProgram>>, expect: &[u8]) {
        for (r, p) in programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let b = any.downcast::<AdaptBcast>().expect("bcast program");
            let got = b
                .assembled()
                .unwrap_or_else(|| panic!("rank {r} incomplete"));
            assert_eq!(got, expect, "rank {r} data mismatch");
        }
    }

    #[test]
    fn delivers_data_on_every_tree_shape() {
        let data: Vec<u8> = (0..200_000u32).map(|i| (i * 31 % 251) as u8).collect();
        for kind in [
            TreeKind::Chain,
            TreeKind::Binary,
            TreeKind::Binomial,
            TreeKind::Knomial(4),
            TreeKind::Flat,
        ] {
            let (_, programs) = run(
                kind,
                16,
                data.len() as u64,
                AdaptConfig::default().with_seg_size(16 * 1024),
                Some(Bytes::from(data.clone())),
            );
            assert_all_received(programs, &data);
        }
    }

    #[test]
    fn synthetic_mode_times_out_of_order_pipelines() {
        let (t, _) = run(TreeKind::Chain, 8, 1 << 20, AdaptConfig::default(), None);
        assert!(t.as_nanos() > 0);
    }

    #[test]
    fn zero_byte_broadcast_finishes() {
        let (t, _) = run(TreeKind::Binomial, 8, 0, AdaptConfig::default(), None);
        assert!(t.as_nanos() < 1_000_000);
    }

    #[test]
    fn single_rank_broadcast() {
        let (t, _) = run(TreeKind::Chain, 1, 1 << 20, AdaptConfig::default(), None);
        assert!(t.as_nanos() < 1_000_000);
    }

    #[test]
    fn single_segment_message() {
        let data: Vec<u8> = vec![7u8; 1000];
        let (_, programs) = run(
            TreeKind::Binary,
            5,
            1000,
            AdaptConfig::default(),
            Some(Bytes::from(data.clone())),
        );
        assert_all_received(programs, &data);
    }

    #[test]
    fn pipelining_beats_single_segment_on_chain() {
        // A chain with pipelining overlaps hops; one giant segment cannot.
        let msg = 4 << 20;
        let (pipelined, _) = run(
            TreeKind::Chain,
            8,
            msg,
            AdaptConfig::default().with_seg_size(64 * 1024),
            None,
        );
        let (mono, _) = run(
            TreeKind::Chain,
            8,
            msg,
            AdaptConfig::default().with_seg_size(msg),
            None,
        );
        assert!(
            pipelined.as_nanos() * 2 < mono.as_nanos(),
            "pipelined={pipelined} vs monolithic={mono}"
        );
    }

    #[test]
    fn m_greater_than_n_avoids_unexpected_messages() {
        let spec = BcastSpec {
            tree: Arc::new(Tree::build(TreeKind::Chain, 4, 0)),
            msg_bytes: 2 << 20,
            cfg: AdaptConfig::default().with_outstanding(4, 8),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(4, 1, 1), 4, ClusterNoise::silent(4));
        let res = world.run(spec.programs());
        assert_eq!(res.stats.unexpected_matches, 0, "M > N keeps recvs ahead");
    }
}
