//! Communication trees.
//!
//! ADAPT decouples the collective engine from the tree shape (§2.2.4): any
//! spanning tree can drive broadcast (data flows root → leaves) or reduce
//! (leaves → root). This module provides the classic shapes — chain,
//! k-ary, binomial, k-nomial, flat — plus the multi-level topology-aware
//! tree of §3.2, built by composing per-level shapes bottom-up and gluing
//! them through the group leaders.

use adapt_topology::{Hierarchy, Placement, Rank};

/// Shape of a (sub-)tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKind {
    /// Linear pipeline: each rank forwards to the next.
    Chain,
    /// Complete binary tree (BFS order).
    Binary,
    /// Complete k-ary tree (BFS order).
    Kary(u32),
    /// Binomial tree.
    Binomial,
    /// k-nomial tree (binomial generalized to radix k).
    Knomial(u32),
    /// Root sends directly to everyone.
    Flat,
}

/// A rooted spanning tree over the ranks of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tree {
    root: Rank,
    parent: Vec<Option<Rank>>,
    children: Vec<Vec<Rank>>,
}

impl Tree {
    /// An edgeless forest over `n` ranks (used as a composition canvas).
    fn empty(n: u32, root: Rank) -> Tree {
        Tree {
            root,
            parent: vec![None; n as usize],
            children: vec![Vec::new(); n as usize],
        }
    }

    /// Build a *partial* tree: a shape over `members` (whose first element
    /// is the sub-root) embedded in a canvas of `n` ranks. Ranks outside
    /// `members` are isolated (no parent, no children) — hierarchical
    /// phase collectives use this so non-participants no-op.
    pub fn partial(kind: TreeKind, n: u32, members: &[Rank]) -> Tree {
        assert!(!members.is_empty(), "partial tree needs members");
        let mut tree = Tree::empty(n, members[0]);
        tree.add_subtree(kind, members);
        tree
    }

    /// Build a tree of the given shape over all `n` ranks with `root`.
    /// Non-zero roots are handled by the usual virtual-rank rotation.
    ///
    /// ```
    /// use adapt_core::{Tree, TreeKind};
    /// let t = Tree::build(TreeKind::Binomial, 8, 0);
    /// assert_eq!(t.children(0), &[1, 2, 4]);
    /// assert_eq!(t.parent(5), Some(4));
    /// t.validate().unwrap();
    /// ```
    pub fn build(kind: TreeKind, n: u32, root: Rank) -> Tree {
        assert!(root < n, "root out of range");
        let members: Vec<Rank> = (0..n).map(|v| (v + root) % n).collect();
        let mut tree = Tree::empty(n, root);
        tree.add_subtree(kind, &members);
        tree
    }

    /// Overlay a sub-tree of the given shape on `members` (`members[0]` is the
    /// sub-root and receives no parent edge here). Panics if a member other
    /// than the sub-root already has a parent — composition must assign each
    /// rank's parent exactly once.
    pub fn add_subtree(&mut self, kind: TreeKind, members: &[Rank]) {
        let m = members.len();
        if m <= 1 {
            return;
        }
        let mut connect = |child_vr: usize, parent_vr: usize| {
            let c = members[child_vr];
            let p = members[parent_vr];
            assert!(
                self.parent[c as usize].is_none() && c != self.root,
                "rank {c} assigned two parents during composition"
            );
            self.parent[c as usize] = Some(p);
            self.children[p as usize].push(c);
        };
        match kind {
            TreeKind::Chain => {
                for v in 1..m {
                    connect(v, v - 1);
                }
            }
            TreeKind::Binary => {
                for v in 1..m {
                    connect(v, (v - 1) / 2);
                }
            }
            TreeKind::Kary(k) => {
                let k = k.max(1) as usize;
                for v in 1..m {
                    connect(v, (v - 1) / k);
                }
            }
            TreeKind::Binomial => {
                // Virtual rank v's parent clears v's lowest set bit.
                for v in 1..m {
                    let lsb = v & v.wrapping_neg();
                    connect(v, v - lsb);
                }
            }
            TreeKind::Knomial(k) => {
                let k = (k.max(2)) as usize;
                // Radix-k generalization: strip the lowest non-zero base-k
                // digit.
                for v in 1..m {
                    let mut digit = 1;
                    while (v / digit) % k == 0 {
                        digit *= k;
                    }
                    let low = (v / digit) % k;
                    connect(v, v - low * digit);
                }
            }
            TreeKind::Flat => {
                for v in 1..m {
                    connect(v, 0);
                }
            }
        }
    }

    /// Number of ranks spanned.
    pub fn len(&self) -> u32 {
        self.parent.len() as u32
    }

    /// True for a zero-rank tree (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root rank.
    pub fn root(&self) -> Rank {
        self.root
    }

    /// Parent of `rank` (`None` for the root).
    pub fn parent(&self, rank: Rank) -> Option<Rank> {
        self.parent[rank as usize]
    }

    /// Children of `rank`, in send order.
    pub fn children(&self, rank: Rank) -> &[Rank] {
        &self.children[rank as usize]
    }

    /// Depth of `rank` (root = 0).
    pub fn depth(&self, rank: Rank) -> u32 {
        let mut d = 0;
        let mut r = rank;
        while let Some(p) = self.parent[r as usize] {
            d += 1;
            r = p;
            assert!(d <= self.len(), "cycle in tree");
        }
        d
    }

    /// Height of the whole tree.
    pub fn height(&self) -> u32 {
        (0..self.len()).map(|r| self.depth(r)).max().unwrap_or(0)
    }

    /// Maximum fan-out.
    pub fn max_children(&self) -> usize {
        self.children.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Rebuild the tree around a set of dead ranks: every live rank whose
    /// ancestor chain crosses a dead rank is re-parented to its nearest
    /// *live* ancestor, and dead ranks are cut out entirely (no parent,
    /// no children). Send order under the adopting parent is preserved:
    /// surviving original children first, adopted orphans after, in
    /// original-tree order.
    ///
    /// Errors if the root itself is dead — there is no rank to shrink the
    /// collective onto, so the caller must surface a structured failure.
    pub fn rebuild_without(&self, dead: &[Rank]) -> Result<Tree, String> {
        let n = self.len() as usize;
        let mut is_dead = vec![false; n];
        for &d in dead {
            if (d as usize) < n {
                is_dead[d as usize] = true;
            }
        }
        if is_dead[self.root as usize] {
            return Err(format!("root rank {} is dead; cannot rebuild", self.root));
        }
        let mut t = Tree::empty(self.len(), self.root);
        // BFS from the root keeps adoption order deterministic and equal
        // to the original send order at every adopting parent.
        let mut frontier: Vec<(Rank, Rank)> = self // (live parent, subtree top)
            .children(self.root)
            .iter()
            .map(|&c| (self.root, c))
            .collect();
        while let Some((live_parent, top)) = frontier.pop() {
            if is_dead[top as usize] {
                // Cut the dead rank out; its children are adopted by the
                // nearest live ancestor, keeping their original order.
                for &c in self.children(top).iter().rev() {
                    frontier.push((live_parent, c));
                }
            } else {
                t.parent[top as usize] = Some(live_parent);
                t.children[live_parent as usize].push(top);
                for &c in self.children(top).iter().rev() {
                    frontier.push((top, c));
                }
            }
        }
        // Normalize adoption order: `pop` above walks depth-first, which
        // can interleave sibling subtrees, so sort each child list by the
        // original tree's BFS discovery order (rank order of first
        // appearance is not stable enough — use original depth, then the
        // original parent's send position chain). Simpler and fully
        // deterministic: surviving original children keep their relative
        // order, adopted ranks append in original-tree preorder.
        let preorder = self.preorder();
        let mut pos = vec![0usize; n];
        for (i, &r) in preorder.iter().enumerate() {
            pos[r as usize] = i;
        }
        for (p, kids) in t.children.iter_mut().enumerate() {
            kids.sort_by_key(|&c| {
                let original = self.parent[c as usize] == Some(p as Rank);
                (!original, pos[c as usize])
            });
        }
        Ok(t)
    }

    /// Preorder walk (root first, children in send order).
    fn preorder(&self) -> Vec<Rank> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let mut stack = vec![self.root];
        while let Some(r) = stack.pop() {
            out.push(r);
            for &c in self.children(r).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Check the spanning-tree invariants; used by tests and on composition.
    pub fn validate(&self) -> Result<(), String> {
        if self.parent[self.root as usize].is_some() {
            return Err("root has a parent".into());
        }
        // Every non-root rank must have a parent and be reachable.
        for r in 0..self.len() {
            if r != self.root && self.parent[r as usize].is_none() {
                return Err(format!("rank {r} unreachable (no parent)"));
            }
        }
        // Parent/children symmetry.
        for p in 0..self.len() {
            for &c in self.children(p) {
                if self.parent[c as usize] != Some(p) {
                    return Err(format!("edge {p}->{c} not symmetric"));
                }
            }
        }
        // Depth computation doubles as cycle detection.
        for r in 0..self.len() {
            let _ = self.depth(r);
        }
        Ok(())
    }
}

/// Per-level shapes for the topology-aware tree of §3.2.1.
///
/// The paper's large-message configuration uses a chain at every level
/// (following Pješivac-Grbović et al., Cluster Computing 2007); each level can be changed
/// independently to match its lane characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopoTreeConfig {
    /// Shape among node leaders (inter-node lane).
    pub cluster: TreeKind,
    /// Shape among socket leaders within a node (inter-socket lane).
    pub node: TreeKind,
    /// Shape within a socket (shared-memory lane).
    pub socket: TreeKind,
}

impl Default for TopoTreeConfig {
    fn default() -> Self {
        TopoTreeConfig {
            cluster: TreeKind::Chain,
            node: TreeKind::Chain,
            socket: TreeKind::Chain,
        }
    }
}

/// Build the single-communicator topology-aware tree (paper Figure 5):
/// group processes bottom-up (socket → node → cluster), give each group its
/// own shape, and glue levels through the group leaders. Rooted at rank 0.
///
/// ```
/// use adapt_core::{topology_aware_tree, TopoTreeConfig};
/// use adapt_topology::{profiles, Placement};
/// // Figure 5's machine: 3 nodes x 2 sockets x 4 cores.
/// let machine = profiles::minicluster(3, 2, 4);
/// let placement = Placement::block_cpu(machine.shape, 24);
/// let tree = topology_aware_tree(&placement, TopoTreeConfig::default());
/// // The root feeds the next node leader, its socket-1 leader, and its
/// // intra-socket neighbour — three different lanes.
/// assert_eq!(tree.children(0), &[8, 4, 1]);
/// ```
pub fn topology_aware_tree(placement: &Placement, config: TopoTreeConfig) -> Tree {
    topology_aware_tree_rooted(placement, config, 0)
}

/// [`topology_aware_tree`] with an arbitrary root: `root` is elected leader
/// of its socket, node, and the cluster, so the tree is rooted at it while
/// every lane still carries its level's traffic (needed by applications
/// whose broadcast root rotates, e.g. ASP).
pub fn topology_aware_tree_rooted(
    placement: &Placement,
    config: TopoTreeConfig,
    root: Rank,
) -> Tree {
    let h = Hierarchy::build_rooted(placement, root);
    let n = placement.len();
    assert_eq!(h.cluster_group.leader(), root, "root leads the hierarchy");
    let mut tree = Tree::empty(n, root);
    // Top level first so composition asserts catch overlap bugs early.
    tree.add_subtree(config.cluster, &h.cluster_group.ranks);
    for g in &h.node_groups {
        tree.add_subtree(config.node, &g.ranks);
    }
    for g in &h.socket_groups {
        tree.add_subtree(config.socket, &g.ranks);
    }
    debug_assert_eq!(tree.validate(), Ok(()));
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_topology::ClusterShape;

    #[test]
    fn chain_shape() {
        let t = Tree::build(TreeKind::Chain, 5, 0);
        assert_eq!(t.children(0), &[1]);
        assert_eq!(t.children(3), &[4]);
        assert_eq!(t.children(4), &[] as &[u32]);
        assert_eq!(t.height(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn binary_shape() {
        let t = Tree::build(TreeKind::Binary, 7, 0);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.children(2), &[5, 6]);
        assert_eq!(t.height(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn binomial_shape() {
        let t = Tree::build(TreeKind::Binomial, 8, 0);
        // Root of an 8-rank binomial has children 1, 2, 4.
        assert_eq!(t.children(0), &[1, 2, 4]);
        assert_eq!(t.children(4), &[5, 6]);
        assert_eq!(t.children(6), &[7]);
        assert_eq!(t.height(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn knomial_radix4() {
        let t = Tree::build(TreeKind::Knomial(4), 16, 0);
        // Root's children: 1,2,3 (digit 1) and 4,8,12 (digit k).
        assert_eq!(t.children(0), &[1, 2, 3, 4, 8, 12]);
        assert_eq!(t.children(4), &[5, 6, 7]);
        t.validate().unwrap();
    }

    #[test]
    fn knomial_radix2_equals_binomial() {
        for n in [1u32, 2, 3, 7, 8, 13, 16] {
            assert_eq!(
                Tree::build(TreeKind::Knomial(2), n, 0),
                Tree::build(TreeKind::Binomial, n, 0),
                "n={n}"
            );
        }
    }

    #[test]
    fn flat_shape() {
        let t = Tree::build(TreeKind::Flat, 6, 0);
        assert_eq!(t.children(0).len(), 5);
        assert_eq!(t.height(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn nonzero_root_rotation() {
        let t = Tree::build(TreeKind::Chain, 4, 2);
        assert_eq!(t.root(), 2);
        assert_eq!(t.children(2), &[3]);
        assert_eq!(t.children(3), &[0]);
        assert_eq!(t.children(0), &[1]);
        assert_eq!(t.parent(2), None);
        t.validate().unwrap();
    }

    #[test]
    fn single_rank_tree() {
        let t = Tree::build(TreeKind::Binomial, 1, 0);
        assert_eq!(t.children(0), &[] as &[u32]);
        t.validate().unwrap();
    }

    #[test]
    fn figure5_topology_tree() {
        // Paper Figure 5: 3 nodes x 2 sockets x 4 cores, chains everywhere.
        let shape = ClusterShape {
            nodes: 3,
            sockets_per_node: 2,
            cores_per_socket: 4,
            gpus_per_socket: 0,
        };
        let placement = Placement::block_cpu(shape, 24);
        let t = topology_aware_tree(&placement, TopoTreeConfig::default());
        t.validate().unwrap();
        // Cluster chain: 0 -> 8 -> 16.
        assert!(t.children(0).contains(&8));
        assert!(t.children(8).contains(&16));
        // Node chain: 0 -> 4 (socket leaders of node 0).
        assert!(t.children(0).contains(&4));
        // Socket chain: 4 -> 5 -> 6 -> 7; P4 glues the levels.
        assert_eq!(t.parent(5), Some(4));
        assert_eq!(t.parent(6), Some(5));
        assert_eq!(t.parent(7), Some(6));
        // Socket chain on node 0 socket 0: 0 -> 1 -> 2 -> 3.
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(3), Some(2));
        // Root fan-out on Figure 5 is 3: next node leader, next socket
        // leader, next core in socket.
        assert_eq!(t.children(0).len(), 3);
    }

    #[test]
    fn topo_tree_mixed_kinds() {
        let shape = ClusterShape {
            nodes: 4,
            sockets_per_node: 2,
            cores_per_socket: 8,
            gpus_per_socket: 0,
        };
        let placement = Placement::block_cpu(shape, 64);
        let t = topology_aware_tree(
            &placement,
            TopoTreeConfig {
                cluster: TreeKind::Binomial,
                node: TreeKind::Flat,
                socket: TreeKind::Binary,
            },
        );
        t.validate().unwrap();
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn rooted_topology_tree_spans_from_any_root() {
        let shape = ClusterShape {
            nodes: 3,
            sockets_per_node: 2,
            cores_per_socket: 4,
            gpus_per_socket: 0,
        };
        let placement = Placement::block_cpu(shape, 24);
        for root in [0u32, 5, 13, 23] {
            let t = topology_aware_tree_rooted(&placement, TopoTreeConfig::default(), root);
            assert_eq!(t.root(), root, "root {root}");
            t.validate().unwrap();
            assert_eq!(t.len(), 24);
        }
    }

    #[test]
    fn rebuild_without_reparents_orphans_to_live_ancestor() {
        // Binomial over 8: 0 -> {1, 2, 4}, 4 -> {5, 6}, 6 -> {7}.
        let t = Tree::build(TreeKind::Binomial, 8, 0);
        let r = t.rebuild_without(&[4]).unwrap();
        // 4's children are adopted by the root, after its surviving
        // original children, in original order.
        assert_eq!(r.children(0), &[1, 2, 5, 6]);
        assert_eq!(r.parent(5), Some(0));
        assert_eq!(r.parent(6), Some(0));
        // The grandchild keeps its live parent.
        assert_eq!(r.parent(7), Some(6));
        // The dead rank is cut out entirely.
        assert_eq!(r.parent(4), None);
        assert_eq!(r.children(4), &[] as &[u32]);
    }

    #[test]
    fn rebuild_without_skips_chains_of_dead_ranks() {
        // Chain 0 -> 1 -> 2 -> 3 -> 4 with 1, 2, 3 all dead: 4 hops all
        // the way up to the root.
        let t = Tree::build(TreeKind::Chain, 5, 0);
        let r = t.rebuild_without(&[1, 2, 3]).unwrap();
        assert_eq!(r.parent(4), Some(0));
        assert_eq!(r.children(0), &[4]);
    }

    #[test]
    fn rebuild_without_dead_root_errors() {
        let t = Tree::build(TreeKind::Binary, 7, 0);
        assert!(t.rebuild_without(&[0]).is_err());
        // Leaf kills never error.
        assert!(t.rebuild_without(&[6]).is_ok());
    }

    #[test]
    fn rebuild_without_nobody_dead_is_identity() {
        for kind in [TreeKind::Binomial, TreeKind::Binary, TreeKind::Chain] {
            let t = Tree::build(kind, 13, 0);
            assert_eq!(t.rebuild_without(&[]).unwrap(), t);
        }
    }

    #[test]
    fn rebuild_without_spans_all_survivors() {
        // Every single-rank kill of the Figure-5 topology tree leaves a
        // tree spanning exactly the survivors.
        let shape = ClusterShape {
            nodes: 3,
            sockets_per_node: 2,
            cores_per_socket: 4,
            gpus_per_socket: 0,
        };
        let placement = Placement::block_cpu(shape, 24);
        let t = topology_aware_tree(&placement, TopoTreeConfig::default());
        for dead in 1..24u32 {
            let r = t.rebuild_without(&[dead]).unwrap();
            for rank in 0..24u32 {
                if rank == dead {
                    assert_eq!(r.parent(rank), None);
                    assert!(r.children(rank).is_empty());
                } else if rank != r.root() {
                    let p = r.parent(rank).expect("survivor reachable");
                    assert_ne!(p, dead, "no survivor may point at the dead rank");
                    assert!(r.children(p).contains(&rank), "symmetry");
                }
                let _ = r.depth(rank); // cycle check
            }
        }
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn overlapping_composition_panics() {
        let mut t = Tree::empty(4, 0);
        t.add_subtree(TreeKind::Chain, &[0, 1, 2]);
        t.add_subtree(TreeKind::Chain, &[0, 2, 3]); // 2 already has a parent
    }
}
