//! ADAPT event-driven gather: every rank contributes its block, subtree
//! ranges funnel to the root through per-child independent windows with no
//! Waitall (the all-to-one counterpart of [`crate::scatter`]).
//!
//! A rank's accumulated range fills from its own block plus its children's
//! subtree ranges; any fully-filled segment of the range is immediately
//! eligible for forwarding, in arrival order — segments never wait for
//! unrelated bytes.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use crate::tree::{Tree, TreeKind};
use adapt_mpi::{program::ANY_TAG, Completion, Payload, ProgramCtx, RankProgram, Tag};
use bytes::Bytes;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;

fn block_range(msg: u64, n: u64, lo: u64, hi: u64) -> (u64, u64) {
    let off = |i: u64| -> u64 {
        let base = msg / n;
        let rem = msg % n;
        i * base + i.min(rem)
    };
    (off(lo), off(hi))
}

fn binomial_subtree(v: u64, n: u64) -> u64 {
    if v == 0 {
        return n;
    }
    let lsb = v & v.wrapping_neg();
    lsb.min(n - v)
}

/// Description of one ADAPT gather (root = rank 0, binomial routing).
#[derive(Clone)]
pub struct GatherSpec {
    /// Number of ranks.
    pub nranks: u32,
    /// Total gathered size (each rank contributes its ~`msg/n` block).
    pub msg_bytes: u64,
    /// Pipeline configuration.
    pub cfg: AdaptConfig,
    /// Real per-rank contributions (`contributions[r]` must have rank
    /// `r`'s block length); `None` = synthetic.
    pub data: Option<Arc<Vec<Bytes>>>,
}

impl GatherSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        let tree = Arc::new(Tree::build(TreeKind::Binomial, self.nranks, 0));
        (0..self.nranks)
            .map(|r| Box::new(AdaptGather::new(self, &tree, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's event-driven gather.
pub struct AdaptGather {
    n: u64,
    msg: u64,
    parent: Option<u32>,
    children: Vec<u32>,
    cfg: AdaptConfig,
    /// The subtree range this rank accumulates.
    range: (u64, u64),
    buffer: Option<Vec<u8>>,
    /// Per own-grid segment: bytes filled so far.
    filled: Vec<u64>,
    /// Segments fully filled, in completion order (ready to forward).
    ready: Vec<u64>,
    cursor: usize,
    outstanding: u32,
    sends_done: u64,
    /// Per child: receives posted / arrived.
    child_ranges: Vec<(u64, u64)>,
    posted: Vec<u64>,
    arrived: Vec<u64>,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptGather {
    fn new(spec: &GatherSpec, tree: &Tree, rank: u32) -> AdaptGather {
        let n = spec.nranks as u64;
        let size = binomial_subtree(rank as u64, n);
        let (lo, hi) = block_range(spec.msg_bytes, n, rank as u64, rank as u64 + size);
        let children = tree.children(rank).to_vec();
        let child_ranges: Vec<(u64, u64)> = children
            .iter()
            .map(|&c| {
                let cs = binomial_subtree(c as u64, n);
                block_range(spec.msg_bytes, n, c as u64, c as u64 + cs)
            })
            .collect();
        let seg = spec.cfg.seg_size;
        let nseg = (hi - lo).div_ceil(seg) as usize;
        let mut g = AdaptGather {
            n,
            msg: spec.msg_bytes,
            parent: tree.parent(rank),
            outstanding: 0,
            sends_done: 0,
            posted: vec![0; children.len()],
            arrived: vec![0; children.len()],
            children,
            cfg: spec.cfg,
            range: (lo, hi),
            buffer: spec.data.is_some().then(|| vec![0u8; (hi - lo) as usize]),
            filled: vec![0; nseg],
            ready: Vec::new(),
            cursor: 0,
            child_ranges,
            finished: false,
            finished_at: None,
        };
        // The own block is present from the start.
        let (own_lo, own_hi) = block_range(spec.msg_bytes, n, rank as u64, rank as u64 + 1);
        if let (Some(buf), Some(contribs)) = (g.buffer.as_mut(), spec.data.as_deref()) {
            let own = &contribs[rank as usize];
            assert_eq!(own.len() as u64, own_hi - own_lo, "contribution size");
            buf[..own.len()].copy_from_slice(own);
        }
        g.fill(own_lo, own_hi - own_lo);
        g
    }

    /// Mark `[off, off+len)` filled; fully-filled segments become ready.
    fn fill(&mut self, off: u64, len: u64) {
        let seg = self.cfg.seg_size;
        let (lo, hi) = self.range;
        debug_assert!(off >= lo && off + len <= hi);
        let mut cur = off;
        let end = off + len;
        while cur < end {
            let idx = ((cur - lo) / seg) as usize;
            let seg_end = (lo + (idx as u64 + 1) * seg).min(hi);
            let take = seg_end.min(end) - cur;
            self.filled[idx] += take;
            let seg_len = seg_end - (lo + idx as u64 * seg);
            debug_assert!(self.filled[idx] <= seg_len);
            if self.filled[idx] == seg_len {
                self.ready.push(idx as u64);
            }
            cur += take;
        }
    }

    /// Keep the parent pipeline `N` deep.
    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx) {
        let Some(parent) = self.parent else { return };
        let seg = self.cfg.seg_size;
        let (lo, hi) = self.range;
        while self.outstanding < self.cfg.outstanding_sends && self.cursor < self.ready.len() {
            let idx = self.ready[self.cursor];
            self.cursor += 1;
            self.outstanding += 1;
            let off = lo + idx * seg;
            let len = (hi - off).min(seg);
            let payload = match &self.buffer {
                Some(buf) => {
                    let rel = (off - lo) as usize;
                    Payload::from(buf[rel..rel + len as usize].to_vec())
                }
                None => Payload::Synthetic(len),
            };
            ctx.isend(parent, idx as Tag, payload, pack_token(KIND_SEND, 0, idx));
        }
    }

    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx, c: usize) {
        let (clo, chi) = self.child_ranges[c];
        let nseg = (chi - clo).div_ceil(self.cfg.seg_size);
        while self.posted[c] < nseg
            && self.posted[c] - self.arrived[c] < self.cfg.outstanding_recvs as u64
        {
            let idx = self.posted[c];
            self.posted[c] += 1;
            ctx.irecv(
                self.children[c],
                ANY_TAG,
                pack_token(KIND_RECV, c as u32, idx),
            );
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        let nseg = self.filled.len() as u64;
        let all_filled = self.ready.len() as u64 == nseg;
        let done = if self.parent.is_none() {
            all_filled
        } else {
            self.sends_done == nseg
        };
        if done {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The fully gathered message (root, real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        if self.parent.is_some() {
            return None;
        }
        self.buffer.clone()
    }
}

impl RankProgram for AdaptGather {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.msg == 0 || self.n == 1 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        for c in 0..self.children.len() {
            self.push_recvs(ctx, c);
        }
        self.push_sends(ctx);
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, _, _) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                self.outstanding -= 1;
                self.sends_done += 1;
                self.push_sends(ctx);
            }
            Completion::RecvDone {
                token,
                src,
                tag,
                data,
            } => {
                let (kind, c, _) = unpack_token(token);
                debug_assert_eq!(kind, KIND_RECV);
                let c = c as usize;
                debug_assert_eq!(self.children[c], src);
                self.arrived[c] += 1;
                // The tag is the segment index in the child's grid.
                let (clo, chi) = self.child_ranges[c];
                let off = clo + tag as u64 * self.cfg.seg_size;
                let len = (chi - off).min(self.cfg.seg_size);
                debug_assert_eq!(len, data.len());
                if let (Some(buf), Some(bytes)) = (self.buffer.as_mut(), data.bytes()) {
                    let rel = (off - self.range.0) as usize;
                    buf[rel..rel + len as usize].copy_from_slice(bytes);
                }
                self.fill(off, len);
                self.push_recvs(ctx, c);
                self.push_sends(ctx);
            }
            other => panic!("gather got {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn run_gather(n: u32, msg: u64, seg: u64) {
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| {
                let (lo, hi) = block_range(msg, n as u64, r as u64, r as u64 + 1);
                Bytes::from(
                    (lo..hi)
                        .map(|i| ((i * 13 + r as u64) % 251) as u8)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut expected = Vec::with_capacity(msg as usize);
        for c in &contributions {
            expected.extend_from_slice(c);
        }
        let spec = GatherSpec {
            nranks: n,
            msg_bytes: msg,
            cfg: AdaptConfig::default().with_seg_size(seg),
            data: Some(Arc::new(contributions)),
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<AdaptGather>().unwrap();
        assert_eq!(
            root.result().unwrap(),
            expected,
            "n={n} msg={msg} seg={seg}"
        );
    }

    #[test]
    fn gather_reassembles_all_blocks() {
        run_gather(8, 100_000, 4 * 1024);
        run_gather(13, 77_777, 2 * 1024);
        run_gather(5, 9_999, 512);
        run_gather(2, 100, 64);
    }

    #[test]
    fn gather_synthetic_mode_runs() {
        let spec = GatherSpec {
            nranks: 16,
            msg_bytes: 8 << 20,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), 16, ClusterNoise::silent(16));
        assert!(world.run(spec.programs()).makespan.as_nanos() > 0);
    }

    #[test]
    fn single_rank_gather() {
        let spec = GatherSpec {
            nranks: 1,
            msg_bytes: 4096,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
        assert!(world.run(spec.programs()).makespan.as_nanos() < 1_000_000);
    }
}
