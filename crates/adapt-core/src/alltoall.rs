//! ADAPT event-driven alltoall — §2.2.3 explicitly includes "some
//! all-to-all collectives" in the basic-building-block argument.
//!
//! Every rank sends a personalized block to every other rank. The
//! schedule is the classic ring-offset order (step `s`: send to `r+s`,
//! receive from `r−s`, mod `n`), but without any step barrier: sends and
//! receives are windowed (`N` outstanding sends, `M` outstanding
//! receives) and progress purely on completions, so a slow peer delays
//! only its own exchange.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use adapt_mpi::{Completion, Payload, ProgramCtx, RankProgram, Token};
use bytes::Bytes;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;

/// Uniform block `i` of an `n`-way partitioned buffer. `MPI_Alltoall`
/// exchanges equal counts between every pair, so the buffer must divide
/// evenly ([`AlltoallSpec::programs`] asserts it).
fn block_range(msg: u64, n: u64, i: u64) -> (u64, u64) {
    let base = msg / n;
    (i * base, (i + 1) * base)
}

/// Description of one ADAPT alltoall.
#[derive(Clone)]
pub struct AlltoallSpec {
    /// Number of ranks.
    pub nranks: u32,
    /// Total buffer size per rank (block `i` goes to rank `i`).
    pub msg_bytes: u64,
    /// Pipeline configuration (windows over the peer schedule).
    pub cfg: AdaptConfig,
    /// Real inputs: `contributions[r]` is rank `r`'s full send buffer
    /// (`None` = synthetic).
    pub data: Option<Arc<Vec<Bytes>>>,
}

impl AlltoallSpec {
    /// Instantiate the per-rank programs. Panics unless `msg_bytes` divides
    /// evenly by the rank count (alltoall exchanges equal counts).
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        assert_eq!(
            self.msg_bytes % self.nranks as u64,
            0,
            "alltoall buffers must divide evenly over ranks"
        );
        (0..self.nranks)
            .map(|r| Box::new(AdaptAlltoall::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's event-driven alltoall.
pub struct AdaptAlltoall {
    rank: u32,
    n: u64,
    msg: u64,
    cfg: AdaptConfig,
    own: Option<Bytes>,
    result: Option<Vec<u8>>,
    /// Next schedule step to send (1..n).
    send_step: u64,
    outstanding_sends: u32,
    sends_done: u64,
    /// Next schedule step to post a receive for (1..n).
    recv_step: u64,
    recvs_done: u64,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptAlltoall {
    fn new(spec: &AlltoallSpec, rank: u32) -> AdaptAlltoall {
        let n = spec.nranks as u64;
        let own = spec.data.as_deref().map(|c| {
            let b = &c[rank as usize];
            assert_eq!(b.len() as u64, spec.msg_bytes, "contribution size");
            b.clone()
        });
        let mut result = spec
            .data
            .is_some()
            .then(|| vec![0u8; spec.msg_bytes as usize]);
        // Own block "arrives" locally.
        if let (Some(res), Some(own)) = (result.as_mut(), own.as_ref()) {
            let (lo, hi) = block_range(spec.msg_bytes, n, rank as u64);
            res[lo as usize..hi as usize].copy_from_slice(&own[lo as usize..hi as usize]);
        }
        AdaptAlltoall {
            rank,
            n,
            msg: spec.msg_bytes,
            cfg: spec.cfg,
            own,
            result,
            send_step: 1,
            outstanding_sends: 0,
            sends_done: 0,
            recv_step: 1,
            recvs_done: 0,
            finished: false,
            finished_at: None,
        }
    }

    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx) {
        while self.send_step < self.n && self.outstanding_sends < self.cfg.outstanding_sends {
            let s = self.send_step;
            self.send_step += 1;
            self.outstanding_sends += 1;
            let dst = ((self.rank as u64 + s) % self.n) as u32;
            let (lo, hi) = block_range(self.msg, self.n, dst as u64);
            let payload = match &self.own {
                Some(b) => Payload::Data(b.slice(lo as usize..hi as usize)),
                None => Payload::Synthetic(hi - lo),
            };
            ctx.isend(dst, 0, payload, pack_token(KIND_SEND, dst, s));
        }
    }

    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        while self.recv_step < self.n
            && (self.recv_step - 1) - self.recvs_done < self.cfg.outstanding_recvs as u64
        {
            let s = self.recv_step;
            self.recv_step += 1;
            let src = ((self.rank as u64 + self.n - s) % self.n) as u32;
            ctx.irecv(src, 0, pack_token(KIND_RECV, src, s));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        if self.sends_done == self.n - 1 && self.recvs_done == self.n - 1 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The received buffer (real mode, after the run): block `q` holds
    /// what rank `q` sent to this rank.
    pub fn result(&self) -> Option<Vec<u8>> {
        self.result.clone()
    }
}

impl RankProgram for AdaptAlltoall {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.n == 1 || self.msg == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.push_recvs(ctx);
        self.push_sends(ctx);
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { token } => {
                let (kind, _, _) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                self.outstanding_sends -= 1;
                self.sends_done += 1;
                self.push_sends(ctx);
            }
            Completion::RecvDone { src, data, .. } => {
                self.recvs_done += 1;
                if let (Some(res), Some(bytes)) = (self.result.as_mut(), data.bytes()) {
                    let (lo, hi) = block_range(self.msg, self.n, src as u64);
                    debug_assert_eq!((hi - lo) as usize, bytes.len());
                    res[lo as usize..hi as usize].copy_from_slice(bytes);
                }
                self.push_recvs(ctx);
            }
            other => panic!("alltoall got {other:?}"),
        }
        self.check_done(ctx);
    }
}

/// Token type used in tests below (kept for symmetry with other modules).
#[allow(dead_code)]
fn _token_type(_: Token) {}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::World;
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn run_alltoall(n: u32, msg: u64, sends: u32, recvs: u32) {
        let contributions: Arc<Vec<Bytes>> = Arc::new(
            (0..n as u64)
                .map(|r| {
                    Bytes::from(
                        (0..msg)
                            .map(|i| ((r * 97 + i * 13) % 251) as u8)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect(),
        );
        let spec = AlltoallSpec {
            nranks: n,
            msg_bytes: msg,
            cfg: AdaptConfig::default().with_outstanding(sends, recvs),
            data: Some(contributions.clone()),
        };
        let world = World::cpu(profiles::minicluster(3, 2, 4), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let a = any.downcast::<AdaptAlltoall>().unwrap();
            let got = a.result().unwrap();
            // Block q of rank r's result == block r of rank q's buffer.
            for q in 0..n as u64 {
                let (lo, hi) = block_range(msg, n as u64, r as u64);
                let expected = &contributions[q as usize][lo as usize..hi as usize];
                let (dlo, dhi) = block_range(msg, n as u64, q);
                assert_eq!(
                    &got[dlo as usize..dhi as usize],
                    expected,
                    "rank {r} block from {q}"
                );
            }
        }
    }

    #[test]
    fn alltoall_exchanges_every_block() {
        run_alltoall(2, 1000, 4, 8);
        run_alltoall(5, 7775, 2, 4);
        run_alltoall(8, 40_000, 4, 8);
        run_alltoall(13, 1300, 3, 6);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn alltoall_rejects_ragged_buffers() {
        let _ = AlltoallSpec {
            nranks: 3,
            msg_bytes: 1000,
            cfg: AdaptConfig::default(),
            data: None,
        }
        .programs();
    }

    #[test]
    fn alltoall_synthetic_large() {
        let spec = AlltoallSpec {
            nranks: 32,
            msg_bytes: 8 << 20,
            cfg: AdaptConfig::default(),
            data: None,
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), 32, ClusterNoise::silent(32));
        let res = world.run(spec.programs());
        assert!(res.makespan.as_nanos() > 0);
        assert_eq!(res.stats.messages, 32 * 31);
    }

    #[test]
    fn single_rank_alltoall_is_local() {
        let data = Bytes::from(vec![7u8; 100]);
        let spec = AlltoallSpec {
            nranks: 1,
            msg_bytes: 100,
            cfg: AdaptConfig::default(),
            data: Some(Arc::new(vec![data.clone()])),
        };
        let world = World::cpu(profiles::minicluster(1, 1, 1), 1, ClusterNoise::silent(1));
        let res = world.run(spec.programs());
        let p: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let a = p.downcast::<AdaptAlltoall>().unwrap();
        assert_eq!(a.result().unwrap(), data.to_vec());
    }
}
