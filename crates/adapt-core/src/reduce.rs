//! ADAPT event-driven reduce (paper §2.2.3 / §4.2).
//!
//! Data flows leaves → root along the tree. Each rank keeps `M` receives
//! outstanding per child and `N` sends outstanding toward its parent; a
//! segment travels upward as soon as every child's contribution has been
//! folded into it, independently of all other segments — no Waitall, no
//! cross-segment ordering.
//!
//! The fold itself can execute on the host CPU (blocking the progress
//! engine, as every mainstream MPI does) or be offloaded to the rank's GPU
//! stream (asynchronous, §4.2) — the ablation of Figure 11's reduce wins.

use crate::config::{pack_token, unpack_token, AdaptConfig};
use crate::segments::Segments;
use crate::tree::Tree;
use adapt_mpi::{
    combine, program::ANY_TAG, Completion, DType, Payload, ProgramCtx, RankProgram, ReduceOp, Tag,
};
use bytes::Bytes;
use std::sync::Arc;

const KIND_SEND: u8 = 1;
const KIND_RECV: u8 = 2;
const KIND_FOLD: u8 = 3;

/// What the reduction operates on.
///
/// Folds apply in completion order, so operators are assumed commutative
/// and associative (all predefined [`ReduceOp`]s are). Non-commutative
/// user operators would need rank-ordered folding, which MPI requires but
/// the paper's evaluation never exercises.
#[derive(Clone)]
pub enum ReduceData {
    /// Timing-only: no arithmetic, buffers are length-only.
    Synthetic,
    /// Real data: per-rank contributions, verified numerically after the
    /// run.
    Real {
        /// The operator.
        op: ReduceOp,
        /// Element type.
        dtype: DType,
        /// `contributions[r]` is rank `r`'s input vector.
        contributions: Arc<Vec<Bytes>>,
    },
}

/// Where the fold executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceExec {
    /// Host CPU: blocks the rank's progress engine for γ·bytes.
    Cpu,
    /// GPU stream: asynchronous, overlaps with communication (§4.2).
    GpuAsync,
}

/// Description of one ADAPT reduce, shared by all ranks.
#[derive(Clone)]
pub struct ReduceSpec {
    /// Communication tree (data flows child → parent).
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline configuration.
    pub cfg: AdaptConfig,
    /// Data mode.
    pub data: ReduceData,
    /// Fold execution target.
    pub exec: ReduceExec,
}

impl ReduceSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.tree.len())
            .map(|r| Box::new(AdaptReduce::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

struct SegState {
    /// Accumulated value (real mode only).
    value: Option<Vec<u8>>,
    /// Child contributions not yet folded.
    remaining: u32,
}

/// One rank's state machine for the ADAPT reduce.
pub struct AdaptReduce {
    rank: u32,
    parent: Option<u32>,
    children: Vec<u32>,
    segs: Segments,
    cfg: AdaptConfig,
    exec: ReduceExec,
    real: Option<(ReduceOp, DType)>,
    seg_state: Vec<SegState>,
    /// Segments whose fold is complete, in completion order.
    ready: Vec<u64>,
    /// Cursor into `ready` for the parent pipeline.
    cursor: usize,
    /// Sends in flight toward the parent.
    outstanding: u32,
    sends_done: u64,
    /// Per child: receives posted so far.
    posted: Vec<u64>,
    /// Per child: receives arrived so far.
    arrived: Vec<u64>,
    /// Segments fully folded (root completion criterion).
    complete_segs: u64,
    finished: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl AdaptReduce {
    /// Build rank `rank`'s program for `spec`.
    pub fn new(spec: &ReduceSpec, rank: u32) -> AdaptReduce {
        let segs = Segments::new(spec.msg_bytes, spec.cfg.seg_size);
        let children = spec.tree.children(rank).to_vec();
        let nseg = segs.count();
        let (real, own): (Option<(ReduceOp, DType)>, Option<&Bytes>) = match &spec.data {
            ReduceData::Synthetic => (None, None),
            ReduceData::Real {
                op,
                dtype,
                contributions,
            } => {
                assert_eq!(
                    contributions[rank as usize].len() as u64,
                    spec.msg_bytes,
                    "contribution size mismatch"
                );
                (Some((*op, *dtype)), Some(&contributions[rank as usize]))
            }
        };
        let seg_state = (0..nseg)
            .map(|s| SegState {
                value: own.map(|b| {
                    b.slice(segs.offset(s) as usize..(segs.offset(s) + segs.len(s)) as usize)
                        .to_vec()
                }),
                remaining: children.len() as u32,
            })
            .collect::<Vec<_>>();
        // Leaves have nothing to fold: every segment is ready immediately.
        let ready = if children.is_empty() {
            (0..nseg).collect()
        } else {
            Vec::new()
        };
        let complete_segs = if children.is_empty() { nseg } else { 0 };
        AdaptReduce {
            rank,
            parent: spec.tree.parent(rank),
            children: children.clone(),
            segs,
            cfg: spec.cfg,
            exec: spec.exec,
            real,
            seg_state,
            ready,
            cursor: 0,
            outstanding: 0,
            sends_done: 0,
            posted: vec![0; children.len()],
            arrived: vec![0; children.len()],
            complete_segs,
            finished: false,
            finished_at: None,
        }
    }

    fn nseg(&self) -> u64 {
        self.segs.count()
    }

    /// Keep each child's receive pipeline `M` deep. Wildcard-tagged: a
    /// child's folds complete in arbitrary order, and the window accepts
    /// whichever segment it ships next (identity travels in the tag).
    fn push_recvs(&mut self, ctx: &mut dyn ProgramCtx, c: usize) {
        while self.posted[c] < self.nseg()
            && self.posted[c] - self.arrived[c] < self.cfg.outstanding_recvs as u64
        {
            let idx = self.posted[c];
            self.posted[c] += 1;
            ctx.irecv(
                self.children[c],
                ANY_TAG,
                pack_token(KIND_RECV, c as u32, idx),
            );
        }
    }

    /// Keep the parent pipeline `N` deep.
    fn push_sends(&mut self, ctx: &mut dyn ProgramCtx) {
        let Some(parent) = self.parent else { return };
        while self.outstanding < self.cfg.outstanding_sends && self.cursor < self.ready.len() {
            let seg = self.ready[self.cursor];
            self.cursor += 1;
            self.outstanding += 1;
            let payload = match &self.seg_state[seg as usize].value {
                Some(v) => Payload::from(v.clone()),
                None => Payload::Synthetic(self.segs.len(seg)),
            };
            ctx.isend(parent, seg as Tag, payload, pack_token(KIND_SEND, 0, seg));
        }
    }

    fn check_done(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.finished {
            return;
        }
        let done = if self.parent.is_none() {
            self.complete_segs == self.nseg()
        } else {
            self.sends_done == self.nseg()
        };
        if done {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
        }
    }

    /// The rank this program runs on.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The fully reduced message (root, real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        if self.parent.is_some() {
            return None;
        }
        let mut out = Vec::with_capacity(self.segs.total() as usize);
        for st in &self.seg_state {
            out.extend_from_slice(st.value.as_ref()?);
        }
        Some(out)
    }

    /// Charge the modelled cost of folding one child contribution.
    fn fold_cost(&self, ctx: &mut dyn ProgramCtx, c: usize, seg: u64) {
        let bytes = self.segs.len(seg);
        let token = pack_token(KIND_FOLD, c as u32, seg);
        match self.exec {
            ReduceExec::Cpu => ctx.cpu_reduce(bytes, token),
            ReduceExec::GpuAsync => ctx.gpu_reduce(bytes, token),
        }
    }
}

impl RankProgram for AdaptReduce {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.nseg() == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        for c in 0..self.children.len() {
            self.push_recvs(ctx, c);
        }
        self.push_sends(ctx);
        self.check_done(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::RecvDone {
                token, tag, data, ..
            } => {
                let (kind, c, _idx) = unpack_token(token);
                debug_assert_eq!(kind, KIND_RECV);
                let c = c as usize;
                let seg = tag as u64;
                self.arrived[c] += 1;
                // Fold the values now (costs are modelled separately via the
                // fold completion below).
                if let (Some((op, dtype)), Some(operand)) = (self.real, data.bytes()) {
                    let st = &mut self.seg_state[seg as usize];
                    combine(op, dtype, st.value.as_mut().expect("acc"), operand);
                }
                self.fold_cost(ctx, c, seg);
                self.push_recvs(ctx, c);
            }
            Completion::ComputeDone { token } | Completion::GpuDone { token } => {
                let (kind, _c, seg) = unpack_token(token);
                debug_assert_eq!(kind, KIND_FOLD);
                let st = &mut self.seg_state[seg as usize];
                st.remaining -= 1;
                if st.remaining == 0 {
                    self.complete_segs += 1;
                    self.ready.push(seg);
                    self.push_sends(ctx);
                }
            }
            Completion::SendDone { token } => {
                let (kind, _, _) = unpack_token(token);
                debug_assert_eq!(kind, KIND_SEND);
                self.outstanding -= 1;
                self.sends_done += 1;
                self.push_sends(ctx);
            }
            other => panic!("reduce got unexpected completion {other:?}"),
        }
        self.check_done(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeKind;
    use adapt_mpi::{f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    fn contributions(nranks: u32, elems: usize) -> Arc<Vec<Bytes>> {
        Arc::new(
            (0..nranks)
                .map(|r| {
                    let v: Vec<f64> = (0..elems).map(|i| (r as f64) + (i % 7) as f64).collect();
                    Bytes::from(f64_to_bytes(&v))
                })
                .collect(),
        )
    }

    fn expected_sum(nranks: u32, elems: usize) -> Vec<f64> {
        (0..elems)
            .map(|i| (0..nranks).map(|r| (r as f64) + (i % 7) as f64).sum())
            .collect()
    }

    fn run_real(kind: TreeKind, nranks: u32, elems: usize, exec: ReduceExec) -> Vec<f64> {
        let spec = ReduceSpec {
            tree: Arc::new(Tree::build(kind, nranks, 0)),
            msg_bytes: (elems * 8) as u64,
            cfg: AdaptConfig::default().with_seg_size(4 * 1024),
            data: ReduceData::Real {
                op: ReduceOp::Sum,
                dtype: DType::F64,
                contributions: contributions(nranks, elems),
            },
            exec,
        };
        let machine = if exec == ReduceExec::GpuAsync {
            profiles::mini_gpu(2)
        } else {
            profiles::minicluster(4, 2, 2)
        };
        let world = if exec == ReduceExec::GpuAsync {
            World::gpu(machine, nranks, ClusterNoise::silent(nranks))
        } else {
            World::cpu(machine, nranks, ClusterNoise::silent(nranks))
        };
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<AdaptReduce>().expect("reduce program");
        adapt_mpi::bytes_to_f64(&root.result().expect("root result"))
    }

    #[test]
    fn sums_match_sequential_fold_on_every_tree() {
        let elems = 3000;
        let expect = expected_sum(12, elems);
        for kind in [
            TreeKind::Chain,
            TreeKind::Binary,
            TreeKind::Binomial,
            TreeKind::Knomial(4),
            TreeKind::Flat,
        ] {
            assert_eq!(
                run_real(kind, 12, elems, ReduceExec::Cpu),
                expect,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn gpu_offloaded_fold_produces_same_values() {
        let elems = 2000;
        let expect = expected_sum(8, elems);
        assert_eq!(
            run_real(TreeKind::Binary, 8, elems, ReduceExec::GpuAsync),
            expect
        );
    }

    #[test]
    fn gpu_async_fold_is_faster_than_cpu_fold() {
        // On a GPU machine the stream folds at 60 GB/s and overlaps with
        // communication; the CPU fold at 3 GB/s blocks the progress engine.
        let mk = |exec| {
            let spec = ReduceSpec {
                tree: Arc::new(Tree::build(TreeKind::Chain, 8, 0)),
                msg_bytes: 8 << 20,
                cfg: AdaptConfig::default(),
                data: ReduceData::Synthetic,
                exec,
            };
            let world = World::gpu(profiles::mini_gpu(2), 8, ClusterNoise::silent(8));
            world.run(spec.programs()).makespan
        };
        let cpu = mk(ReduceExec::Cpu);
        let gpu = mk(ReduceExec::GpuAsync);
        assert!(
            gpu.as_nanos() < cpu.as_nanos(),
            "gpu fold {gpu} should beat cpu fold {cpu}"
        );
    }

    #[test]
    fn zero_byte_reduce_finishes() {
        let spec = ReduceSpec {
            tree: Arc::new(Tree::build(TreeKind::Binomial, 6, 0)),
            msg_bytes: 0,
            cfg: AdaptConfig::default(),
            data: ReduceData::Synthetic,
            exec: ReduceExec::Cpu,
        };
        let world = World::cpu(profiles::minicluster(2, 2, 2), 6, ClusterNoise::silent(6));
        let res = world.run(spec.programs());
        assert!(res.makespan.as_nanos() < 1_000_000);
    }

    #[test]
    fn max_and_min_ops() {
        for (op, pick) in [(ReduceOp::Max, 7.0f64), (ReduceOp::Min, 0.0f64)] {
            let elems = 100;
            let spec = ReduceSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, 8, 0)),
                msg_bytes: (elems * 8) as u64,
                cfg: AdaptConfig::default().with_seg_size(256),
                data: ReduceData::Real {
                    op,
                    dtype: DType::F64,
                    contributions: Arc::new(
                        (0..8u32)
                            .map(|r| Bytes::from(f64_to_bytes(&vec![r as f64; elems])))
                            .collect(),
                    ),
                },
                exec: ReduceExec::Cpu,
            };
            let world = World::cpu(profiles::minicluster(4, 1, 2), 8, ClusterNoise::silent(8));
            let res = world.run(spec.programs());
            let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
            let root = root.downcast::<AdaptReduce>().unwrap();
            let got = adapt_mpi::bytes_to_f64(&root.result().unwrap());
            assert_eq!(got, vec![pick; elems]);
        }
    }

    #[test]
    fn non_root_result_is_none() {
        let spec = ReduceSpec {
            tree: Arc::new(Tree::build(TreeKind::Chain, 4, 0)),
            msg_bytes: 1024,
            cfg: AdaptConfig::default(),
            data: ReduceData::Synthetic,
            exec: ReduceExec::Cpu,
        };
        let world = World::cpu(profiles::minicluster(2, 1, 2), 4, ClusterNoise::silent(4));
        let res = world.run(spec.programs());
        for (i, p) in res.programs.into_iter().enumerate().skip(1) {
            let any: Box<dyn std::any::Any> = p;
            let r = any.downcast::<AdaptReduce>().unwrap();
            assert!(r.result().is_none(), "rank {i}");
            assert_eq!(r.rank(), i as u32);
        }
    }
}
