//! # adapt-core — the ADAPT event-driven collective framework
//!
//! The paper's primary contribution, reproduced over the simulated MPI
//! runtime: collective operations expressed as events and callbacks with
//! **no Wait/Waitall anywhere**. Completion of a low-level non-blocking
//! operation triggers the posting of the next data movements; only the
//! minimal *data* dependencies of the collective remain (a segment must
//! arrive before it is forwarded / folded), while every *synchronization*
//! dependency of the blocking and Waitall designs is relaxed (§2.2).
//!
//! Key pieces:
//! - [`Tree`] / [`topology_aware_tree`]: pluggable communication trees,
//!   including the multi-level single-communicator tree of §3.2;
//! - [`BcastSpec`] / [`AdaptBcast`]: pipelined broadcast with per-child
//!   independent windows (`N` outstanding sends per child, `M ≥ N`
//!   outstanding receives);
//! - [`ReduceSpec`] / [`AdaptReduce`]: pipelined reduce with per-segment
//!   independent upward flow and CPU- or GPU-stream-executed folds (§4.2).

pub mod allreduce;
pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod config;
pub mod gather;
pub mod reduce;
pub mod scan;
pub mod scatter;
pub mod segments;
pub mod tree;

pub use allreduce::{AdaptAllreduce, AllreduceSpec};
pub use alltoall::{AdaptAlltoall, AlltoallSpec};
pub use barrier::{AdaptAllgather, AdaptBarrier, AllgatherSpec, BarrierSpec};
pub use bcast::{AdaptBcast, BcastSpec};
pub use config::AdaptConfig;
pub use gather::{AdaptGather, GatherSpec};
pub use reduce::{AdaptReduce, ReduceData, ReduceExec, ReduceSpec};
pub use scan::{AdaptScan, ScanSpec};
pub use scatter::{AdaptScatter, ScatterSpec};
pub use segments::Segments;
pub use tree::{topology_aware_tree, topology_aware_tree_rooted, TopoTreeConfig, Tree, TreeKind};
