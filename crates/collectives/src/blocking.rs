//! Blocking point-to-point collective implementations (paper §2.1.1,
//! Figure 1, Algorithm 1) — the MPICH/MVAPICH-style baseline.
//!
//! Exactly one operation is in flight per rank at any time: a rank
//! receives segment `i` *completely*, then sends it to child 0, waits,
//! child 1, waits, … before touching segment `i+1`. Every hand-off is a
//! rendezvous, so noise on either side of any edge stalls both — the
//! synchronization-dependency amplification the paper analyzes.

use adapt_core::{Segments, Tree};
use adapt_mpi::{Completion, Payload, ProgramCtx, RankProgram, Tag, Token};
use bytes::Bytes;
use std::sync::Arc;

/// Description of a blocking pipelined broadcast.
#[derive(Clone)]
pub struct BlockingBcastSpec {
    /// Communication tree.
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline segment size.
    pub seg_size: u64,
    /// Real payload at the root (`None` = synthetic).
    pub data: Option<Bytes>,
}

impl BlockingBcastSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.tree.len())
            .map(|r| Box::new(BlockingBcast::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// Sequential script steps of the blocking engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    Recv { seg: u64 },
    Send { seg: u64, child: usize },
}

/// One rank's blocking broadcast: a strictly ordered script with one
/// operation in flight.
pub struct BlockingBcast {
    parent: Option<u32>,
    children: Vec<u32>,
    segs: Segments,
    script: Vec<Step>,
    pc: usize,
    root_payload: Option<Payload>,
    received: Vec<Option<Payload>>,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl BlockingBcast {
    /// Build rank `rank`'s program.
    pub fn new(spec: &BlockingBcastSpec, rank: u32) -> BlockingBcast {
        let segs = Segments::new(spec.msg_bytes, spec.seg_size);
        let children = spec.tree.children(rank).to_vec();
        let parent = spec.tree.parent(rank);
        let mut script = Vec::new();
        for seg in 0..segs.count() {
            if parent.is_some() {
                script.push(Step::Recv { seg });
            }
            for child in 0..children.len() {
                script.push(Step::Send { seg, child });
            }
        }
        let root_payload = (rank == spec.tree.root()).then(|| match &spec.data {
            Some(b) => Payload::Data(b.clone()),
            None => Payload::Synthetic(spec.msg_bytes),
        });
        BlockingBcast {
            parent,
            children,
            segs,
            script,
            pc: 0,
            root_payload,
            received: vec![None; segs.count() as usize],
            finished_at: None,
        }
    }

    fn seg_payload(&self, s: u64) -> Payload {
        match &self.root_payload {
            Some(p) => p.slice(self.segs.offset(s), self.segs.len(s)),
            None => self.received[s as usize].clone().expect("segment present"),
        }
    }

    /// Issue the operation at the program counter (exactly one in flight).
    fn issue(&mut self, ctx: &mut dyn ProgramCtx) {
        match self.script.get(self.pc) {
            None => {
                self.finished_at = Some(ctx.now());
                ctx.finish();
            }
            Some(&Step::Recv { seg }) => {
                ctx.irecv(self.parent.expect("non-root"), seg as Tag, Token(seg));
            }
            Some(&Step::Send { seg, child }) => {
                let payload = self.seg_payload(seg);
                ctx.isend(self.children[child], seg as Tag, payload, Token(seg));
            }
        }
    }

    /// Received segments reassembled (testing aid).
    pub fn assembled(&self) -> Option<Vec<u8>> {
        if let Some(p) = &self.root_payload {
            return p.bytes().map(|b| b.to_vec());
        }
        let mut out = Vec::new();
        for seg in &self.received {
            out.extend_from_slice(seg.as_ref()?.bytes()?);
        }
        Some(out)
    }
}

impl RankProgram for BlockingBcast {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.issue(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::RecvDone { data, tag, .. } => {
                debug_assert!(
                    matches!(self.script[self.pc], Step::Recv { seg } if seg == tag as u64)
                );
                self.received[tag as usize] = Some(data);
            }
            Completion::SendDone { .. } => {
                debug_assert!(matches!(self.script[self.pc], Step::Send { .. }));
            }
            other => panic!("blocking bcast got {other:?}"),
        }
        self.pc += 1;
        self.issue(ctx);
    }
}

/// Description of a blocking pipelined reduce.
#[derive(Clone)]
pub struct BlockingReduceSpec {
    /// Communication tree (data flows child → parent).
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline segment size.
    pub seg_size: u64,
    /// Real per-rank contributions (`None` = synthetic).
    pub data: Option<crate::ReduceInputs>,
}

impl BlockingReduceSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.tree.len())
            .map(|r| Box::new(BlockingReduce::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RStep {
    Recv { seg: u64, child: usize },
    Send { seg: u64 },
}

/// One rank's blocking reduce: receive each child's segment in order, fold
/// (CPU-blocking), then forward upward — one operation in flight.
pub struct BlockingReduce {
    parent: Option<u32>,
    children: Vec<u32>,
    segs: Segments,
    script: Vec<RStep>,
    pc: usize,
    real: Option<(adapt_mpi::ReduceOp, adapt_mpi::DType)>,
    acc: Vec<Option<Vec<u8>>>,
    /// Waiting for the fold compute of the last received contribution.
    folding: bool,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl BlockingReduce {
    /// Build rank `rank`'s program.
    pub fn new(spec: &BlockingReduceSpec, rank: u32) -> BlockingReduce {
        let segs = Segments::new(spec.msg_bytes, spec.seg_size);
        let children = spec.tree.children(rank).to_vec();
        let parent = spec.tree.parent(rank);
        let mut script = Vec::new();
        for seg in 0..segs.count() {
            for child in 0..children.len() {
                script.push(RStep::Recv { seg, child });
            }
            if parent.is_some() {
                script.push(RStep::Send { seg });
            }
        }
        let (real, acc) = match &spec.data {
            None => (None, vec![None; segs.count() as usize]),
            Some(inputs) => {
                let own = &inputs.contributions[rank as usize];
                assert_eq!(own.len() as u64, spec.msg_bytes);
                let acc = (0..segs.count())
                    .map(|s| {
                        Some(
                            own.slice(
                                segs.offset(s) as usize..(segs.offset(s) + segs.len(s)) as usize,
                            )
                            .to_vec(),
                        )
                    })
                    .collect();
                (Some((inputs.op, inputs.dtype)), acc)
            }
        };
        BlockingReduce {
            parent,
            children,
            segs,
            script,
            pc: 0,
            real,
            acc,
            folding: false,
            finished_at: None,
        }
    }

    fn issue(&mut self, ctx: &mut dyn ProgramCtx) {
        match self.script.get(self.pc) {
            None => {
                self.finished_at = Some(ctx.now());
                ctx.finish();
            }
            Some(&RStep::Recv { seg, child }) => {
                ctx.irecv(self.children[child], seg as Tag, Token(seg));
            }
            Some(&RStep::Send { seg }) => {
                let payload = match &self.acc[seg as usize] {
                    Some(v) => Payload::from(v.clone()),
                    None => Payload::Synthetic(self.segs.len(seg)),
                };
                ctx.isend(
                    self.parent.expect("non-root"),
                    seg as Tag,
                    payload,
                    Token(seg),
                );
            }
        }
    }

    /// The fully reduced message (root, real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        if self.parent.is_some() {
            return None;
        }
        let mut out = Vec::new();
        for st in &self.acc {
            out.extend_from_slice(st.as_ref()?);
        }
        Some(out)
    }
}

impl RankProgram for BlockingReduce {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.issue(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::RecvDone { data, tag, .. } => {
                let seg = tag as u64;
                debug_assert!(
                    matches!(self.script[self.pc], RStep::Recv { seg: s, .. } if s == seg)
                );
                if let (Some((op, dtype)), Some(operand)) = (self.real, data.bytes()) {
                    adapt_mpi::combine(
                        op,
                        dtype,
                        self.acc[seg as usize].as_mut().expect("acc"),
                        operand,
                    );
                }
                // Blocking fold before anything else may proceed.
                self.folding = true;
                ctx.cpu_reduce(self.segs.len(seg), Token(u64::MAX));
                return;
            }
            Completion::ComputeDone { .. } => {
                debug_assert!(self.folding);
                self.folding = false;
            }
            Completion::SendDone { .. } => {
                debug_assert!(matches!(self.script[self.pc], RStep::Send { .. }));
            }
            other => panic!("blocking reduce got {other:?}"),
        }
        self.pc += 1;
        self.issue(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_core::TreeKind;
    use adapt_mpi::{f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    #[test]
    fn blocking_bcast_delivers_data() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 256) as u8).collect();
        let spec = BlockingBcastSpec {
            tree: Arc::new(Tree::build(TreeKind::Binomial, 12, 0)),
            msg_bytes: data.len() as u64,
            seg_size: 16 * 1024,
            data: Some(Bytes::from(data.clone())),
        };
        let world = World::cpu(profiles::minicluster(4, 1, 4), 12, ClusterNoise::silent(12));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let b = any.downcast::<BlockingBcast>().unwrap();
            assert_eq!(b.assembled().unwrap(), data, "rank {r}");
        }
    }

    #[test]
    fn blocking_reduce_computes_sum() {
        let n = 8u32;
        let elems = 2048usize;
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| Bytes::from(f64_to_bytes(&vec![r as f64 + 1.0; elems])))
            .collect();
        let spec = BlockingReduceSpec {
            tree: Arc::new(Tree::build(TreeKind::Binary, n, 0)),
            msg_bytes: (elems * 8) as u64,
            seg_size: 4096,
            data: Some(crate::ReduceInputs {
                op: adapt_mpi::ReduceOp::Sum,
                dtype: adapt_mpi::DType::F64,
                contributions: Arc::new(contributions),
            }),
        };
        let world = World::cpu(profiles::minicluster(4, 1, 2), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<BlockingReduce>().unwrap();
        let got = adapt_mpi::bytes_to_f64(&root.result().unwrap());
        let expect: f64 = (1..=n as u64).sum::<u64>() as f64;
        assert_eq!(got, vec![expect; elems]);
    }

    #[test]
    fn blocking_is_slower_than_adapt_on_chain() {
        let msg = 2 << 20;
        let tree = Arc::new(Tree::build(TreeKind::Chain, 8, 0));
        let blocking = {
            let spec = BlockingBcastSpec {
                tree: tree.clone(),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            };
            let world = World::cpu(profiles::minicluster(8, 1, 1), 8, ClusterNoise::silent(8));
            world.run(spec.programs()).makespan
        };
        let adapt = {
            let spec = adapt_core::BcastSpec {
                tree,
                msg_bytes: msg,
                cfg: adapt_core::AdaptConfig::default(),
                data: None,
            };
            let world = World::cpu(profiles::minicluster(8, 1, 1), 8, ClusterNoise::silent(8));
            world.run(spec.programs()).makespan
        };
        assert!(
            adapt.as_nanos() < blocking.as_nanos(),
            "adapt={adapt} blocking={blocking}"
        );
    }
}
