//! Composite exchange algorithms: scatter + allgather broadcast
//! (recursive-doubling and ring variants, §2.2.3's "scatter followed by an
//! allgather" example) and Rabenseifner's reduce (reduce-scatter by
//! recursive halving + binomial gather).
//!
//! These are the classic large-message algorithms the Intel-MPI comparator
//! exposes (`Intel-topo-recursive-doubling`, `Intel-topo-ring`,
//! `Intel-topo-Rabenseifner's`). Each is a single program over the full
//! communicator using exact tags.

use adapt_core::Tree;
use adapt_mpi::{Completion, Payload, ProgramCtx, RankProgram, Tag, Token};
use adapt_topology::Rank;
use bytes::Bytes;

/// Byte-range partition of a message into `n` per-rank blocks (the MPI
/// convention: the first `msg % n` blocks get one extra byte).
#[derive(Clone, Copy, Debug)]
pub struct BlockPartition {
    msg: u64,
    n: u64,
}

impl BlockPartition {
    /// Partition `msg` bytes over `n` ranks.
    pub fn new(msg: u64, n: u32) -> BlockPartition {
        BlockPartition { msg, n: n as u64 }
    }

    /// Byte offset of block `i`.
    pub fn offset(&self, i: u64) -> u64 {
        let base = self.msg / self.n;
        let rem = self.msg % self.n;
        i * base + i.min(rem)
    }

    /// Length of block `i`.
    pub fn len(&self, i: u64) -> u64 {
        self.offset(i + 1) - self.offset(i)
    }

    /// Whether the partition covers no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.msg == 0
    }

    /// Length of the contiguous block range `[lo, hi)`.
    pub fn range_len(&self, lo: u64, hi: u64) -> u64 {
        self.offset(hi) - self.offset(lo)
    }
}

/// Binomial subtree size of virtual rank `v` in an `n`-rank binomial tree.
fn binomial_subtree(v: u64, n: u64) -> u64 {
    if v == 0 {
        return n;
    }
    let lsb = v & v.wrapping_neg();
    lsb.min(n - v)
}

/// Allgather strategy for [`ScatterAllgatherBcast`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllgatherKind {
    /// `n-1` neighbour steps; bandwidth-optimal, latency `O(n)`.
    Ring,
    /// `log n` pairwise doubling steps; requires a power-of-two rank count
    /// (the constructor falls back to [`AllgatherKind::Ring`] otherwise, as
    /// production libraries do).
    RecursiveDoubling,
}

/// Large-message broadcast as binomial scatter + allgather.
#[derive(Clone)]
pub struct ScatterAllgatherBcastSpec {
    /// Number of ranks (root is rank 0).
    pub nranks: u32,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Allgather variant.
    pub allgather: AllgatherKind,
    /// Real payload at the root (`None` = synthetic).
    pub data: Option<Bytes>,
}

impl ScatterAllgatherBcastSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        let kind = if self.allgather == AllgatherKind::RecursiveDoubling
            && !self.nranks.is_power_of_two()
        {
            AllgatherKind::Ring
        } else {
            self.allgather
        };
        (0..self.nranks)
            .map(|r| Box::new(ScatterAllgatherBcast::new(self, kind, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SagState {
    /// Waiting for the scatter range from the binomial parent.
    ScatterRecv,
    /// Forwarding scatter sub-ranges to binomial children.
    ScatterSend {
        next_child: usize,
        outstanding: u32,
    },
    /// Allgather step `s`; bits: send and/or recv still pending.
    Allgather {
        step: u32,
        send_pending: bool,
        recv_pending: bool,
    },
    Done,
}

/// One rank's scatter-allgather broadcast.
pub struct ScatterAllgatherBcast {
    rank: Rank,
    n: u64,
    part: BlockPartition,
    kind: AllgatherKind,
    /// Real block contents (index = block id) or None in synthetic mode.
    blocks: Option<Vec<Option<Bytes>>>,
    synthetic: bool,
    children: Vec<Rank>,
    parent: Option<Rank>,
    state: SagState,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

const TAG_SCATTER: Tag = 0;
const TAG_AG_BASE: Tag = 1;

impl ScatterAllgatherBcast {
    fn new(spec: &ScatterAllgatherBcastSpec, kind: AllgatherKind, rank: Rank) -> Self {
        let n = spec.nranks as u64;
        let part = BlockPartition::new(spec.msg_bytes, spec.nranks);
        let tree = Tree::build(adapt_core::TreeKind::Binomial, spec.nranks, 0);
        let blocks = match &spec.data {
            None => None,
            Some(b) => {
                let mut blocks = vec![None; n as usize];
                if rank == 0 {
                    for i in 0..n {
                        let off = part.offset(i) as usize;
                        let len = part.len(i) as usize;
                        blocks[i as usize] = Some(b.slice(off..off + len));
                    }
                }
                Some(blocks)
            }
        };
        ScatterAllgatherBcast {
            rank,
            n,
            part,
            kind,
            blocks,
            synthetic: spec.data.is_none(),
            children: tree.children(rank).to_vec(),
            parent: tree.parent(rank),
            state: if rank == 0 {
                SagState::ScatterSend {
                    next_child: 0,
                    outstanding: 0,
                }
            } else {
                SagState::ScatterRecv
            },
            finished_at: None,
        }
    }

    /// Payload for the contiguous block range `[lo, hi)`.
    fn range_payload(&self, lo: u64, hi: u64) -> Payload {
        if self.synthetic {
            return Payload::Synthetic(self.part.range_len(lo, hi));
        }
        let blocks = self.blocks.as_ref().expect("real mode");
        let mut out = Vec::with_capacity(self.part.range_len(lo, hi) as usize);
        for b in lo..hi {
            out.extend_from_slice(blocks[b as usize].as_ref().expect("block present"));
        }
        Payload::from(out)
    }

    /// Store a received payload into the block range `[lo, hi)`.
    fn store_range(&mut self, lo: u64, hi: u64, data: Payload) {
        let Some(blocks) = self.blocks.as_mut() else {
            return;
        };
        let Payload::Data(bytes) = data else { return };
        let mut off = 0usize;
        for b in lo..hi {
            let len = self.part.len(b) as usize;
            blocks[b as usize] = Some(bytes.slice(off..off + len));
            off += len;
        }
    }

    /// The block range rank `v`'s binomial subtree owns after the scatter.
    fn subtree_range(&self, v: u64) -> (u64, u64) {
        (v, v + binomial_subtree(v, self.n))
    }

    /// Blocks owned after allgather step `s` (recursive doubling): own
    /// block index's aligned group of size `2^s`.
    fn rd_owned(&self, step: u32) -> (u64, u64) {
        let group = 1u64 << step;
        let lo = (self.rank as u64 / group) * group;
        (lo, (lo + group).min(self.n))
    }

    fn advance(&mut self, ctx: &mut dyn ProgramCtx) {
        loop {
            match self.state {
                SagState::ScatterRecv => return, // waiting on parent
                SagState::ScatterSend {
                    mut next_child,
                    outstanding,
                } => {
                    if next_child < self.children.len() {
                        let child = self.children[next_child];
                        let (lo, hi) = self.subtree_range(child as u64);
                        let payload = self.range_payload(lo, hi);
                        ctx.isend(child, TAG_SCATTER, payload, Token(0));
                        next_child += 1;
                        self.state = SagState::ScatterSend {
                            next_child,
                            outstanding: outstanding + 1,
                        };
                        continue;
                    }
                    if outstanding > 0 {
                        return; // waitall on scatter sends
                    }
                    // Scatter done: enter the allgather.
                    self.state = SagState::Allgather {
                        step: 0,
                        send_pending: false,
                        recv_pending: false,
                    };
                    continue;
                }
                SagState::Allgather {
                    step,
                    send_pending,
                    recv_pending,
                } => {
                    if send_pending || recv_pending {
                        return;
                    }
                    let steps = match self.kind {
                        AllgatherKind::Ring => self.n as u32 - 1,
                        AllgatherKind::RecursiveDoubling => self.n.trailing_zeros(),
                    };
                    if step >= steps || self.n == 1 {
                        self.state = SagState::Done;
                        self.finished_at = Some(ctx.now());
                        ctx.finish();
                        return;
                    }
                    let tag = TAG_AG_BASE + step;
                    match self.kind {
                        AllgatherKind::Ring => {
                            let r = self.rank as u64;
                            let next = ((r + 1) % self.n) as Rank;
                            let prev = ((r + self.n - 1) % self.n) as Rank;
                            let send_block = (r + self.n - step as u64) % self.n;
                            let recv_block = (r + self.n - step as u64 - 1) % self.n;
                            let payload = self.range_payload(send_block, send_block + 1);
                            ctx.isend(next, tag, payload, Token(send_block));
                            ctx.irecv(prev, tag, Token(recv_block));
                        }
                        AllgatherKind::RecursiveDoubling => {
                            let partner = (self.rank ^ (1 << step)) as Rank;
                            let (lo, hi) = self.rd_owned(step);
                            let payload = self.range_payload(lo, hi);
                            ctx.isend(partner, tag, payload, Token(lo));
                            // Partner's owned range at this step.
                            let pg = 1u64 << step;
                            let plo = (partner as u64 / pg) * pg;
                            ctx.irecv(partner, tag, Token(plo));
                        }
                    }
                    self.state = SagState::Allgather {
                        step,
                        send_pending: true,
                        recv_pending: true,
                    };
                    return;
                }
                SagState::Done => return,
            }
        }
    }

    /// The full reassembled message (testing aid).
    pub fn assembled(&self) -> Option<Vec<u8>> {
        let blocks = self.blocks.as_ref()?;
        let mut out = Vec::new();
        for b in blocks {
            out.extend_from_slice(b.as_ref()?);
        }
        Some(out)
    }
}

impl RankProgram for ScatterAllgatherBcast {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.part.is_empty() || self.n == 1 {
            self.state = SagState::Done;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        if self.rank != 0 {
            ctx.irecv(self.parent.expect("non-root"), TAG_SCATTER, Token(0));
        }
        self.advance(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match (&mut self.state, completion) {
            (SagState::ScatterRecv, Completion::RecvDone { data, .. }) => {
                let (lo, hi) = self.subtree_range(self.rank as u64);
                self.store_range(lo, hi, data);
                self.state = SagState::ScatterSend {
                    next_child: 0,
                    outstanding: 0,
                };
            }
            (SagState::ScatterSend { outstanding, .. }, Completion::SendDone { .. }) => {
                *outstanding -= 1;
            }
            (SagState::Allgather { send_pending, .. }, Completion::SendDone { .. }) => {
                *send_pending = false;
            }
            (
                SagState::Allgather {
                    step, recv_pending, ..
                },
                Completion::RecvDone { token, data, .. },
            ) => {
                let lo = token.0;
                let count = match self.kind {
                    AllgatherKind::Ring => 1,
                    AllgatherKind::RecursiveDoubling => (1u64 << *step).min(self.n - lo),
                };
                let s = *step;
                *recv_pending = false;
                *step = s + 1;
                self.store_range(lo, lo + count, data);
            }
            (st, c) => panic!("scatter-allgather: state {st:?} got {c:?}"),
        }
        self.advance(ctx);
    }
}

/// Rabenseifner's reduce: reduce-scatter by recursive halving, then a
/// binomial gather of the reduced ranges to the root. Requires a
/// power-of-two rank count; [`RabenseifnerReduceSpec::programs`] asserts it
/// (the runner falls back to a tree reduce otherwise, as libraries do).
#[derive(Clone)]
pub struct RabenseifnerReduceSpec {
    /// Number of ranks (root is rank 0; must be a power of two).
    pub nranks: u32,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Real per-rank contributions (`None` = synthetic).
    pub data: Option<crate::ReduceInputs>,
}

impl RabenseifnerReduceSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        assert!(
            self.nranks.is_power_of_two(),
            "Rabenseifner requires a power-of-two rank count"
        );
        (0..self.nranks)
            .map(|r| Box::new(RabenseifnerReduce::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RabState {
    /// Recursive-halving step with pair distance `d`.
    Halving {
        d: u64,
        send_pending: bool,
        recv_pending: bool,
        fold_pending: bool,
    },
    /// Binomial gather: waiting for `outstanding` child ranges.
    GatherRecv {
        outstanding: u32,
    },
    /// Binomial gather: own range sent to parent.
    GatherSend,
    Done,
}

/// One rank's Rabenseifner reduce.
pub struct RabenseifnerReduce {
    rank: Rank,
    n: u64,
    msg: u64,
    real: Option<(adapt_mpi::ReduceOp, adapt_mpi::DType)>,
    /// Own working vector (real mode).
    acc: Option<Vec<u8>>,
    /// Currently owned byte range `[lo, hi)`.
    lo: u64,
    hi: u64,
    /// Gathered ranges (root side): final result assembled here.
    gathered: Option<Vec<u8>>,
    children: Vec<Rank>,
    parent: Option<Rank>,
    state: RabState,
    /// Gather arrivals that landed while still in the halving phase.
    early_gathers: u32,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

const TAG_GATHER: Tag = 1000;

impl RabenseifnerReduce {
    fn new(spec: &RabenseifnerReduceSpec, rank: Rank) -> Self {
        let n = spec.nranks as u64;
        let tree = Tree::build(adapt_core::TreeKind::Binomial, spec.nranks, 0);
        let (real, acc) = match &spec.data {
            None => (None, None),
            Some(inputs) => {
                let own = inputs.contributions[rank as usize].to_vec();
                assert_eq!(own.len() as u64, spec.msg_bytes);
                (Some((inputs.op, inputs.dtype)), Some(own))
            }
        };
        RabenseifnerReduce {
            rank,
            n,
            msg: spec.msg_bytes,
            real,
            acc,
            lo: 0,
            hi: spec.msg_bytes,
            gathered: real.is_some().then(|| vec![0u8; spec.msg_bytes as usize]),
            children: tree.children(rank).to_vec(),
            parent: tree.parent(rank),
            state: RabState::Halving {
                d: n / 2,
                send_pending: false,
                recv_pending: false,
                fold_pending: false,
            },
            early_gathers: 0,
            finished_at: None,
        }
    }

    /// The byte range rank `v` owns after the full halving phase.
    fn final_range(&self, v: u64) -> (u64, u64) {
        let (mut lo, mut hi) = (0u64, self.msg);
        let mut d = self.n / 2;
        while d >= 1 {
            let mid = lo + (hi - lo) / 2;
            if v & d == 0 {
                hi = mid;
            } else {
                lo = mid;
            }
            if d == 1 {
                break;
            }
            d /= 2;
        }
        (lo, hi)
    }

    /// The contiguous byte range gathered from rank `v`'s binomial subtree.
    fn subtree_byte_range(&self, v: u64) -> (u64, u64) {
        let size = binomial_subtree(v, self.n);
        let (lo, _) = self.final_range(v);
        let (_, hi) = self.final_range(v + size - 1);
        (lo, hi)
    }

    fn advance(&mut self, ctx: &mut dyn ProgramCtx) {
        loop {
            match self.state {
                RabState::Halving {
                    d,
                    send_pending,
                    recv_pending,
                    fold_pending,
                } => {
                    if send_pending || recv_pending || fold_pending {
                        return;
                    }
                    if d == 0 || self.n == 1 {
                        // Halving finished: start the gather.
                        if self.children.is_empty() {
                            self.state = RabState::GatherSend;
                        } else {
                            // Seed the gather buffer with the own reduced
                            // range (intermediates forward it as part of
                            // their subtree span; the root keeps it).
                            if let (Some(acc), Some(g)) = (&self.acc, self.gathered.as_mut()) {
                                let (lo, hi) = (self.lo as usize, self.hi as usize);
                                g[lo..hi].copy_from_slice(&acc[lo..hi]);
                            }
                            self.state = RabState::GatherRecv {
                                outstanding: self.children.len() as u32 - self.early_gathers,
                            };
                            self.early_gathers = 0;
                        }
                        continue;
                    }
                    let partner = (self.rank as u64 ^ d) as Rank;
                    let mid = self.lo + (self.hi - self.lo) / 2;
                    let keep_low = self.rank as u64 & d == 0;
                    let (send_lo, send_hi, keep_lo, keep_hi) = if keep_low {
                        (mid, self.hi, self.lo, mid)
                    } else {
                        (self.lo, mid, mid, self.hi)
                    };
                    let tag = d.trailing_zeros(); // unique per step
                    let payload = match &self.acc {
                        Some(acc) => {
                            Payload::from(acc[send_lo as usize..send_hi as usize].to_vec())
                        }
                        None => Payload::Synthetic(send_hi - send_lo),
                    };
                    ctx.isend(partner, tag, payload, Token(0));
                    ctx.irecv(partner, tag, Token(1));
                    self.lo = keep_lo;
                    self.hi = keep_hi;
                    self.state = RabState::Halving {
                        d: d / 2,
                        send_pending: true,
                        recv_pending: true,
                        fold_pending: false,
                    };
                    return;
                }
                RabState::GatherRecv { outstanding } => {
                    if outstanding > 0 {
                        return;
                    }
                    if self.rank == 0 {
                        self.state = RabState::Done;
                        self.finished_at = Some(ctx.now());
                        ctx.finish();
                        return;
                    }
                    self.state = RabState::GatherSend;
                    continue;
                }
                RabState::GatherSend => {
                    let (lo, hi) = self.subtree_byte_range(self.rank as u64);
                    let payload = match &self.gathered {
                        Some(g) if self.real.is_some() && !self.children.is_empty() => {
                            Payload::from(g[lo as usize..hi as usize].to_vec())
                        }
                        _ => match &self.acc {
                            Some(acc) => {
                                Payload::from(acc[self.lo as usize..self.hi as usize].to_vec())
                            }
                            None => Payload::Synthetic(hi - lo),
                        },
                    };
                    ctx.isend(
                        self.parent.expect("non-root"),
                        TAG_GATHER,
                        payload,
                        Token(2),
                    );
                    self.state = RabState::Done;
                    return; // finish on SendDone
                }
                RabState::Done => return,
            }
        }
    }

    /// The fully reduced message (root, real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        (self.rank == 0).then(|| self.gathered.clone()).flatten()
    }
}

impl RankProgram for RabenseifnerReduce {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.msg == 0 || self.n == 1 {
            if self.rank == 0 {
                if let (Some(acc), Some(g)) = (&self.acc, self.gathered.as_mut()) {
                    g.copy_from_slice(acc);
                }
            }
            self.state = RabState::Done;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        // Post the gather receives up front (children ranges are disjoint).
        let children = self.children.clone();
        for &c in &children {
            ctx.irecv(c, TAG_GATHER, Token(100 + c as u64));
        }
        self.advance(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::SendDone { .. } => match &mut self.state {
                RabState::Halving { send_pending, .. } => *send_pending = false,
                RabState::Done => {
                    // Gather send completed: the rank is done.
                    self.finished_at = Some(ctx.now());
                    ctx.finish();
                    return;
                }
                st => panic!("SendDone in state {st:?}"),
            },
            Completion::RecvDone { token, data, .. } => {
                if token.0 >= 100 {
                    // Gather arrival from child (may come early; the state
                    // machine counts it when it reaches GatherRecv).
                    let child = token.0 - 100;
                    let (lo, hi) = self.subtree_byte_range(child);
                    if let (Some(g), Payload::Data(b)) = (self.gathered.as_mut(), &data) {
                        g[lo as usize..hi as usize].copy_from_slice(b);
                    }
                    match &mut self.state {
                        RabState::GatherRecv { outstanding } => *outstanding -= 1,
                        RabState::Halving { .. } => {
                            // Early arrival: remember by decrementing later.
                            self.early_gathers += 1;
                        }
                        st => panic!("gather recv in state {st:?}"),
                    }
                } else {
                    // Halving operand: fold into the kept range.
                    if let (Some((op, dtype)), Some(acc), Payload::Data(b)) =
                        (self.real, self.acc.as_mut(), &data)
                    {
                        adapt_mpi::combine(
                            op,
                            dtype,
                            &mut acc[self.lo as usize..self.hi as usize],
                            b,
                        );
                    }
                    match &mut self.state {
                        RabState::Halving {
                            recv_pending,
                            fold_pending,
                            ..
                        } => {
                            *recv_pending = false;
                            *fold_pending = true;
                        }
                        st => panic!("halving recv in state {st:?}"),
                    }
                    ctx.cpu_reduce(self.hi - self.lo, Token(3));
                }
            }
            Completion::ComputeDone { .. } => match &mut self.state {
                RabState::Halving { fold_pending, .. } => *fold_pending = false,
                st => panic!("fold done in state {st:?}"),
            },
            other => panic!("rabenseifner got {other:?}"),
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::{bytes_to_f64, f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    #[test]
    fn block_partition_covers_message() {
        let p = BlockPartition::new(1003, 7);
        let total: u64 = (0..7).map(|i| p.len(i)).sum();
        assert_eq!(total, 1003);
        assert_eq!(p.offset(0), 0);
        assert_eq!(p.offset(7), 1003);
        // First msg % n blocks get the extra byte.
        assert_eq!(p.len(0), 144);
        assert_eq!(p.len(6), 143);
    }

    #[test]
    fn binomial_subtree_sizes() {
        assert_eq!(binomial_subtree(0, 8), 8);
        assert_eq!(binomial_subtree(4, 8), 4);
        assert_eq!(binomial_subtree(2, 8), 2);
        assert_eq!(binomial_subtree(1, 8), 1);
        // Clipped by n for non-power-of-two counts.
        assert_eq!(binomial_subtree(4, 6), 2);
    }

    fn run_sag(kind: AllgatherKind, n: u32, data: &[u8]) {
        let spec = ScatterAllgatherBcastSpec {
            nranks: n,
            msg_bytes: data.len() as u64,
            allgather: kind,
            data: Some(Bytes::from(data.to_vec())),
        };
        let world = World::cpu(profiles::minicluster(4, 2, 4), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let b = any.downcast::<ScatterAllgatherBcast>().unwrap();
            assert_eq!(b.assembled().unwrap(), data, "rank {r} of {n}, {kind:?}");
        }
    }

    #[test]
    fn scatter_allgather_ring_delivers() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 241) as u8).collect();
        for n in [2u32, 5, 8, 13] {
            run_sag(AllgatherKind::Ring, n, &data);
        }
    }

    #[test]
    fn scatter_allgather_recursive_doubling_delivers() {
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 239) as u8).collect();
        for n in [2u32, 4, 8, 16] {
            run_sag(AllgatherKind::RecursiveDoubling, n, &data);
        }
    }

    #[test]
    fn recursive_doubling_falls_back_to_ring_for_odd_counts() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        run_sag(AllgatherKind::RecursiveDoubling, 6, &data);
    }

    #[test]
    fn rabenseifner_reduce_sums() {
        for n in [2u32, 4, 8, 16] {
            let elems = 4096usize;
            let contributions: Vec<Bytes> = (0..n)
                .map(|r| Bytes::from(f64_to_bytes(&vec![(r + 1) as f64; elems])))
                .collect();
            let spec = RabenseifnerReduceSpec {
                nranks: n,
                msg_bytes: (elems * 8) as u64,
                data: Some(crate::ReduceInputs::f64_sum(contributions)),
            };
            let world = World::cpu(profiles::minicluster(4, 2, 4), n, ClusterNoise::silent(n));
            let res = world.run(spec.programs());
            let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
            let root = root.downcast::<RabenseifnerReduce>().unwrap();
            let got = bytes_to_f64(&root.result().unwrap());
            let expect: f64 = (1..=n as u64).sum::<u64>() as f64;
            assert_eq!(got, vec![expect; elems], "n={n}");
        }
    }

    #[test]
    fn rabenseifner_synthetic_mode_runs() {
        let spec = RabenseifnerReduceSpec {
            nranks: 8,
            msg_bytes: 4 << 20,
            data: None,
        };
        let world = World::cpu(profiles::minicluster(4, 1, 2), 8, ClusterNoise::silent(8));
        let res = world.run(spec.programs());
        assert!(res.makespan.as_nanos() > 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rabenseifner_rejects_odd_counts() {
        let spec = RabenseifnerReduceSpec {
            nranks: 6,
            msg_bytes: 1024,
            data: None,
        };
        let _ = spec.programs();
    }
}
