//! # adapt-collectives — baselines and the unified collective runner
//!
//! Every comparator of the paper's evaluation, implemented for real on the
//! simulated MPI runtime:
//!
//! - [`blocking`] — blocking P2P pipelined trees (Algorithm 1; the
//!   MPICH/MVAPICH-style design, maximal noise amplification);
//! - [`waitall`] — non-blocking + Waitall pipelined trees (Algorithm 2;
//!   Open MPI's `tuned` module, "OMPI-default");
//! - [`hier`] — multi-communicator hierarchical collectives (§3.1; the
//!   Intel-MPI "SHM-based" topo family) with per-level algorithms;
//! - [`exchange`] — scatter/allgather and reduce-scatter/gather composite
//!   algorithms (recursive doubling, ring, Rabenseifner);
//! - [`tuned`] — the decision function that picks algorithms by message
//!   size and communicator size, as the `tuned` module does;
//! - [`runner`] — the [`runner::Library`] presets mapping each of
//!   the paper's comparators to concrete implementations, plus the
//!   measurement harness used by every figure.

pub mod blocking;
pub mod exchange;
pub mod hier;
pub mod runner;
pub mod tuned;
pub mod waitall;

use adapt_mpi::{DType, ReduceOp};
use bytes::Bytes;
use std::sync::Arc;

/// Real reduce inputs, shared by all reduce implementations.
#[derive(Clone)]
pub struct ReduceInputs {
    /// The operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: DType,
    /// `contributions[r]` is rank `r`'s input vector.
    pub contributions: Arc<Vec<Bytes>>,
}

impl ReduceInputs {
    /// Sum of f64 vectors — the workload used throughout the tests.
    pub fn f64_sum(contributions: Vec<Bytes>) -> ReduceInputs {
        ReduceInputs {
            op: ReduceOp::Sum,
            dtype: DType::F64,
            contributions: Arc::new(contributions),
        }
    }
}

pub use blocking::{BlockingBcastSpec, BlockingReduceSpec};
pub use exchange::{
    AllgatherKind, BlockPartition, RabenseifnerReduceSpec, ScatterAllgatherBcastSpec,
};
pub use hier::{HierBcastSpec, HierLevels, HierProgram, HierReduceSpec, PhasedProgram};
pub use runner::{
    noise_for_case, record_once, run_intervened, run_once, run_once_faulted, run_once_scoped,
    run_trial, try_run_once_faulted, world_for_case, CollectiveCase, IntelAlg, Library, NoiseScope,
    OpKind, Trial, TrialResult,
};
pub use waitall::{WaitallBcastSpec, WaitallReduceSpec};
