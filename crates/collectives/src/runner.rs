//! Library presets and the measurement harness.
//!
//! Maps each comparator of the paper's evaluation to a concrete
//! implementation on the simulated runtime, and provides the trial loop
//! (iterations × seeds × noise) every figure is generated from.
//!
//! ### Comparator emulation (documented substitutions, see DESIGN.md §1)
//!
//! | Paper series | Emulation |
//! |---|---|
//! | OMPI-adapt | ADAPT event-driven engine + single-communicator topology-aware chain tree |
//! | OMPI-default | Waitall engine + the `tuned` decision rules (topology-blind) |
//! | OMPI-default-topo | Waitall engine + the same topology-aware tree ADAPT uses |
//! | Intel MPI | Hierarchical multi-communicator SHM-based k-nomial (its topo default) |
//! | Intel-topo-« alg » | The named classic algorithm (binomial / recursive doubling / ring / SHM family / Shumilin / Rabenseifner) |
//! | Cray MPI | Blocking engine + topology-aware tree (fast vendor pipelining, heavy synchronization) |
//! | MVAPICH | Blocking engine + binomial tree (the Algorithm 1 pattern §2.2.3 attributes to MPICH/MVAPICH) |

use crate::blocking::{BlockingBcastSpec, BlockingReduceSpec};
use crate::exchange::{AllgatherKind, RabenseifnerReduceSpec, ScatterAllgatherBcastSpec};
use crate::hier::{HierBcastSpec, HierLevels, HierReduceSpec};
use crate::tuned;
use crate::waitall::{WaitallBcastSpec, WaitallReduceSpec};
use adapt_core::{
    topology_aware_tree, AdaptConfig, BcastSpec, ReduceData, ReduceExec, ReduceSpec,
    TopoTreeConfig, Tree, TreeKind,
};
use adapt_mpi::{FaultPlan, RankProgram, RunResult, World, WorldStats};
use adapt_noise::{ClusterNoise, NoiseSpec};
use adapt_sim::audit::AuditReport;
use adapt_sim::rng::{MasterSeed, StreamTag};
use adapt_sim::Summary;
use adapt_topology::{MachineSpec, Placement};
use std::sync::Arc;

/// Which collective operation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// One-to-all broadcast.
    Bcast,
    /// All-to-one reduction.
    Reduce,
}

/// Intel-MPI algorithm selector (the `I_MPI_ADJUST_*` families shown in
/// Figure 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IntelAlg {
    /// Plain binomial tree.
    Binomial,
    /// Scatter + recursive-doubling allgather (broadcast only).
    RecursiveDoubling,
    /// Scatter + ring allgather (broadcast only).
    Ring,
    /// SHM-based hierarchical, flat intra-socket shape.
    ShmFlat,
    /// SHM-based hierarchical, k-nomial intra-socket shape.
    ShmKnomial,
    /// SHM-based hierarchical, k-ary intra-socket shape.
    ShmKnary,
    /// SHM-based hierarchical, binomial intra-socket shape (reduce).
    ShmBinomial,
    /// Shumilin's reduce (emulated as a deeply pipelined binary tree; the
    /// vendor implementation is closed — see EXPERIMENTS.md).
    Shumilin,
    /// Rabenseifner's reduce (reduce-scatter + gather; falls back to a
    /// segmented binomial for non-power-of-two rank counts).
    Rabenseifner,
}

/// The libraries compared in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Library {
    /// ADAPT: event-driven engine + topology-aware tree.
    OmpiAdapt,
    /// Open MPI `tuned` module (Waitall engine, decision rules).
    OmpiDefault,
    /// `tuned`'s Waitall engine driven by ADAPT's topology-aware tree.
    OmpiDefaultTopo,
    /// Pure blocking baseline (Algorithm 1), for the dependency studies.
    OmpiBlocking,
    /// Intel MPI with topology awareness (default SHM-based k-nomial).
    IntelMpi,
    /// Intel MPI with an explicit algorithm selection.
    IntelTopo(IntelAlg),
    /// Cray MPI emulation.
    CrayMpi,
    /// MVAPICH emulation.
    Mvapich,
}

impl Library {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Library::OmpiAdapt => "OMPI-adapt".into(),
            Library::OmpiDefault => "OMPI-default".into(),
            Library::OmpiDefaultTopo => "OMPI-default-topo".into(),
            Library::OmpiBlocking => "OMPI-blocking".into(),
            Library::IntelMpi => "Intel MPI".into(),
            Library::IntelTopo(a) => format!("Intel-topo-{a:?}"),
            Library::CrayMpi => "Cray MPI".into(),
            Library::Mvapich => "MVAPICH".into(),
        }
    }
}

/// One collective configuration to measure.
#[derive(Clone)]
pub struct CollectiveCase {
    /// Machine profile.
    pub machine: MachineSpec,
    /// Job size in ranks.
    pub nranks: u32,
    /// The operation.
    pub op: OpKind,
    /// The library preset.
    pub library: Library,
    /// Message size in bytes.
    pub msg_bytes: u64,
}

/// The intra-socket tree shape of an SHM-family Intel algorithm.
fn shm_socket_kind(alg: IntelAlg) -> TreeKind {
    match alg {
        IntelAlg::ShmFlat => TreeKind::Flat,
        IntelAlg::ShmKnomial => TreeKind::Knomial(4),
        IntelAlg::ShmKnary => TreeKind::Kary(4),
        IntelAlg::ShmBinomial => TreeKind::Binomial,
        other => panic!("{other:?} is not an SHM-family algorithm"),
    }
}

/// ADAPT's own segment-size choice: small messages keep enough segments
/// to fill the pipeline, while segments stay above the eager limit so the
/// window throttles the sender (an eager-sized segment storm would defeat
/// the M > N pre-posting rule with unexpected-message copies).
fn adapt_cfg(msg_bytes: u64) -> AdaptConfig {
    let seg = match msg_bytes {
        0..=131_072 => 16 * 1024,
        131_073..=1_048_576 => 32 * 1024,
        _ => 64 * 1024,
    };
    AdaptConfig::default().with_seg_size(seg)
}

impl CollectiveCase {
    fn placement(&self) -> Placement {
        Placement::block_cpu(self.machine.shape, self.nranks)
    }

    fn topo_tree(&self) -> Arc<Tree> {
        Arc::new(topology_aware_tree(
            &self.placement(),
            TopoTreeConfig::default(),
        ))
    }

    /// SHM-family hierarchical levels with the given socket shape.
    fn shm_levels(&self, socket: TreeKind) -> HierLevels {
        HierLevels {
            cluster: TreeKind::Binomial,
            node: TreeKind::Flat,
            socket,
            seg_size: 64 * 1024,
        }
    }

    fn hier_bcast_spec(&self, socket: TreeKind) -> HierBcastSpec {
        HierBcastSpec {
            placement: self.placement(),
            root: 0,
            msg_bytes: self.msg_bytes,
            levels: self.shm_levels(socket),
            data: None,
        }
    }

    fn hier_reduce_spec(&self, socket: TreeKind) -> HierReduceSpec {
        HierReduceSpec {
            placement: self.placement(),
            root: 0,
            msg_bytes: self.msg_bytes,
            levels: self.shm_levels(socket),
            data: None,
        }
    }

    /// The case as per-rank *phase lists*, for embedding into longer phase
    /// chains (back-to-back iterations, applications). Hierarchical
    /// libraries contribute their level phases; everything else is a
    /// single phase.
    pub fn phase_lists(&self) -> Vec<Vec<Box<dyn RankProgram>>> {
        let hier_socket = match (self.op, self.library) {
            (_, Library::IntelMpi) => Some(TreeKind::Knomial(4)),
            (_, Library::IntelTopo(alg))
                if matches!(
                    alg,
                    IntelAlg::ShmFlat
                        | IntelAlg::ShmKnomial
                        | IntelAlg::ShmKnary
                        | IntelAlg::ShmBinomial
                ) =>
            {
                Some(shm_socket_kind(alg))
            }
            _ => None,
        };
        match (self.op, hier_socket) {
            (OpKind::Bcast, Some(socket)) => self
                .hier_bcast_spec(socket)
                .phase_lists()
                .into_iter()
                .map(|(phases, _slot)| phases)
                .collect(),
            (OpKind::Reduce, Some(socket)) => self
                .hier_reduce_spec(socket)
                .phase_lists()
                .into_iter()
                .map(|(phases, _slot)| phases)
                .collect(),
            _ => self.programs().into_iter().map(|p| vec![p]).collect(),
        }
    }

    /// Build the per-rank programs for this case (synthetic payloads).
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        match self.op {
            OpKind::Bcast => self.bcast_programs(),
            OpKind::Reduce => self.reduce_programs(),
        }
    }

    fn bcast_programs(&self) -> Vec<Box<dyn RankProgram>> {
        let n = self.nranks;
        let msg = self.msg_bytes;
        match self.library {
            Library::OmpiAdapt => BcastSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                cfg: adapt_cfg(msg),
                data: None,
            }
            .programs(),
            Library::OmpiDefault => {
                let d = tuned::bcast(n, msg);
                WaitallBcastSpec {
                    tree: Arc::new(Tree::build(d.tree, n, 0)),
                    msg_bytes: msg,
                    seg_size: d.seg_size,
                    data: None,
                }
                .programs()
            }
            Library::OmpiDefaultTopo => WaitallBcastSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            Library::OmpiBlocking => BlockingBcastSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            Library::IntelMpi => self.intel_bcast(IntelAlg::ShmKnomial),
            Library::IntelTopo(alg) => self.intel_bcast(alg),
            Library::CrayMpi => BlockingBcastSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            Library::Mvapich => BlockingBcastSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
        }
    }

    fn intel_bcast(&self, alg: IntelAlg) -> Vec<Box<dyn RankProgram>> {
        let n = self.nranks;
        let msg = self.msg_bytes;
        match alg {
            IntelAlg::Binomial => WaitallBcastSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            IntelAlg::RecursiveDoubling => ScatterAllgatherBcastSpec {
                nranks: n,
                msg_bytes: msg,
                allgather: AllgatherKind::RecursiveDoubling,
                data: None,
            }
            .programs(),
            IntelAlg::Ring => ScatterAllgatherBcastSpec {
                nranks: n,
                msg_bytes: msg,
                allgather: AllgatherKind::Ring,
                data: None,
            }
            .programs(),
            IntelAlg::ShmFlat
            | IntelAlg::ShmKnomial
            | IntelAlg::ShmKnary
            | IntelAlg::ShmBinomial => self.hier_bcast_spec(shm_socket_kind(alg)).programs(),
            IntelAlg::Shumilin | IntelAlg::Rabenseifner => {
                panic!("{alg:?} is a reduce algorithm")
            }
        }
    }

    fn reduce_programs(&self) -> Vec<Box<dyn RankProgram>> {
        let n = self.nranks;
        let msg = self.msg_bytes;
        match self.library {
            Library::OmpiAdapt => ReduceSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                cfg: adapt_cfg(msg),
                data: ReduceData::Synthetic,
                exec: ReduceExec::Cpu,
            }
            .programs(),
            Library::OmpiDefault => {
                let d = tuned::reduce(n, msg);
                WaitallReduceSpec {
                    tree: Arc::new(Tree::build(d.tree, n, 0)),
                    msg_bytes: msg,
                    seg_size: d.seg_size,
                    data: None,
                }
                .programs()
            }
            Library::OmpiDefaultTopo => WaitallReduceSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            Library::OmpiBlocking => BlockingReduceSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            Library::IntelMpi => self.intel_reduce(IntelAlg::ShmKnomial),
            Library::IntelTopo(alg) => self.intel_reduce(alg),
            Library::CrayMpi => BlockingReduceSpec {
                tree: self.topo_tree(),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            Library::Mvapich => BlockingReduceSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
        }
    }

    fn intel_reduce(&self, alg: IntelAlg) -> Vec<Box<dyn RankProgram>> {
        let n = self.nranks;
        let msg = self.msg_bytes;
        match alg {
            IntelAlg::Binomial => WaitallReduceSpec {
                tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            }
            .programs(),
            IntelAlg::Shumilin => WaitallReduceSpec {
                tree: Arc::new(Tree::build(TreeKind::Binary, n, 0)),
                msg_bytes: msg,
                seg_size: 16 * 1024,
                data: None,
            }
            .programs(),
            IntelAlg::Rabenseifner => {
                if n.is_power_of_two() {
                    RabenseifnerReduceSpec {
                        nranks: n,
                        msg_bytes: msg,
                        data: None,
                    }
                    .programs()
                } else {
                    // Production libraries run a pre-phase for non-powers of
                    // two; we fall back to a segmented binomial.
                    WaitallReduceSpec {
                        tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
                        msg_bytes: msg,
                        seg_size: 64 * 1024,
                        data: None,
                    }
                    .programs()
                }
            }
            IntelAlg::ShmFlat
            | IntelAlg::ShmKnomial
            | IntelAlg::ShmKnary
            | IntelAlg::ShmBinomial => self.hier_reduce_spec(shm_socket_kind(alg)).programs(),
            IntelAlg::RecursiveDoubling | IntelAlg::Ring => {
                panic!("{alg:?} is a broadcast algorithm")
            }
        }
    }
}

/// Where noise is injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseScope {
    /// Independent noise process on every rank. The harshest reading of
    /// §5.1.1; a deep pipeline meets some rank's window almost always.
    AllRanks,
    /// One noisy rank per node (the core hosting the OS/daemon activity) —
    /// the kernel-injection methodology of Beckman et al. that the paper
    /// follows, and the scope that reproduces Figure 7's magnitudes.
    PerNode,
    /// A single noisy rank (used by the §2.1 dependency studies).
    SingleRank(u32),
    /// One noisy rank per every `k` nodes — a sparser daemon layout whose
    /// interference intensity matches the regime of the paper's Figure 7
    /// (see EXPERIMENTS.md E1 for the calibration study).
    SparseNodes(u32),
}

/// Measurement configuration: a case plus noise and repetition settings.
#[derive(Clone)]
pub struct Trial {
    /// The collective under test.
    pub case: CollectiveCase,
    /// Average noise duty cycle in percent (0 = silent; 5 and 10 in the
    /// paper's Figure 7).
    pub noise_percent: f64,
    /// Where the noise lands.
    pub scope: NoiseScope,
    /// Back-to-back operations per measurement, IMB style: the collective
    /// repeats in one simulated world with noise running continuously, so
    /// skew from one iteration carries into the next — which is exactly
    /// what amplifies synchronization-heavy designs in Figure 7.
    pub iterations: u32,
    /// Independent repetitions (fresh worlds, derived seeds).
    pub repeats: u32,
    /// Master seed.
    pub seed: u64,
}

/// Result of a trial.
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Mean completion time in microseconds.
    pub mean_us: f64,
    /// Spread across iterations.
    pub min_us: f64,
    /// Spread across iterations.
    pub max_us: f64,
    /// Per-iteration times (microseconds).
    pub samples: Vec<f64>,
    /// Counters from the last iteration.
    pub stats: WorldStats,
    /// Invariant report from the last repetition (every repetition is
    /// asserted clean as it runs).
    pub audit: AuditReport,
}

/// Build the noise model for a case.
pub fn noise_for_case(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
) -> ClusterNoise {
    if noise_percent <= 0.0 {
        return ClusterNoise::silent(case.nranks);
    }
    let spec = NoiseSpec::uniform_percent(noise_percent);
    match scope {
        NoiseScope::AllRanks => ClusterNoise::uniform(case.nranks, spec, MasterSeed(seed)),
        NoiseScope::PerNode => {
            let per_node =
                case.machine.shape.sockets_per_node * case.machine.shape.cores_per_socket;
            let noisy: Vec<u32> = (0..case.nranks).step_by(per_node.max(1) as usize).collect();
            ClusterNoise::on_ranks(case.nranks, &noisy, spec, MasterSeed(seed))
        }
        NoiseScope::SingleRank(r) => {
            ClusterNoise::single_rank(case.nranks, r, spec, MasterSeed(seed))
        }
        NoiseScope::SparseNodes(k) => {
            let per_node =
                case.machine.shape.sockets_per_node * case.machine.shape.cores_per_socket;
            let stride = (per_node * k.max(1)) as usize;
            let noisy: Vec<u32> = (0..case.nranks)
                .step_by(stride.max(1))
                .map(|r| r + per_node / 2) // mid-node rank, away from leaders
                .filter(|&r| r < case.nranks)
                .collect();
            ClusterNoise::on_ranks(case.nranks, &noisy, spec, MasterSeed(seed))
        }
    }
}

/// Run one iteration of a case (per-node noise scope) and return its
/// completion time (µs).
///
/// This is the path the benchmark barometer's `fig8_quick_bcast_256`
/// acceptance scenario times with recording compiled in but disabled —
/// changes that slow it show up in `bench diff` against the committed
/// ledger (`results/barometer.jsonl`).
pub fn run_once(case: &CollectiveCase, noise_percent: f64, seed: u64) -> (f64, WorldStats) {
    run_once_scoped(case, NoiseScope::PerNode, noise_percent, seed)
}

/// Build the [`World`] and per-rank programs for one iteration of a case.
/// Callers that need to attach a recorder or otherwise configure the world
/// before running (the CLI's observability paths) start from here;
/// [`run_once_scoped`] is this plus `run` and the audit assertion.
pub fn world_for_case(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
) -> (World, Vec<Box<dyn RankProgram>>) {
    let noise = noise_for_case(case, scope, noise_percent, seed);
    let world = World::cpu(case.machine.clone(), case.nranks, noise);
    (world, case.programs())
}

/// Run one iteration with an explicit noise scope.
pub fn run_once_scoped(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
) -> (f64, WorldStats) {
    let (world, programs) = world_for_case(case, scope, noise_percent, seed);
    let res = world.run(programs);
    assert!(
        res.audit.is_clean(),
        "{} {:?} {}B: {}",
        case.library.label(),
        case.op,
        case.msg_bytes,
        res.audit
    );
    (res.makespan.as_micros_f64(), res.stats)
}

/// Run one iteration with a fault plan attached: lossy links, down and
/// degradation windows, rank stalls — with the reliability layer
/// recovering every injected loss. Returns the full [`RunResult`] so
/// callers can inspect recovery counters (`retransmits`, `acks`,
/// `duplicates_suppressed`) and per-rank completion times; the audit is
/// asserted clean, which under faults means *delivered exactly once
/// despite every drop*.
pub fn run_once_faulted(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
    plan: FaultPlan,
) -> RunResult {
    match try_run_once_faulted(case, scope, noise_percent, seed, plan, 1) {
        Ok(res) => res,
        Err(e) => panic!(
            "{} {:?} {}B (faulted): {e}",
            case.library.label(),
            case.op,
            case.msg_bytes
        ),
    }
}

/// Fallible variant of [`run_once_faulted`] for schedules that may not be
/// survivable — rank/node kills in particular. A completed run still has
/// its audit asserted clean (under kills that means *every byte between
/// live ranks delivered exactly once, dead ranks' bytes accounted in the
/// failed columns*); an unsurvivable schedule comes back as the
/// structured [`RunError`](adapt_mpi::RunError) instead of a panic or a
/// hang. `threads` selects the sharded core (1 = single-queue); results
/// are byte-identical across thread counts.
pub fn try_run_once_faulted(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
    plan: FaultPlan,
    threads: usize,
) -> Result<RunResult, Box<adapt_mpi::RunError>> {
    let (world, programs) = world_for_case(case, scope, noise_percent, seed);
    let res = world
        .with_threads(threads)
        .with_faults(plan)
        .try_run(programs)?;
    assert!(
        res.audit.is_clean(),
        "{} {:?} {}B (faulted): {}",
        case.library.label(),
        case.op,
        case.msg_bytes,
        res.audit
    );
    Ok(res)
}

/// Run one iteration with a [`MemRecorder`](adapt_obs::MemRecorder)
/// attached and return the full result; `res.obs` carries the recording
/// (`metrics_interval_ns` of zero disables gauge sampling). This is the
/// producer side of the what-if engine: the recording feeds
/// [`adapt_obs::predict`] and `obs-whatif`.
pub fn record_once(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
    metrics_interval_ns: u64,
) -> RunResult {
    let (world, programs) = world_for_case(case, scope, noise_percent, seed);
    let rec = if metrics_interval_ns > 0 {
        adapt_obs::MemRecorder::with_metrics(metrics_interval_ns)
    } else {
        adapt_obs::MemRecorder::new()
    };
    let res = world.with_recorder(Box::new(rec)).run(programs);
    assert!(
        res.audit.is_clean(),
        "{} {:?} {}B (recorded): {}",
        case.library.label(),
        case.op,
        case.msg_bytes,
        res.audit
    );
    res
}

/// Re-run a case under the **real-configuration equivalent** of a
/// what-if intervention — the ground truth a counterfactual prediction
/// is validated against. A recorder is attached so the result carries a
/// fresh recording for per-rank comparison.
///
/// Returns an error for interventions with no real equivalent
/// (`ScaleLayer` is a virtual-only Coz-style probe) or when a link
/// pattern matches nothing.
pub fn run_intervened(
    case: &CollectiveCase,
    scope: NoiseScope,
    noise_percent: f64,
    seed: u64,
    iv: &adapt_obs::Intervention,
    metrics_interval_ns: u64,
) -> Result<RunResult, String> {
    use adapt_obs::Intervention;
    let noise = match iv {
        Intervention::NoiseOff => ClusterNoise::silent(case.nranks),
        Intervention::RankNoiseOff(r) => {
            let mut n = noise_for_case(case, scope, noise_percent, seed);
            n.silence_rank(*r);
            n
        }
        Intervention::ScaleLayer { .. } => {
            return Err(
                "scale-layer is a virtual-only intervention; no real configuration matches it"
                    .into(),
            )
        }
        // `StallsOff` on a fault-free case, and `Noop`, are the plain run.
        _ => noise_for_case(case, scope, noise_percent, seed),
    };
    let mut world = World::cpu(case.machine.clone(), case.nranks, noise);
    if let Intervention::ScaleLink { pattern, factor } = iv {
        let touched = world.prescale_links(*factor, 1.0 / *factor, |label| {
            label.starts_with(pattern.as_str())
        });
        if touched == 0 {
            return Err(format!("no link label starts with {pattern:?}"));
        }
    }
    let rec = if metrics_interval_ns > 0 {
        adapt_obs::MemRecorder::with_metrics(metrics_interval_ns)
    } else {
        adapt_obs::MemRecorder::new()
    };
    let res = world.with_recorder(Box::new(rec)).run(case.programs());
    assert!(
        res.audit.is_clean(),
        "{} {:?} {}B (intervened): {}",
        case.library.label(),
        case.op,
        case.msg_bytes,
        res.audit
    );
    Ok(res)
}

/// Run a full trial: `repeats` independent worlds, each timing
/// `iterations` back-to-back operations, reporting per-operation times.
pub fn run_trial(trial: &Trial) -> TrialResult {
    assert!(trial.iterations > 0 && trial.repeats > 0);
    let mut samples = Vec::with_capacity(trial.repeats as usize);
    let mut stats = WorldStats::default();
    let mut audit = AuditReport::default();
    for rep in 0..trial.repeats {
        let seed = MasterSeed(trial.seed).stream(StreamTag::Workload, rep as u64);
        let noise = noise_for_case(&trial.case, trial.scope, trial.noise_percent, seed);
        let nranks = trial.case.nranks;
        // Chain `iterations` copies of the collective per rank.
        let mut per_rank: Vec<Vec<Box<dyn RankProgram>>> =
            (0..nranks).map(|_| Vec::new()).collect();
        for _ in 0..trial.iterations {
            for (r, phases) in trial.case.phase_lists().into_iter().enumerate() {
                per_rank[r].extend(phases);
            }
        }
        let programs: Vec<Box<dyn RankProgram>> = per_rank
            .into_iter()
            .map(|phases| Box::new(crate::hier::PhasedProgram::new(phases)) as Box<dyn RankProgram>)
            .collect();
        let world = World::cpu(trial.case.machine.clone(), nranks, noise);
        let res = world.run(programs);
        assert!(
            res.audit.is_clean(),
            "{} {:?} {}B rep {rep}: {}",
            trial.case.library.label(),
            trial.case.op,
            trial.case.msg_bytes,
            res.audit
        );
        samples.push(res.makespan.as_micros_f64() / trial.iterations as f64);
        stats = res.stats;
        audit = res.audit;
    }
    let summary: Summary = samples.iter().copied().collect();
    TrialResult {
        mean_us: summary.mean(),
        min_us: summary.min(),
        max_us: summary.max(),
        samples,
        stats,
        audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_topology::profiles;

    fn mini_case(library: Library, op: OpKind, msg: u64) -> CollectiveCase {
        CollectiveCase {
            machine: profiles::minicluster(4, 2, 4),
            nranks: 32,
            op,
            library,
            msg_bytes: msg,
        }
    }

    #[test]
    fn every_library_runs_both_ops() {
        let libs = [
            Library::OmpiAdapt,
            Library::OmpiDefault,
            Library::OmpiDefaultTopo,
            Library::OmpiBlocking,
            Library::IntelMpi,
            Library::CrayMpi,
            Library::Mvapich,
            Library::IntelTopo(IntelAlg::Binomial),
            Library::IntelTopo(IntelAlg::ShmFlat),
            Library::IntelTopo(IntelAlg::ShmKnomial),
            Library::IntelTopo(IntelAlg::ShmKnary),
        ];
        for lib in libs {
            for op in [OpKind::Bcast, OpKind::Reduce] {
                let case = mini_case(lib, op, 1 << 20);
                let (us, _) = run_once(&case, 0.0, 1);
                assert!(us > 0.0, "{} {:?}", lib.label(), op);
            }
        }
        // Broadcast-only and reduce-only algorithms.
        for alg in [IntelAlg::RecursiveDoubling, IntelAlg::Ring] {
            let case = mini_case(Library::IntelTopo(alg), OpKind::Bcast, 1 << 20);
            assert!(run_once(&case, 0.0, 1).0 > 0.0);
        }
        for alg in [
            IntelAlg::Shumilin,
            IntelAlg::Rabenseifner,
            IntelAlg::ShmBinomial,
        ] {
            let case = mini_case(Library::IntelTopo(alg), OpKind::Reduce, 1 << 20);
            assert!(run_once(&case, 0.0, 1).0 > 0.0);
        }
    }

    #[test]
    fn adapt_wins_large_message_broadcast() {
        let msg = 4 << 20;
        let adapt = run_once(&mini_case(Library::OmpiAdapt, OpKind::Bcast, msg), 0.0, 1).0;
        for lib in [Library::OmpiDefault, Library::IntelMpi, Library::Mvapich] {
            let other = run_once(&mini_case(lib, OpKind::Bcast, msg), 0.0, 1).0;
            assert!(
                adapt < other,
                "adapt {adapt:.1}us should beat {} {other:.1}us",
                lib.label()
            );
        }
    }

    #[test]
    fn noise_hurts_blocking_more_than_adapt() {
        let msg = 4 << 20;
        let slowdown = |lib: Library| {
            let clean = run_trial(&Trial {
                case: mini_case(lib, OpKind::Bcast, msg),
                noise_percent: 0.0,
                scope: NoiseScope::AllRanks,
                iterations: 3,
                repeats: 1,
                seed: 7,
            })
            .mean_us;
            let noisy = run_trial(&Trial {
                case: mini_case(lib, OpKind::Bcast, msg),
                noise_percent: 10.0,
                scope: NoiseScope::AllRanks,
                iterations: 8,
                repeats: 2,
                seed: 7,
            })
            .mean_us;
            noisy / clean
        };
        let adapt = slowdown(Library::OmpiAdapt);
        let blocking = slowdown(Library::Mvapich);
        assert!(
            adapt < blocking,
            "adapt slowdown {adapt:.2}x vs blocking {blocking:.2}x"
        );
    }

    #[test]
    fn trial_is_deterministic() {
        let trial = Trial {
            case: mini_case(Library::OmpiAdapt, OpKind::Bcast, 1 << 20),
            noise_percent: 5.0,
            scope: NoiseScope::PerNode,
            iterations: 4,
            repeats: 2,
            seed: 11,
        };
        assert_eq!(run_trial(&trial).samples, run_trial(&trial).samples);
    }

    #[test]
    fn phase_lists_cover_every_rank_and_flatten_hierarchies() {
        // Plain libraries: one phase per rank. Hierarchical: 1 + nodes +
        // sockets phases (non-participants no-op), so back-to-back chaining
        // never nests PhasedPrograms.
        let plain = mini_case(Library::OmpiAdapt, OpKind::Bcast, 1 << 20).phase_lists();
        assert_eq!(plain.len(), 32);
        assert!(plain.iter().all(|p| p.len() == 1));
        let hier = mini_case(Library::IntelMpi, OpKind::Bcast, 1 << 20).phase_lists();
        assert_eq!(hier.len(), 32);
        // minicluster(4,2,4): 1 cluster + 4 node + 8 socket groups.
        assert!(hier.iter().all(|p| p.len() == 13), "got {}", hier[0].len());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Library::OmpiAdapt.label(), "OMPI-adapt");
        assert_eq!(
            Library::IntelTopo(IntelAlg::Rabenseifner).label(),
            "Intel-topo-Rabenseifner"
        );
    }
}
