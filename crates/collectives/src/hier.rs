//! Multi-communicator hierarchical collectives (paper §3.1) — the design
//! ADAPT's single-communicator topology-aware tree replaces.
//!
//! A collective is a *sequence of phases*, each a collective over one
//! topology group (cluster → node → socket for broadcast; the reverse for
//! reduce). A rank enters phase `k+1` only after its phase-`k` role
//! completes locally — which is why the levels never overlap and large
//! messages leave lanes idle (the §3.1 critique, and the behaviour the
//! Intel-MPI "SHM-based" algorithm family exhibits).
//!
//! Mechanically, [`PhasedProgram`] runs one sub-program per phase,
//! remapping tags into per-phase ranges and tokens into a private space,
//! and intercepting each sub-program's `finish` to chain the next phase.
//! Data moves between a rank's phases through a [`DataSlot`].

use crate::waitall::{DataSlot, WaitallBcast, WaitallReduce};
use adapt_core::{Tree, TreeKind};
use adapt_mpi::program::{any_tag_in_block, ANY_TAG, TAG_BLOCK};
use adapt_mpi::{Completion, Op, Payload, ProgramCtx, RankProgram, Token};
use adapt_sim::fxhash::FxHashMap;
use adapt_topology::{Hierarchy, Placement};
use bytes::Bytes;
use std::rc::Rc;

/// Tag range reserved per phase (segment/block tags must stay below this).
const TAG_STRIDE: u32 = TAG_BLOCK;

/// Number of distinct tag blocks phases cycle through. Long phase chains
/// (e.g. one phase per application iteration) reuse blocks modulo this
/// window; a collision would need one rank to run `MAX_PHASE_BLOCKS`
/// phases ahead of a peer it exchanges messages with, which the phases'
/// own data dependencies make impossible.
const MAX_PHASE_BLOCKS: u32 = 2040;

fn phase_offset(index: usize) -> u32 {
    ((index as u32 % MAX_PHASE_BLOCKS) + 1) * TAG_STRIDE
}

/// Runs a sequence of sub-programs, each isolated in its own tag range and
/// token space; a sub-program's `finish` starts the next phase instead of
/// finishing the rank.
pub struct PhasedProgram {
    phases: Vec<Option<Box<dyn RankProgram>>>,
    current: usize,
    tokens: FxHashMap<u64, Token>,
    next_token: u64,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
}

impl PhasedProgram {
    /// Chain the given phase programs.
    pub fn new(phases: Vec<Box<dyn RankProgram>>) -> PhasedProgram {
        PhasedProgram {
            phases: phases.into_iter().map(Some).collect(),
            current: 0,
            tokens: FxHashMap::default(),
            next_token: 0,
            finished_at: None,
        }
    }

    fn drive(&mut self, ctx: &mut dyn ProgramCtx, mut event: Option<Completion>) {
        // Phase-boundary marks are observability-only ops (zero cost, no
        // events): traces show which collective phase each rank was in.
        if event.is_none() && self.current < self.phases.len() {
            ctx.post(Op::Phase {
                index: self.current as u32,
                begin: true,
            });
        }
        loop {
            if self.current == self.phases.len() {
                self.finished_at = Some(ctx.now());
                ctx.finish();
                return;
            }
            let mut phase = self.phases[self.current]
                .take()
                .expect("phase not re-entrant");
            let mut finished = false;
            {
                let mut pctx = PhasedCtx {
                    inner: ctx,
                    tag_offset: phase_offset(self.current),
                    tokens: &mut self.tokens,
                    next_token: &mut self.next_token,
                    finished: &mut finished,
                };
                match event.take() {
                    None => phase.on_start(&mut pctx),
                    Some(c) => phase.on_completion(&mut pctx, c),
                }
            }
            self.phases[self.current] = Some(phase);
            if !finished {
                return;
            }
            ctx.post(Op::Phase {
                index: self.current as u32,
                begin: false,
            });
            self.current += 1;
            if self.current < self.phases.len() {
                ctx.post(Op::Phase {
                    index: self.current as u32,
                    begin: true,
                });
            }
            // Loop: start the next phase (event is now None).
        }
    }

    /// Translate a runtime completion back into the current phase's terms.
    fn translate(&mut self, c: Completion) -> Completion {
        let orig = self
            .tokens
            .remove(&c.token().0)
            .expect("completion for unknown phase token");
        let offset = phase_offset(self.current);
        match c {
            Completion::SendDone { .. } => Completion::SendDone { token: orig },
            Completion::RecvDone { src, tag, data, .. } => Completion::RecvDone {
                token: orig,
                src,
                tag: tag - offset,
                data,
            },
            Completion::ComputeDone { .. } => Completion::ComputeDone { token: orig },
            Completion::CopyDone { .. } => Completion::CopyDone { token: orig },
            Completion::GpuDone { .. } => Completion::GpuDone { token: orig },
        }
    }

    /// Phase programs, for post-run inspection.
    pub fn phases(&self) -> impl Iterator<Item = &dyn RankProgram> {
        self.phases
            .iter()
            .map(|p| p.as_ref().expect("phase present").as_ref())
    }
}

impl RankProgram for PhasedProgram {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.drive(ctx, None);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        let c = self.translate(completion);
        self.drive(ctx, Some(c));
    }
}

/// Ctx facade for one phase: remaps tags and tokens, captures `finish`.
struct PhasedCtx<'a> {
    inner: &'a mut dyn ProgramCtx,
    tag_offset: u32,
    tokens: &'a mut FxHashMap<u64, Token>,
    next_token: &'a mut u64,
    finished: &'a mut bool,
}

impl PhasedCtx<'_> {
    fn wrap_token(&mut self, t: Token) -> Token {
        let id = *self.next_token;
        *self.next_token += 1;
        self.tokens.insert(id, t);
        Token(id)
    }

    fn wrap_tag(&self, tag: u32) -> u32 {
        if tag == ANY_TAG {
            // Wildcard windows stay scoped to this phase's tag block, so an
            // ADAPT-style engine can run inside a phase without capturing
            // traffic of earlier/later phases.
            return any_tag_in_block(self.tag_offset / TAG_STRIDE);
        }
        assert!(tag < TAG_STRIDE, "phase tag out of range (got {tag})");
        tag + self.tag_offset
    }
}

impl ProgramCtx for PhasedCtx<'_> {
    fn rank(&self) -> u32 {
        self.inner.rank()
    }
    fn nranks(&self) -> u32 {
        self.inner.nranks()
    }
    fn now(&self) -> adapt_sim::time::Time {
        self.inner.now()
    }
    fn mem_of(&self, rank: u32) -> adapt_topology::MemSpace {
        self.inner.mem_of(rank)
    }
    fn host_of(&self, rank: u32) -> adapt_topology::MemSpace {
        self.inner.host_of(rank)
    }
    fn cpu_reduce_cost(&self, bytes: u64) -> adapt_sim::time::Duration {
        self.inner.cpu_reduce_cost(bytes)
    }
    fn eager_limit(&self) -> u64 {
        self.inner.eager_limit()
    }
    fn post(&mut self, op: Op) {
        let wrapped = match op {
            Op::Isend {
                dst,
                tag,
                payload,
                token,
                src_mem,
            } => Op::Isend {
                dst,
                tag: self.wrap_tag(tag),
                payload,
                token: self.wrap_token(token),
                src_mem,
            },
            Op::Irecv {
                src,
                tag,
                token,
                dst_mem,
            } => Op::Irecv {
                src,
                tag: self.wrap_tag(tag),
                token: self.wrap_token(token),
                dst_mem,
            },
            Op::Compute { work, token } => Op::Compute {
                work,
                token: self.wrap_token(token),
            },
            Op::GpuReduce { bytes, token } => Op::GpuReduce {
                bytes,
                token: self.wrap_token(token),
            },
            Op::Copy {
                from,
                to,
                bytes,
                token,
            } => Op::Copy {
                from,
                to,
                bytes,
                token: self.wrap_token(token),
            },
            // Nested phase marks pass through untouched (no tag/token).
            Op::Phase { index, begin } => Op::Phase { index, begin },
            Op::Finish => {
                *self.finished = true;
                return;
            }
        };
        self.inner.post(wrapped);
    }
}

/// Per-level shapes and segment sizes for hierarchical collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierLevels {
    /// Shape among node leaders.
    pub cluster: TreeKind,
    /// Shape among socket leaders within a node.
    pub node: TreeKind,
    /// Shape within a socket.
    pub socket: TreeKind,
    /// Pipeline segment size used by every level.
    pub seg_size: u64,
}

impl Default for HierLevels {
    fn default() -> Self {
        HierLevels {
            cluster: TreeKind::Binomial,
            node: TreeKind::Flat,
            socket: TreeKind::Flat,
            seg_size: 64 * 1024,
        }
    }
}

/// Hierarchical (multi-communicator) broadcast: cluster phase, then node,
/// then socket.
#[derive(Clone)]
pub struct HierBcastSpec {
    /// Job placement (defines the groups).
    pub placement: Placement,
    /// Broadcast root.
    pub root: u32,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Per-level configuration.
    pub levels: HierLevels,
    /// Real payload at the root (`None` = synthetic).
    pub data: Option<Bytes>,
}

impl HierBcastSpec {
    /// The per-rank phase lists and data slots, for callers that compose
    /// hierarchical broadcasts into larger phase chains (e.g. one broadcast
    /// per application iteration in ASP).
    pub fn phase_lists(&self) -> Vec<(Vec<Box<dyn RankProgram>>, DataSlot)> {
        let n = self.placement.len();
        let h = Hierarchy::build_rooted(&self.placement, self.root);
        let cluster_tree = Tree::partial(self.levels.cluster, n, &h.cluster_group.ranks);
        let node_trees: Vec<Tree> = h
            .node_groups
            .iter()
            .map(|g| Tree::partial(self.levels.node, n, &g.ranks))
            .collect();
        let socket_trees: Vec<Tree> = h
            .socket_groups
            .iter()
            .map(|g| Tree::partial(self.levels.socket, n, &g.ranks))
            .collect();
        (0..n)
            .map(|r| {
                let slot: DataSlot = Rc::new(std::cell::RefCell::new(if r == self.root {
                    Some(match &self.data {
                        Some(b) => Payload::Data(b.clone()),
                        None => Payload::Synthetic(self.msg_bytes),
                    })
                } else {
                    None
                }));
                // Every rank runs every phase in the same order so the
                // per-phase tag ranges agree across ranks; phases that do
                // not involve `r` no-op instantly.
                let phases: Vec<Box<dyn RankProgram>> = std::iter::once(&cluster_tree)
                    .chain(node_trees.iter())
                    .chain(socket_trees.iter())
                    .map(|tree| {
                        Box::new(WaitallBcast::phase(
                            tree,
                            self.msg_bytes,
                            self.levels.seg_size,
                            slot.clone(),
                            r,
                        )) as Box<dyn RankProgram>
                    })
                    .collect();
                (phases, slot)
            })
            .collect()
    }

    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        self.phase_lists()
            .into_iter()
            .map(|(phases, slot)| {
                Box::new(HierProgram {
                    inner: PhasedProgram::new(phases),
                    slot,
                }) as Box<dyn RankProgram>
            })
            .collect()
    }
}

/// Hierarchical (multi-communicator) reduce: socket phase, then node, then
/// cluster.
#[derive(Clone)]
pub struct HierReduceSpec {
    /// Job placement (defines the groups).
    pub placement: Placement,
    /// Reduce root.
    pub root: u32,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Per-level configuration.
    pub levels: HierLevels,
    /// Real per-rank contributions (`None` = synthetic).
    pub data: Option<crate::ReduceInputs>,
}

impl HierReduceSpec {
    /// The per-rank phase lists and data slots (see
    /// [`HierBcastSpec::phase_lists`]).
    pub fn phase_lists(&self) -> Vec<(Vec<Box<dyn RankProgram>>, DataSlot)> {
        let n = self.placement.len();
        let h = Hierarchy::build_rooted(&self.placement, self.root);
        let cluster_tree = Tree::partial(self.levels.cluster, n, &h.cluster_group.ranks);
        let node_trees: Vec<Tree> = h
            .node_groups
            .iter()
            .map(|g| Tree::partial(self.levels.node, n, &g.ranks))
            .collect();
        let socket_trees: Vec<Tree> = h
            .socket_groups
            .iter()
            .map(|g| Tree::partial(self.levels.socket, n, &g.ranks))
            .collect();
        let op_dtype = self.data.as_ref().map(|d| (d.op, d.dtype));
        (0..n)
            .map(|r| {
                let own = match &self.data {
                    Some(inputs) => Payload::Data(inputs.contributions[r as usize].clone()),
                    None => Payload::Synthetic(self.msg_bytes),
                };
                let slot: DataSlot = Rc::new(std::cell::RefCell::new(Some(own)));
                // Reduce flows bottom-up: socket first, cluster last. As in
                // broadcast, every rank runs every phase so tag ranges agree.
                let phases: Vec<Box<dyn RankProgram>> = socket_trees
                    .iter()
                    .chain(node_trees.iter())
                    .chain(std::iter::once(&cluster_tree))
                    .map(|tree| {
                        Box::new(WaitallReduce::phase(
                            tree,
                            self.msg_bytes,
                            self.levels.seg_size,
                            op_dtype,
                            slot.clone(),
                            r,
                        )) as Box<dyn RankProgram>
                    })
                    .collect();
                (phases, slot)
            })
            .collect()
    }

    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        self.phase_lists()
            .into_iter()
            .map(|(phases, slot)| {
                Box::new(HierProgram {
                    inner: PhasedProgram::new(phases),
                    slot,
                }) as Box<dyn RankProgram>
            })
            .collect()
    }
}

/// Phased program plus its data slot, for post-run verification.
pub struct HierProgram {
    inner: PhasedProgram,
    slot: DataSlot,
}

impl HierProgram {
    /// The rank's final data (broadcast: delivered payload; reduce on the
    /// global root: the folded result).
    pub fn data(&self) -> Option<Vec<u8>> {
        match self.slot.borrow().as_ref() {
            Some(Payload::Data(b)) => Some(b.to_vec()),
            _ => None,
        }
    }

    /// Completion time of the last phase.
    pub fn finished_at(&self) -> Option<adapt_sim::time::Time> {
        self.inner.finished_at
    }
}

impl RankProgram for HierProgram {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        self.inner.on_start(ctx);
    }
    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        self.inner.on_completion(ctx, completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_mpi::{bytes_to_f64, f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;
    use std::sync::Arc;

    #[test]
    fn hier_bcast_delivers_data() {
        let machine = profiles::minicluster(3, 2, 4);
        let n = 24;
        let data: Vec<u8> = (0..120_000u32).map(|i| (i % 253) as u8).collect();
        let spec = HierBcastSpec {
            placement: Placement::block_cpu(machine.shape, n),
            root: 0,
            msg_bytes: data.len() as u64,
            levels: HierLevels::default(),
            data: Some(Bytes::from(data.clone())),
        };
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let h = any.downcast::<HierProgram>().unwrap();
            assert_eq!(h.data().unwrap(), data, "rank {r}");
        }
    }

    #[test]
    fn hier_reduce_computes_sum() {
        let machine = profiles::minicluster(2, 2, 3);
        let n = 12u32;
        let elems = 1500usize;
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| Bytes::from(f64_to_bytes(&vec![r as f64 + 0.5; elems])))
            .collect();
        let spec = HierReduceSpec {
            placement: Placement::block_cpu(machine.shape, n),
            root: 0,
            msg_bytes: (elems * 8) as u64,
            levels: HierLevels {
                cluster: TreeKind::Binomial,
                node: TreeKind::Flat,
                socket: TreeKind::Knomial(4),
                seg_size: 4 * 1024,
            },
            data: Some(crate::ReduceInputs::f64_sum(contributions)),
        };
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<HierProgram>().unwrap();
        let got = bytes_to_f64(&root.data().unwrap());
        let expect: f64 = (0..n).map(|r| r as f64 + 0.5).sum();
        assert_eq!(got, vec![expect; elems]);
    }

    #[test]
    fn hier_levels_do_not_overlap_but_adapt_topo_does() {
        // The §3.1 critique quantified: same message, same machine — the
        // phased hierarchy must be slower than ADAPT's single-communicator
        // topology-aware tree, which overlaps all levels.
        let machine = profiles::minicluster(4, 2, 4);
        let n = 32;
        let msg = 4 << 20;
        let hier = {
            let spec = HierBcastSpec {
                placement: Placement::block_cpu(machine.shape, n),
                root: 0,
                msg_bytes: msg,
                levels: HierLevels::default(),
                data: None,
            };
            let world = World::cpu(machine.clone(), n, ClusterNoise::silent(n));
            world.run(spec.programs()).makespan
        };
        let adapt = {
            let placement = Placement::block_cpu(machine.shape, n);
            let tree = Arc::new(adapt_core::topology_aware_tree(
                &placement,
                adapt_core::TopoTreeConfig::default(),
            ));
            let spec = adapt_core::BcastSpec {
                tree,
                msg_bytes: msg,
                cfg: adapt_core::AdaptConfig::default(),
                data: None,
            };
            let world = World::cpu(machine, n, ClusterNoise::silent(n));
            world.run(spec.programs()).makespan
        };
        assert!(
            adapt.as_nanos() < hier.as_nanos(),
            "adapt={adapt} hier={hier}"
        );
    }

    #[test]
    fn adapt_engine_runs_inside_phases() {
        // Two back-to-back ADAPT broadcasts as phases of one program: the
        // scoped wildcard windows must not capture each other's segments,
        // and both payloads must arrive intact.
        let machine = profiles::minicluster(2, 2, 2);
        let n = 8u32;
        let d1: Vec<u8> = (0..40_000u32).map(|i| (i % 201) as u8).collect();
        let d2: Vec<u8> = (0..40_000u32).map(|i| (i % 119) as u8).collect();
        let mk_spec = |data: &[u8]| adapt_core::BcastSpec {
            tree: Arc::new(adapt_core::Tree::build(TreeKind::Binomial, n, 0)),
            msg_bytes: data.len() as u64,
            cfg: adapt_core::AdaptConfig::default().with_seg_size(4 * 1024),
            data: Some(Bytes::from(data.to_vec())),
        };
        let s1 = mk_spec(&d1);
        let s2 = mk_spec(&d2);
        let programs: Vec<Box<dyn RankProgram>> = (0..n)
            .map(|r| {
                Box::new(PhasedProgram::new(vec![
                    Box::new(adapt_core::AdaptBcast::new(&s1, r)) as Box<dyn RankProgram>,
                    Box::new(adapt_core::AdaptBcast::new(&s2, r)) as Box<dyn RankProgram>,
                ])) as Box<dyn RankProgram>
            })
            .collect();
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(programs);
        for (r, p) in res.programs.into_iter().enumerate() {
            let any: Box<dyn std::any::Any> = p;
            let phased = any.downcast::<PhasedProgram>().unwrap();
            let phases: Vec<&dyn RankProgram> = phased.phases().collect();
            for (want, phase) in [&d1, &d2].iter().zip(&phases) {
                let b = (*phase as &dyn std::any::Any)
                    .downcast_ref::<adapt_core::AdaptBcast>()
                    .expect("adapt bcast phase");
                assert_eq!(&b.assembled().unwrap(), *want, "rank {r}");
            }
        }
    }

    #[test]
    fn single_rank_hier_job() {
        let machine = profiles::minicluster(1, 1, 1);
        let spec = HierBcastSpec {
            placement: Placement::block_cpu(machine.shape, 1),
            root: 0,
            msg_bytes: 1 << 20,
            levels: HierLevels::default(),
            data: None,
        };
        let world = World::cpu(machine, 1, ClusterNoise::silent(1));
        let res = world.run(spec.programs());
        assert!(res.makespan.as_nanos() < 1_000_000);
    }
}
