//! Non-blocking + Waitall collective implementations (paper §2.1.2,
//! Figure 3, Algorithm 2) — the Open MPI `tuned`-module baseline
//! ("OMPI-default" in the evaluation).
//!
//! Sends to all children of one segment are posted concurrently, but a
//! **Waitall** fences each segment: the next segment cannot start until
//! every child received the previous one, so all lanes run at the speed of
//! the slowest (§3.2.2), and a delayed child stalls its siblings through
//! the fence (§2.1.2's noise-propagation pattern). Receivers keep two
//! receives pre-posted to tolerate slightly out-of-order arrival, exactly
//! as Figure 3 describes.

use adapt_core::{Segments, Tree};
use adapt_mpi::{Completion, Payload, ProgramCtx, RankProgram, Tag, Token};
use bytes::Bytes;
use std::sync::Arc;

/// How many receives the Figure 3 implementation keeps pre-posted.
const RECV_DEPTH: u64 = 2;

/// Description of a Waitall-fenced pipelined broadcast.
#[derive(Clone)]
pub struct WaitallBcastSpec {
    /// Communication tree.
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline segment size.
    pub seg_size: u64,
    /// Real payload at the root (`None` = synthetic).
    pub data: Option<Bytes>,
}

impl WaitallBcastSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.tree.len())
            .map(|r| Box::new(WaitallBcast::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// Where a phase-embedded broadcast gets and leaves its data (see
/// [`crate::hier`]): the slot is filled before the phase starts (by the
/// previous level) and written by every receiver when it completes, so the
/// next level's leader finds its payload there.
pub type DataSlot = std::rc::Rc<std::cell::RefCell<Option<Payload>>>;

/// One rank's Waitall broadcast state machine.
pub struct WaitallBcast {
    parent: Option<u32>,
    children: Vec<u32>,
    segs: Segments,
    root_payload: Option<Payload>,
    received: Vec<Option<Payload>>,
    /// Segment currently being forwarded (the Wait(i) of Figure 3).
    current: u64,
    /// Receives posted so far.
    recvs_posted: u64,
    /// SendDones outstanding for `current`.
    sends_pending: u32,
    /// True once the sends for `current` have been posted.
    forwarding: bool,
    /// Hierarchical data hand-off (phase use only).
    slot: Option<DataSlot>,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
    finished: bool,
}

impl WaitallBcast {
    /// Build rank `rank`'s program.
    pub fn new(spec: &WaitallBcastSpec, rank: u32) -> WaitallBcast {
        let segs = Segments::new(spec.msg_bytes, spec.seg_size);
        let root_payload = (rank == spec.tree.root()).then(|| match &spec.data {
            Some(b) => Payload::Data(b.clone()),
            None => Payload::Synthetic(spec.msg_bytes),
        });
        WaitallBcast {
            parent: spec.tree.parent(rank),
            children: spec.tree.children(rank).to_vec(),
            segs,
            root_payload,
            received: vec![None; segs.count() as usize],
            current: 0,
            recvs_posted: 0,
            sends_pending: 0,
            forwarding: false,
            slot: None,
            finished_at: None,
            finished: false,
        }
    }

    /// Build a *phase* program over a partial tree: the sub-root reads its
    /// payload from `slot` when the phase starts, and every receiver writes
    /// the assembled payload back to its own slot on completion. Ranks not
    /// linked in `tree` no-op.
    pub fn phase(
        tree: &Tree,
        msg_bytes: u64,
        seg_size: u64,
        slot: DataSlot,
        rank: u32,
    ) -> WaitallBcast {
        let segs = Segments::new(msg_bytes, seg_size);
        WaitallBcast {
            parent: tree.parent(rank),
            children: tree.children(rank).to_vec(),
            segs,
            root_payload: None,
            received: vec![None; segs.count() as usize],
            current: 0,
            recvs_posted: 0,
            sends_pending: 0,
            forwarding: false,
            slot: Some(slot),
            finished_at: None,
            finished: false,
        }
    }

    fn seg_payload(&self, s: u64) -> Payload {
        match &self.root_payload {
            Some(p) => p.slice(self.segs.offset(s), self.segs.len(s)),
            None => self.received[s as usize].clone().expect("segment present"),
        }
    }

    /// Write the assembled payload into the hand-off slot (phase use).
    fn store_slot(&self) {
        let Some(slot) = &self.slot else { return };
        if self.parent.is_none() {
            return; // sub-root's slot was the input
        }
        let synthetic = self
            .received
            .iter()
            .any(|s| matches!(s, Some(Payload::Synthetic(_))));
        let payload = if synthetic {
            Payload::Synthetic(self.segs.total())
        } else {
            let mut out = Vec::with_capacity(self.segs.total() as usize);
            for seg in &self.received {
                out.extend_from_slice(seg.as_ref().expect("complete").bytes().expect("data"));
            }
            Payload::from(out)
        };
        *slot.borrow_mut() = Some(payload);
    }

    /// `Wait(current)` satisfied: forward the segment (or advance if leaf).
    fn advance(&mut self, ctx: &mut dyn ProgramCtx) {
        loop {
            if self.finished {
                return;
            }
            if self.current == self.segs.count() {
                self.finished = true;
                self.finished_at = Some(ctx.now());
                if self.parent.is_some() && self.segs.count() > 0 {
                    self.store_slot();
                }
                ctx.finish();
                return;
            }
            let have = self.parent.is_none() || self.received[self.current as usize].is_some();
            if !have || self.forwarding {
                return; // still waiting on Wait(current) or on the Waitall
            }
            if self.children.is_empty() {
                self.current += 1;
                self.post_recvs(ctx);
                continue;
            }
            // Post the segment to every child, then fence on Waitall.
            self.forwarding = true;
            self.sends_pending = self.children.len() as u32;
            let payload = self.seg_payload(self.current);
            for (c, &child) in self.children.iter().enumerate() {
                ctx.isend(
                    child,
                    self.current as Tag,
                    payload.clone(),
                    Token(((c as u64) << 32) | self.current),
                );
            }
            return;
        }
    }

    /// Keep `RECV_DEPTH` receives pre-posted.
    fn post_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.parent.is_none() {
            return;
        }
        while self.recvs_posted < self.segs.count() && self.recvs_posted < self.current + RECV_DEPTH
        {
            let seg = self.recvs_posted;
            self.recvs_posted += 1;
            ctx.irecv(self.parent.expect("non-root"), seg as Tag, Token(seg));
        }
    }

    /// Received segments reassembled (testing aid).
    pub fn assembled(&self) -> Option<Vec<u8>> {
        if let Some(p) = &self.root_payload {
            return p.bytes().map(|b| b.to_vec());
        }
        let mut out = Vec::new();
        for seg in &self.received {
            out.extend_from_slice(seg.as_ref()?.bytes()?);
        }
        Some(out)
    }
}

impl RankProgram for WaitallBcast {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.segs.count() == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        // A phase sub-root picks its payload up from the hand-off slot,
        // which the previous level filled before this phase started.
        if self.parent.is_none() && !self.children.is_empty() && self.root_payload.is_none() {
            if let Some(slot) = &self.slot {
                self.root_payload = Some(
                    slot.borrow()
                        .clone()
                        .expect("slot filled by previous phase"),
                );
            }
        }
        self.post_recvs(ctx);
        self.advance(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::RecvDone { data, tag, .. } => {
                self.received[tag as usize] = Some(data);
            }
            Completion::SendDone { .. } => {
                self.sends_pending -= 1;
                if self.sends_pending == 0 {
                    // Waitall satisfied: move to the next segment.
                    self.forwarding = false;
                    self.current += 1;
                    self.post_recvs(ctx);
                }
            }
            other => panic!("waitall bcast got {other:?}"),
        }
        self.advance(ctx);
    }
}

/// Description of a Waitall-fenced pipelined reduce.
#[derive(Clone)]
pub struct WaitallReduceSpec {
    /// Communication tree (data flows child → parent).
    pub tree: Arc<Tree>,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Pipeline segment size.
    pub seg_size: u64,
    /// Real per-rank contributions (`None` = synthetic).
    pub data: Option<crate::ReduceInputs>,
}

impl WaitallReduceSpec {
    /// Instantiate the per-rank programs.
    pub fn programs(&self) -> Vec<Box<dyn RankProgram>> {
        (0..self.tree.len())
            .map(|r| Box::new(WaitallReduce::new(self, r)) as Box<dyn RankProgram>)
            .collect()
    }
}

/// One rank's Waitall reduce: per segment, receive from *all* children
/// (posted concurrently, fenced by Waitall), fold on the CPU, send upward,
/// fence again, then move on.
pub struct WaitallReduce {
    parent: Option<u32>,
    children: Vec<u32>,
    segs: Segments,
    real: Option<(adapt_mpi::ReduceOp, adapt_mpi::DType)>,
    acc: Vec<Option<Vec<u8>>>,
    current: u64,
    /// Receive window start (segments with all receives posted).
    recvs_posted: u64,
    /// Per segment in the window: contributions received but not folded.
    arrived: Vec<u32>,
    /// Contributions folded for `current`.
    folded: u32,
    /// Folds requested but not completed for `current`.
    folds_pending: u32,
    /// Send of `current` outstanding.
    sending: bool,
    /// Hierarchical data hand-off (phase use only).
    slot: Option<DataSlot>,
    /// Operator to apply when the slot carries real data.
    slot_op: Option<(adapt_mpi::ReduceOp, adapt_mpi::DType)>,
    /// Completion time, for inspection after the run.
    pub finished_at: Option<adapt_sim::time::Time>,
    finished: bool,
}

impl WaitallReduce {
    /// Build a *phase* program over a partial tree: every rank's own
    /// contribution is read from its `slot` when the phase starts, and the
    /// sub-root writes the folded result back, where the next level picks
    /// it up.
    pub fn phase(
        tree: &Tree,
        msg_bytes: u64,
        seg_size: u64,
        op_dtype: Option<(adapt_mpi::ReduceOp, adapt_mpi::DType)>,
        slot: DataSlot,
        rank: u32,
    ) -> WaitallReduce {
        let segs = Segments::new(msg_bytes, seg_size);
        WaitallReduce {
            parent: tree.parent(rank),
            children: tree.children(rank).to_vec(),
            segs,
            real: None,
            acc: vec![None; segs.count() as usize],
            current: 0,
            recvs_posted: 0,
            arrived: vec![0; segs.count() as usize],
            folded: 0,
            folds_pending: 0,
            sending: false,
            slot: Some(slot),
            slot_op: op_dtype,
            finished_at: None,
            finished: false,
        }
    }

    /// Build rank `rank`'s program.
    pub fn new(spec: &WaitallReduceSpec, rank: u32) -> WaitallReduce {
        let segs = Segments::new(spec.msg_bytes, spec.seg_size);
        let children = spec.tree.children(rank).to_vec();
        let (real, acc) = match &spec.data {
            None => (None, vec![None; segs.count() as usize]),
            Some(inputs) => {
                let own = &inputs.contributions[rank as usize];
                assert_eq!(own.len() as u64, spec.msg_bytes);
                let acc = (0..segs.count())
                    .map(|s| {
                        Some(
                            own.slice(
                                segs.offset(s) as usize..(segs.offset(s) + segs.len(s)) as usize,
                            )
                            .to_vec(),
                        )
                    })
                    .collect();
                (Some((inputs.op, inputs.dtype)), acc)
            }
        };
        WaitallReduce {
            parent: spec.tree.parent(rank),
            children,
            segs,
            real,
            acc,
            current: 0,
            recvs_posted: 0,
            arrived: vec![0; segs.count() as usize],
            folded: 0,
            folds_pending: 0,
            sending: false,
            slot: None,
            slot_op: None,
            finished_at: None,
            finished: false,
        }
    }

    /// Materialize the accumulator from the hand-off slot (phase start).
    fn init_from_slot(&mut self) {
        let Some(slot) = &self.slot else { return };
        match slot.borrow().as_ref().expect("slot filled") {
            Payload::Synthetic(_) => {
                self.real = None;
            }
            Payload::Data(b) => {
                self.real = Some(self.slot_op.expect("op for real phased reduce"));
                for s in 0..self.segs.count() {
                    let off = self.segs.offset(s) as usize;
                    let len = self.segs.len(s) as usize;
                    self.acc[s as usize] = Some(b.slice(off..off + len).to_vec());
                }
            }
        }
    }

    /// Write the folded result back into the hand-off slot (sub-roots).
    fn store_slot(&self) {
        let Some(slot) = &self.slot else { return };
        let payload = if self.real.is_some() {
            let mut out = Vec::with_capacity(self.segs.total() as usize);
            for st in &self.acc {
                out.extend_from_slice(st.as_ref().expect("complete"));
            }
            Payload::from(out)
        } else {
            Payload::Synthetic(self.segs.total())
        };
        *slot.borrow_mut() = Some(payload);
    }

    fn post_recvs(&mut self, ctx: &mut dyn ProgramCtx) {
        while self.recvs_posted < self.segs.count() && self.recvs_posted < self.current + RECV_DEPTH
        {
            let seg = self.recvs_posted;
            self.recvs_posted += 1;
            for (c, &child) in self.children.iter().enumerate() {
                ctx.irecv(child, seg as Tag, Token(((c as u64) << 32) | seg));
            }
        }
    }

    fn advance(&mut self, ctx: &mut dyn ProgramCtx) {
        loop {
            if self.finished {
                return;
            }
            if self.current == self.segs.count() {
                self.finished = true;
                self.finished_at = Some(ctx.now());
                if self.parent.is_none() && self.segs.count() > 0 {
                    self.store_slot();
                }
                ctx.finish();
                return;
            }
            if self.sending || self.folds_pending > 0 {
                return;
            }
            let nchildren = self.children.len() as u32;
            // Fold contributions that have arrived for the current segment.
            let waiting = self.arrived[self.current as usize];
            if waiting > 0 {
                self.arrived[self.current as usize] = 0;
                self.folds_pending = waiting;
                for _ in 0..waiting {
                    ctx.cpu_reduce(self.segs.len(self.current), Token(self.current));
                }
                return;
            }
            if self.folded < nchildren {
                return; // Waitall on the remaining receives.
            }
            // Segment fully folded: forward it (or advance at the root).
            if let Some(parent) = self.parent {
                self.sending = true;
                let payload = match &self.acc[self.current as usize] {
                    Some(v) => Payload::from(v.clone()),
                    None => Payload::Synthetic(self.segs.len(self.current)),
                };
                ctx.isend(parent, self.current as Tag, payload, Token(self.current));
                return;
            }
            self.current += 1;
            self.folded = 0;
            self.post_recvs(ctx);
        }
    }

    /// The fully reduced message (root, real mode, after the run).
    pub fn result(&self) -> Option<Vec<u8>> {
        if self.parent.is_some() {
            return None;
        }
        let mut out = Vec::new();
        for st in &self.acc {
            out.extend_from_slice(st.as_ref()?);
        }
        Some(out)
    }
}

impl RankProgram for WaitallReduce {
    fn on_start(&mut self, ctx: &mut dyn ProgramCtx) {
        if self.segs.count() == 0 {
            self.finished = true;
            self.finished_at = Some(ctx.now());
            ctx.finish();
            return;
        }
        self.init_from_slot();
        self.post_recvs(ctx);
        self.advance(ctx);
    }

    fn on_completion(&mut self, ctx: &mut dyn ProgramCtx, completion: Completion) {
        match completion {
            Completion::RecvDone { data, tag, .. } => {
                let seg = tag as u64;
                if let (Some((op, dtype)), Some(operand)) = (self.real, data.bytes()) {
                    adapt_mpi::combine(
                        op,
                        dtype,
                        self.acc[seg as usize].as_mut().expect("acc"),
                        operand,
                    );
                }
                self.arrived[seg as usize] += 1;
            }
            Completion::ComputeDone { .. } => {
                self.folds_pending -= 1;
                self.folded += 1;
            }
            Completion::SendDone { .. } => {
                debug_assert!(self.sending);
                self.sending = false;
                self.current += 1;
                self.folded = 0;
                self.post_recvs(ctx);
            }
            other => panic!("waitall reduce got {other:?}"),
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapt_core::TreeKind;
    use adapt_mpi::{f64_to_bytes, World};
    use adapt_noise::ClusterNoise;
    use adapt_topology::profiles;

    #[test]
    fn waitall_bcast_delivers_data() {
        let data: Vec<u8> = (0..150_000u32).map(|i| (i % 255) as u8).collect();
        for kind in [TreeKind::Binomial, TreeKind::Chain, TreeKind::Binary] {
            let spec = WaitallBcastSpec {
                tree: Arc::new(Tree::build(kind, 10, 0)),
                msg_bytes: data.len() as u64,
                seg_size: 32 * 1024,
                data: Some(Bytes::from(data.clone())),
            };
            let world = World::cpu(profiles::minicluster(4, 1, 4), 10, ClusterNoise::silent(10));
            let res = world.run(spec.programs());
            for (r, p) in res.programs.into_iter().enumerate() {
                let any: Box<dyn std::any::Any> = p;
                let b = any.downcast::<WaitallBcast>().unwrap();
                assert_eq!(b.assembled().unwrap(), data, "rank {r} kind {kind:?}");
            }
        }
    }

    #[test]
    fn waitall_reduce_computes_sum() {
        let n = 9u32;
        let elems = 3000usize;
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| Bytes::from(f64_to_bytes(&vec![(r * r) as f64; elems])))
            .collect();
        let spec = WaitallReduceSpec {
            tree: Arc::new(Tree::build(TreeKind::Binomial, n, 0)),
            msg_bytes: (elems * 8) as u64,
            seg_size: 8 * 1024,
            data: Some(crate::ReduceInputs {
                op: adapt_mpi::ReduceOp::Sum,
                dtype: adapt_mpi::DType::F64,
                contributions: Arc::new(contributions),
            }),
        };
        let world = World::cpu(profiles::minicluster(3, 1, 3), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let root = root.downcast::<WaitallReduce>().unwrap();
        let got = adapt_mpi::bytes_to_f64(&root.result().unwrap());
        let expect: f64 = (0..n as u64).map(|r| (r * r) as f64).sum();
        assert_eq!(got, vec![expect; elems]);
    }

    #[test]
    fn adapt_beats_waitall_on_heterogeneous_tree() {
        // On a topology-aware tree the Waitall fences every lane to the
        // slowest; ADAPT overlaps them (§3.2.2).
        let machine = profiles::minicluster(4, 2, 4);
        let placement = adapt_topology::Placement::block_cpu(machine.shape, 32);
        let tree = Arc::new(adapt_core::topology_aware_tree(
            &placement,
            adapt_core::TopoTreeConfig::default(),
        ));
        let msg = 4 << 20;
        let waitall = {
            let spec = WaitallBcastSpec {
                tree: tree.clone(),
                msg_bytes: msg,
                seg_size: 64 * 1024,
                data: None,
            };
            let world = World::cpu(machine.clone(), 32, ClusterNoise::silent(32));
            world.run(spec.programs()).makespan
        };
        let adapt = {
            let spec = adapt_core::BcastSpec {
                tree,
                msg_bytes: msg,
                cfg: adapt_core::AdaptConfig::default(),
                data: None,
            };
            let world = World::cpu(machine, 32, ClusterNoise::silent(32));
            world.run(spec.programs()).makespan
        };
        assert!(
            adapt.as_nanos() < waitall.as_nanos(),
            "adapt={adapt} waitall={waitall}"
        );
    }
}
