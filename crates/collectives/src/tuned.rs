//! The `tuned`-style decision function: pick algorithm and segment size
//! from message size and communicator size, as Open MPI's default
//! collective module does ("OMPI-default uses a decision tree to guide
//! collective algorithm selection", §5.2.2).
//!
//! The rules below are a simplified transcription of the fixed decision
//! rules in Open MPI 2.x's `coll_tuned`: small messages use low-latency
//! binomial trees without segmentation, mid-size messages use segmented
//! binary trees, and large messages switch to a pipelined chain — the
//! visible algorithm switch in the paper's Figure 9a.

use adapt_core::TreeKind;

/// A tuned decision: tree shape plus pipeline segment size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Tree shape to use.
    pub tree: TreeKind,
    /// Segment size (equal to the message size = no segmentation).
    pub seg_size: u64,
}

/// Decision rule for broadcast.
pub fn bcast(nranks: u32, msg_bytes: u64) -> Decision {
    let msg = msg_bytes.max(1);
    if nranks < 4 {
        return Decision {
            tree: TreeKind::Chain,
            seg_size: msg.min(128 * 1024),
        };
    }
    if msg_bytes <= 8 * 1024 {
        Decision {
            tree: TreeKind::Binomial,
            seg_size: msg,
        }
    } else if msg_bytes <= 256 * 1024 {
        Decision {
            tree: TreeKind::Binomial,
            seg_size: 32 * 1024,
        }
    } else {
        // Large messages: segmented (split-)binary tree — the visible
        // algorithm switch after 256 KB in Figure 9a, and the reason the
        // decision tree picks a non-chain shape on small GPU jobs (§5.2.2).
        Decision {
            tree: TreeKind::Binary,
            seg_size: 128 * 1024,
        }
    }
}

/// Decision rule for reduce.
pub fn reduce(nranks: u32, msg_bytes: u64) -> Decision {
    let msg = msg_bytes.max(1);
    if nranks < 4 {
        return Decision {
            tree: TreeKind::Chain,
            seg_size: msg.min(128 * 1024),
        };
    }
    if msg_bytes <= 16 * 1024 {
        Decision {
            tree: TreeKind::Binomial,
            seg_size: msg,
        }
    } else if msg_bytes <= 512 * 1024 {
        Decision {
            tree: TreeKind::Binomial,
            seg_size: 32 * 1024,
        }
    } else {
        Decision {
            tree: TreeKind::Binary,
            seg_size: 128 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcast_switches_algorithms_with_size() {
        assert_eq!(bcast(1024, 1024).tree, TreeKind::Binomial);
        assert_eq!(bcast(1024, 64 * 1024).tree, TreeKind::Binomial);
        assert_eq!(bcast(1024, 64 * 1024).seg_size, 32 * 1024);
        assert_eq!(bcast(1024, 4 << 20).tree, TreeKind::Binary);
        // No segmentation for small messages.
        assert_eq!(bcast(1024, 1024).seg_size, 1024);
    }

    #[test]
    fn reduce_switches_algorithms_with_size() {
        assert_eq!(reduce(1024, 1024).tree, TreeKind::Binomial);
        assert_eq!(reduce(1024, 64 * 1024).tree, TreeKind::Binomial);
        assert_eq!(reduce(1024, 4 << 20).tree, TreeKind::Binary);
    }

    #[test]
    fn tiny_communicators_use_chains() {
        assert_eq!(bcast(2, 4 << 20).tree, TreeKind::Chain);
        assert_eq!(reduce(3, 123).tree, TreeKind::Chain);
    }

    #[test]
    fn zero_byte_decision_is_sane() {
        assert!(bcast(64, 0).seg_size >= 1);
        assert!(reduce(64, 0).seg_size >= 1);
    }
}
