//! Property-based correctness of the baseline collective implementations:
//! whatever the tree shape, segmentation, message size, or machine shape,
//! blocking / Waitall / hierarchical engines must move the exact bytes.

use adapt_collectives::{
    BlockingBcastSpec, BlockingReduceSpec, HierBcastSpec, HierLevels, HierProgram, HierReduceSpec,
    ReduceInputs, WaitallBcastSpec, WaitallReduceSpec,
};
use adapt_core::{Tree, TreeKind};
use adapt_mpi::{bytes_to_f64, f64_to_bytes, World};
use adapt_noise::ClusterNoise;
use adapt_topology::{ClusterShape, Placement};
use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_kind() -> impl Strategy<Value = TreeKind> {
    prop_oneof![
        Just(TreeKind::Chain),
        Just(TreeKind::Binary),
        Just(TreeKind::Binomial),
        Just(TreeKind::Flat),
        (2u32..5).prop_map(TreeKind::Kary),
        (2u32..5).prop_map(TreeKind::Knomial),
    ]
}

fn machine() -> adapt_topology::MachineSpec {
    adapt_topology::profiles::minicluster(3, 2, 4)
}

fn payload(len: u64) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocking_bcast_delivers(kind in arb_kind(), n in 2u32..20, msg_kb in 1u64..32, seg_kb in 1u64..16) {
        let data = payload(msg_kb * 1024 + 7);
        let spec = BlockingBcastSpec {
            tree: Arc::new(Tree::build(kind, n, 0)),
            msg_bytes: data.len() as u64,
            seg_size: seg_kb * 1024,
            data: Some(Bytes::from(data.clone())),
        };
        let world = World::cpu(machine(), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for p in res.programs {
            let any: Box<dyn std::any::Any> = p;
            let b = any.downcast::<adapt_collectives::blocking::BlockingBcast>().unwrap();
            prop_assert_eq!(b.assembled().unwrap(), data.clone());
        }
    }

    #[test]
    fn waitall_bcast_delivers(kind in arb_kind(), n in 2u32..20, msg_kb in 1u64..32, seg_kb in 1u64..16) {
        let data = payload(msg_kb * 1024 + 3);
        let spec = WaitallBcastSpec {
            tree: Arc::new(Tree::build(kind, n, 0)),
            msg_bytes: data.len() as u64,
            seg_size: seg_kb * 1024,
            data: Some(Bytes::from(data.clone())),
        };
        let world = World::cpu(machine(), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for p in res.programs {
            let any: Box<dyn std::any::Any> = p;
            let b = any.downcast::<adapt_collectives::waitall::WaitallBcast>().unwrap();
            prop_assert_eq!(b.assembled().unwrap(), data.clone());
        }
    }

    #[test]
    fn engines_reduce_identically(kind in arb_kind(), n in 2u32..16, elems in 32usize..800, seg_kb in 1u64..8) {
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| {
                let v: Vec<f64> = (0..elems).map(|i| ((r as usize * 11 + i) % 29) as f64).collect();
                Bytes::from(f64_to_bytes(&v))
            })
            .collect();
        let expected: Vec<f64> = (0..elems)
            .map(|i| (0..n).map(|r| ((r as usize * 11 + i) % 29) as f64).sum())
            .collect();
        let msg = (elems * 8) as u64;

        // Blocking engine.
        let spec = BlockingReduceSpec {
            tree: Arc::new(Tree::build(kind, n, 0)),
            msg_bytes: msg,
            seg_size: seg_kb * 1024,
            data: Some(ReduceInputs::f64_sum(contributions.clone())),
        };
        let world = World::cpu(machine(), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let r1 = bytes_to_f64(&root.downcast::<adapt_collectives::blocking::BlockingReduce>().unwrap().result().unwrap());
        prop_assert_eq!(&r1, &expected);

        // Waitall engine.
        let spec = WaitallReduceSpec {
            tree: Arc::new(Tree::build(kind, n, 0)),
            msg_bytes: msg,
            seg_size: seg_kb * 1024,
            data: Some(ReduceInputs::f64_sum(contributions)),
        };
        let world = World::cpu(machine(), n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let r2 = bytes_to_f64(&root.downcast::<adapt_collectives::waitall::WaitallReduce>().unwrap().result().unwrap());
        prop_assert_eq!(&r2, &expected);
    }

    #[test]
    fn hierarchical_bcast_delivers_on_random_shapes(
        nodes in 1u32..4,
        sockets in 1u32..3,
        cores in 1u32..5,
        fill in 1u32..60,
        cluster in arb_kind(),
        socket_kind in arb_kind(),
        msg_kb in 1u64..24,
    ) {
        let shape = ClusterShape { nodes, sockets_per_node: sockets, cores_per_socket: cores, gpus_per_socket: 0 };
        let total = shape.total_cores();
        let n = (fill % total) + 1;
        let data = payload(msg_kb * 1024 + 11);
        let spec = HierBcastSpec {
            placement: Placement::block_cpu(shape, n),
            root: 0,
            msg_bytes: data.len() as u64,
            levels: HierLevels {
                cluster,
                node: TreeKind::Flat,
                socket: socket_kind,
                seg_size: 8 * 1024,
            },
            data: Some(Bytes::from(data.clone())),
        };
        let machine = adapt_topology::MachineSpec { shape, ..machine() };
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        for p in res.programs {
            let any: Box<dyn std::any::Any> = p;
            let h = any.downcast::<HierProgram>().unwrap();
            prop_assert_eq!(h.data().unwrap(), data.clone());
        }
    }

    #[test]
    fn hierarchical_reduce_sums_on_random_shapes(
        nodes in 1u32..4,
        sockets in 1u32..3,
        cores in 1u32..5,
        fill in 1u32..60,
        elems in 32usize..500,
    ) {
        let shape = ClusterShape { nodes, sockets_per_node: sockets, cores_per_socket: cores, gpus_per_socket: 0 };
        let total = shape.total_cores();
        let n = (fill % total) + 1;
        let contributions: Vec<Bytes> = (0..n)
            .map(|r| Bytes::from(f64_to_bytes(&vec![(r % 13) as f64; elems])))
            .collect();
        let expected: f64 = (0..n).map(|r| (r % 13) as f64).sum();
        let spec = HierReduceSpec {
            placement: Placement::block_cpu(shape, n),
            root: 0,
            msg_bytes: (elems * 8) as u64,
            levels: HierLevels::default(),
            data: Some(ReduceInputs::f64_sum(contributions)),
        };
        let machine = adapt_topology::MachineSpec { shape, ..machine() };
        let world = World::cpu(machine, n, ClusterNoise::silent(n));
        let res = world.run(spec.programs());
        let root: Box<dyn std::any::Any> = res.programs.into_iter().next().unwrap();
        let h = root.downcast::<HierProgram>().unwrap();
        prop_assert_eq!(bytes_to_f64(&h.data().unwrap()), vec![expected; elems]);
    }
}
