//! Run differencing: attribute the makespan delta between two recorded
//! runs across (layer × rank × phase) buckets with **no unexplained
//! remainder**.
//!
//! Each run's critical path tiles `[0, makespan]` exactly (see
//! [`critical_path`]), so bucketing every tile by its layer, its rank,
//! and the collective phase active at its start yields per-run bucket
//! sums that equal the makespan *by construction*. The difference of two
//! such decompositions therefore attributes 100% of the makespan delta:
//! `Σ bucket deltas == makespan_b − makespan_a`, an identity the gate
//! re-checks at runtime.

use std::collections::HashMap;

use crate::critical::{critical_path, Layer, LAYERS};
use crate::record::ObsData;

/// One attribution bucket of a run diff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffBucket {
    /// Layer charged.
    pub layer: Layer,
    /// Rank the time ran on.
    pub rank: u32,
    /// Collective phase active when the tile started (`None` outside any
    /// phase).
    pub phase: Option<u32>,
    /// Nanoseconds in run A.
    pub a_ns: u64,
    /// Nanoseconds in run B.
    pub b_ns: u64,
}

impl DiffBucket {
    /// B − A for this bucket (negative: B spends less here).
    pub fn delta_ns(&self) -> i64 {
        self.b_ns as i64 - self.a_ns as i64
    }
}

/// The full diff of two recorded runs.
#[derive(Clone, Debug, Default)]
pub struct RunDiff {
    /// Run A's makespan (ns).
    pub makespan_a_ns: u64,
    /// Run B's makespan (ns).
    pub makespan_b_ns: u64,
    /// Attribution buckets, largest absolute delta first.
    pub buckets: Vec<DiffBucket>,
}

impl RunDiff {
    /// B − A makespan delta (negative: B is faster).
    pub fn delta_ns(&self) -> i64 {
        self.makespan_b_ns as i64 - self.makespan_a_ns as i64
    }

    /// Sum of all bucket deltas — equals [`delta_ns`](Self::delta_ns)
    /// by construction (asserted by [`diff_runs`]).
    pub fn attributed_ns(&self) -> i64 {
        self.buckets.iter().map(DiffBucket::delta_ns).sum()
    }

    /// Per-layer rollup `(layer, a_ns, b_ns)`, in [`LAYERS`] order.
    pub fn by_layer(&self) -> Vec<(Layer, u64, u64)> {
        LAYERS
            .iter()
            .map(|&l| {
                let (a, b) = self
                    .buckets
                    .iter()
                    .filter(|bk| bk.layer == l)
                    .fold((0u64, 0u64), |(a, b), bk| (a + bk.a_ns, b + bk.b_ns));
                (l, a, b)
            })
            .collect()
    }

    /// Per-rank rollup `(rank, a_ns, b_ns)`, sorted by rank.
    pub fn by_rank(&self) -> Vec<(u32, u64, u64)> {
        let mut map: HashMap<u32, (u64, u64)> = HashMap::new();
        for bk in &self.buckets {
            let e = map.entry(bk.rank).or_default();
            e.0 += bk.a_ns;
            e.1 += bk.b_ns;
        }
        let mut v: Vec<(u32, u64, u64)> = map.into_iter().map(|(r, (a, b))| (r, a, b)).collect();
        v.sort_by_key(|&(r, _, _)| r);
        v
    }

    /// Per-phase rollup `(phase, a_ns, b_ns)`, sorted with `None` last.
    pub fn by_phase(&self) -> Vec<(Option<u32>, u64, u64)> {
        let mut map: HashMap<Option<u32>, (u64, u64)> = HashMap::new();
        for bk in &self.buckets {
            let e = map.entry(bk.phase).or_default();
            e.0 += bk.a_ns;
            e.1 += bk.b_ns;
        }
        let mut v: Vec<(Option<u32>, u64, u64)> =
            map.into_iter().map(|(p, (a, b))| (p, a, b)).collect();
        v.sort_by_key(|&(p, _, _)| match p {
            Some(p) => (0, p),
            None => (1, 0),
        });
        v
    }

    /// Regression check: is B's makespan more than `pct` percent worse
    /// than A's? Used by the CI gate.
    pub fn regression_pct(&self) -> f64 {
        if self.makespan_a_ns == 0 {
            return 0.0;
        }
        100.0 * (self.makespan_b_ns as f64 - self.makespan_a_ns as f64) / self.makespan_a_ns as f64
    }

    /// Machine-readable JSON for CI and tooling.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\n");
        o.push_str(&format!("\"makespan_a_ns\":{},\n", self.makespan_a_ns));
        o.push_str(&format!("\"makespan_b_ns\":{},\n", self.makespan_b_ns));
        o.push_str(&format!("\"delta_ns\":{},\n", self.delta_ns()));
        o.push_str(&format!("\"attributed_ns\":{},\n", self.attributed_ns()));
        o.push_str(&format!(
            "\"regression_pct\":{:?},\n",
            self.regression_pct()
        ));
        o.push_str("\"buckets\":[");
        for (i, bk) in self.buckets.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let phase = match bk.phase {
                Some(p) => p.to_string(),
                None => "null".into(),
            };
            o.push_str(&format!(
                "\n{{\"layer\":\"{}\",\"rank\":{},\"phase\":{},\"a_ns\":{},\"b_ns\":{},\
                 \"delta_ns\":{}}}",
                bk.layer.label(),
                bk.rank,
                phase,
                bk.a_ns,
                bk.b_ns,
                bk.delta_ns()
            ));
        }
        o.push_str("],\n\"by_layer\":[");
        let mut first = true;
        for (l, a, b) in self.by_layer() {
            if a == 0 && b == 0 {
                continue;
            }
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str(&format!(
                "\n{{\"layer\":\"{}\",\"a_ns\":{a},\"b_ns\":{b},\"delta_ns\":{}}}",
                l.label(),
                b as i64 - a as i64
            ));
        }
        o.push_str("]\n}\n");
        o
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut o = String::new();
        let us = |ns: u64| ns as f64 / 1000.0;
        o.push_str(&format!(
            "run diff: A {:.3} us -> B {:.3} us  (delta {:+.3} us, {:+.2}%)\n",
            us(self.makespan_a_ns),
            us(self.makespan_b_ns),
            self.delta_ns() as f64 / 1000.0,
            self.regression_pct()
        ));
        o.push_str("per-layer attribution (critical-path time):\n");
        for (l, a, b) in self.by_layer() {
            if a == 0 && b == 0 {
                continue;
            }
            o.push_str(&format!(
                "  {:<9} {:>12.3} -> {:>12.3} us  ({:+.3} us)\n",
                l.label(),
                us(a),
                us(b),
                (b as i64 - a as i64) as f64 / 1000.0
            ));
        }
        let ranks = self.by_rank();
        if ranks.len() > 1 {
            o.push_str("per-rank attribution:\n");
            for (r, a, b) in ranks {
                o.push_str(&format!(
                    "  rank {:<4} {:>12.3} -> {:>12.3} us  ({:+.3} us)\n",
                    r,
                    us(a),
                    us(b),
                    (b as i64 - a as i64) as f64 / 1000.0
                ));
            }
        }
        let phases = self.by_phase();
        if phases.iter().any(|&(p, _, _)| p.is_some()) {
            o.push_str("per-phase attribution:\n");
            for (p, a, b) in phases {
                let label = match p {
                    Some(p) => format!("phase {p}"),
                    None => "(no phase)".into(),
                };
                o.push_str(&format!(
                    "  {:<10} {:>12.3} -> {:>12.3} us  ({:+.3} us)\n",
                    label,
                    us(a),
                    us(b),
                    (b as i64 - a as i64) as f64 / 1000.0
                ));
            }
        }
        o.push_str("top contributing buckets:\n");
        for bk in self.buckets.iter().filter(|b| b.delta_ns() != 0).take(10) {
            let phase = match bk.phase {
                Some(p) => format!("phase {p}"),
                None => "-".into(),
            };
            o.push_str(&format!(
                "  {:<9} rank {:<4} {:<8} {:+12.3} us\n",
                bk.layer.label(),
                bk.rank,
                phase,
                bk.delta_ns() as f64 / 1000.0
            ));
        }
        let unattributed = self.delta_ns() - self.attributed_ns();
        o.push_str(&format!(
            "attributed: {} of {} ns delta ({} ns unexplained)\n",
            self.attributed_ns(),
            self.delta_ns(),
            unattributed
        ));
        o
    }
}

/// Per-rank phase intervals for bucketing: which phase is active at `t`.
struct PhaseIndex {
    /// Per rank: `(t_ns, phase_or_none)` state changes, sorted by time.
    marks: Vec<Vec<(u64, Option<u32>)>>,
}

impl PhaseIndex {
    fn build(data: &ObsData) -> PhaseIndex {
        let nranks = data.nranks.max(data.per_rank_finish_ns.len() as u32) as usize;
        let mut marks: Vec<Vec<(u64, Option<u32>)>> = vec![Vec::new(); nranks];
        let mut ordered: Vec<&crate::record::PhaseRec> = data.phases.iter().collect();
        ordered.sort_by_key(|p| (p.t_ns, !p.begin));
        for p in ordered {
            if (p.rank as usize) < nranks {
                let state = if p.begin { Some(p.phase) } else { None };
                marks[p.rank as usize].push((p.t_ns, state));
            }
        }
        PhaseIndex { marks }
    }

    fn at(&self, rank: u32, t_ns: u64) -> Option<u32> {
        let marks = self.marks.get(rank as usize)?;
        let i = marks.partition_point(|&(t, _)| t <= t_ns);
        if i == 0 {
            None
        } else {
            marks[i - 1].1
        }
    }
}

/// A diff bucket key: layer, rank, active phase.
type BucketKey = (Layer, u32, Option<u32>);

fn bucketize(data: &ObsData) -> (u64, HashMap<BucketKey, u64>) {
    let cp = critical_path(data);
    let phases = PhaseIndex::build(data);
    let mut buckets: HashMap<BucketKey, u64> = HashMap::new();
    for s in &cp.segments {
        let phase = phases.at(s.rank, s.begin_ns);
        *buckets.entry((s.layer, s.rank, phase)).or_default() += s.dur_ns();
    }
    (cp.makespan_ns, buckets)
}

/// Diff two recorded runs. The returned buckets attribute the entire
/// makespan delta: `Σ delta == makespan_b − makespan_a`, always.
pub fn diff_runs(a: &ObsData, b: &ObsData) -> RunDiff {
    let (ma, ba) = bucketize(a);
    let (mb, bb) = bucketize(b);
    let mut keys: Vec<(Layer, u32, Option<u32>)> = ba.keys().chain(bb.keys()).copied().collect();
    keys.sort_by_key(|&(l, r, p)| (l, r, p.map_or(u64::MAX, u64::from)));
    keys.dedup();
    let mut buckets: Vec<DiffBucket> = keys
        .into_iter()
        .map(|(layer, rank, phase)| DiffBucket {
            layer,
            rank,
            phase,
            a_ns: ba.get(&(layer, rank, phase)).copied().unwrap_or(0),
            b_ns: bb.get(&(layer, rank, phase)).copied().unwrap_or(0),
        })
        .collect();
    buckets.sort_by_key(|bk| std::cmp::Reverse(bk.delta_ns().unsigned_abs()));
    let diff = RunDiff {
        makespan_a_ns: ma,
        makespan_b_ns: mb,
        buckets,
    };
    debug_assert_eq!(
        diff.attributed_ns(),
        diff.delta_ns(),
        "critical-path tiling must attribute the whole delta"
    );
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DispatchSpan, PhaseRec, Trigger};

    fn run(ns: u64) -> ObsData {
        let mut d = ObsData {
            nranks: 1,
            per_rank_finish_ns: vec![ns],
            ..ObsData::default()
        };
        d.dispatches.push(DispatchSpan {
            rank: 0,
            begin_ns: 0,
            end_ns: ns,
            trigger: Trigger::Start,
        });
        d.phases.push(PhaseRec {
            rank: 0,
            phase: 0,
            begin: true,
            t_ns: 0,
        });
        d.phases.push(PhaseRec {
            rank: 0,
            phase: 0,
            begin: false,
            t_ns: ns,
        });
        d
    }

    #[test]
    fn self_diff_is_all_zero() {
        let a = run(1000);
        let d = diff_runs(&a, &a);
        assert_eq!(d.delta_ns(), 0);
        assert_eq!(d.attributed_ns(), 0);
        assert!(d.buckets.iter().all(|b| b.delta_ns() == 0));
        assert_eq!(d.regression_pct(), 0.0);
    }

    #[test]
    fn attribution_covers_the_whole_delta() {
        let a = run(1000);
        let b = run(1500);
        let d = diff_runs(&a, &b);
        assert_eq!(d.delta_ns(), 500);
        assert_eq!(d.attributed_ns(), 500);
        assert!((d.regression_pct() - 50.0).abs() < 1e-9);
        // The callback bucket carries it, inside phase 0.
        let bk = &d.buckets[0];
        assert_eq!(bk.layer, Layer::Callback);
        assert_eq!(bk.phase, Some(0));
        assert_eq!(bk.delta_ns(), 500);
    }

    #[test]
    fn json_exposes_the_gate_fields() {
        let d = diff_runs(&run(1000), &run(1100));
        let text = d.to_json();
        let doc = crate::validate::parse_json(&text).unwrap();
        assert_eq!(doc.get("delta_ns").unwrap().as_num(), Some(100.0));
        assert_eq!(doc.get("attributed_ns").unwrap().as_num(), Some(100.0));
        let pct = doc.get("regression_pct").unwrap().as_num().unwrap();
        assert!((pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn render_reports_full_attribution() {
        let d = diff_runs(&run(1000), &run(900));
        let text = d.render();
        assert!(text.contains("0 ns unexplained"), "{text}");
    }
}
