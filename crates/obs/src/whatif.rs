//! Counterfactual prediction: replay a recording under a virtual
//! intervention and predict the resulting schedule.
//!
//! The engine reconstructs the full causal event graph from an
//! [`ObsData`] recording — which dispatch launched which flow, which
//! delivery woke which handler, what each handler cost in *pure* CPU
//! work (recorded durations minus recorded preemption windows) — and
//! then re-executes that graph with the same event-queue discipline the
//! simulator uses, against a real [`Network`] rebuilt from the recorded
//! link parameters and per-rank preemption [`Schedule`]s rebuilt from
//! the recorded noise/stall windows. An [`Intervention`] perturbs the
//! inputs (drop a rank's noise, rescale a link, Coz-style virtual
//! speedup of one layer) and the replay recomputes every completion
//! time downstream.
//!
//! ## Exactness contract
//!
//! The replay is *structure-preserving*: message matching outcomes
//! (posted vs unexpected) and handler triggering are taken from the
//! recording, while all timing is recomputed. Consequences:
//!
//! * A no-op intervention reproduces the recorded schedule **exactly**
//!   (bit-equal per-rank finish times) — asserted in tests and CI.
//! * An intervention that is expressible as a real simulator
//!   configuration (noise off, link rescale, stall removal) predicts
//!   the re-run exactly as long as it does not flip a matching race
//!   (an arrival overtaking its receive posting, or vice versa) or
//!   reorder two same-instant events. When a race does flip, the
//!   prediction degrades gracefully: the error is bounded by the cost
//!   difference of the flipped protocol path (one unexpected-copy /
//!   CTS handshake), not by the makespan.
//! * Recordings that contain dropped or retransmitted flows are
//!   refused — loss recovery re-randomizes (RTO jitter), so no
//!   counterfactual replay of it can be validated. Degradation-window
//!   plans are likewise out of scope (the windows are not recorded).
//!
//! Virtual-speedup interventions ([`Intervention::ScaleLayer`]) have no
//! real-config equivalent; they answer Coz-style questions ("how much
//! faster would the run be if all `Matching` work cost 20% less?") and
//! are validated indirectly through the no-op and real-config cases.

use std::collections::HashMap;
use std::collections::VecDeque;

use adapt_faults::Schedule;
use adapt_net::{FlowId, FlowScheduler, FlowSpec, Link, LinkClass, LinkId, NetStep, Network, Path};
use adapt_sim::queue::{EventKey, EventQueue};
use adapt_sim::time::{Duration, Time};

use crate::critical::Layer;
use crate::record::{FlowClass, ObsData, ProtoKind, Trigger};

/// A virtual change to apply to a recorded run.
#[derive(Clone, Debug, PartialEq)]
pub enum Intervention {
    /// Change nothing (must predict the recording exactly).
    Noop,
    /// Remove every rank's OS-noise windows (`--noise 0`).
    NoiseOff,
    /// Remove one rank's OS-noise windows.
    RankNoiseOff(u32),
    /// Remove every injected stall window from the fault plan.
    StallsOff,
    /// Rescale every link whose label starts with `pattern` by a
    /// *speedup* factor: capacity × `factor`, latency ÷ `factor`.
    ScaleLink {
        /// Link-label prefix (e.g. `NicTx`, `Backbone`, `NicTx(3)`).
        pattern: String,
        /// Speedup (> 1 is faster, < 1 slower). Must be positive.
        factor: f64,
    },
    /// Coz-style virtual speedup: multiply every duration charged to
    /// `layer` by `factor` (< 1 is faster). `Layer::Blocked` is derived
    /// waiting time and cannot be scaled.
    ScaleLayer {
        /// The layer whose costs are scaled.
        layer: Layer,
        /// Duration multiplier (0.8 = "20% virtual speedup").
        factor: f64,
    },
}

impl Intervention {
    /// Parse an intervention spec string:
    ///
    /// * `noop`
    /// * `noise-off`
    /// * `rank-noise-off=R`
    /// * `stalls-off`
    /// * `scale-link=PATTERN:FACTOR` (speedup: cap ×F, lat ÷F)
    /// * `scale-layer=LAYER:FACTOR` (duration multiplier)
    /// * `speedup=LAYER:PERCENT` (sugar for `scale-layer=LAYER:1-P/100`)
    pub fn parse(spec: &str) -> Result<Intervention, String> {
        let spec = spec.trim();
        if let Some((key, val)) = spec.split_once('=') {
            return match key {
                "rank-noise-off" => {
                    let r: u32 = val.parse().map_err(|_| format!("bad rank in {spec:?}"))?;
                    Ok(Intervention::RankNoiseOff(r))
                }
                "scale-link" => {
                    let (pat, f) = val
                        .split_once(':')
                        .ok_or_else(|| format!("{spec:?}: want scale-link=PATTERN:FACTOR"))?;
                    let factor: f64 = f.parse().map_err(|_| format!("bad factor in {spec:?}"))?;
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(format!("{spec:?}: factor must be positive"));
                    }
                    Ok(Intervention::ScaleLink {
                        pattern: pat.to_string(),
                        factor,
                    })
                }
                "scale-layer" => {
                    let (l, f) = val
                        .split_once(':')
                        .ok_or_else(|| format!("{spec:?}: want scale-layer=LAYER:FACTOR"))?;
                    let layer = parse_layer(l)?;
                    let factor: f64 = f.parse().map_err(|_| format!("bad factor in {spec:?}"))?;
                    if !factor.is_finite() || factor < 0.0 {
                        return Err(format!("{spec:?}: factor must be non-negative"));
                    }
                    Ok(Intervention::ScaleLayer { layer, factor })
                }
                "speedup" => {
                    let (l, p) = val
                        .split_once(':')
                        .ok_or_else(|| format!("{spec:?}: want speedup=LAYER:PERCENT"))?;
                    let layer = parse_layer(l)?;
                    let pct: f64 = p.parse().map_err(|_| format!("bad percent in {spec:?}"))?;
                    if !(0.0..=100.0).contains(&pct) {
                        return Err(format!("{spec:?}: percent must be in 0..=100"));
                    }
                    Ok(Intervention::ScaleLayer {
                        layer,
                        factor: 1.0 - pct / 100.0,
                    })
                }
                _ => Err(format!("unknown intervention {spec:?}")),
            };
        }
        match spec {
            "noop" => Ok(Intervention::Noop),
            "noise-off" => Ok(Intervention::NoiseOff),
            "stalls-off" => Ok(Intervention::StallsOff),
            _ => Err(format!("unknown intervention {spec:?}")),
        }
    }

    /// Human-readable description for reports.
    pub fn describe(&self) -> String {
        match self {
            Intervention::Noop => "no-op (replay the recording unchanged)".into(),
            Intervention::NoiseOff => "remove all OS-noise windows".into(),
            Intervention::RankNoiseOff(r) => format!("remove rank {r}'s OS-noise windows"),
            Intervention::StallsOff => "remove all injected stall windows".into(),
            Intervention::ScaleLink { pattern, factor } => {
                format!("links '{pattern}*': capacity x{factor}, latency /{factor}")
            }
            Intervention::ScaleLayer { layer, factor } => {
                format!("scale {} durations x{factor}", layer.label())
            }
        }
    }
}

/// Parse a [`Layer`] from its lowercase label.
pub fn parse_layer(s: &str) -> Result<Layer, String> {
    crate::critical::LAYERS
        .iter()
        .copied()
        .find(|l| l.label() == s)
        .ok_or_else(|| format!("unknown layer {s:?}"))
}

/// What the replay predicts for an intervened run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The recording's makespan (ns).
    pub baseline_ns: u64,
    /// Predicted makespan under the intervention (ns).
    pub predicted_ns: u64,
    /// Predicted per-rank finish times (ns).
    pub per_rank_finish_ns: Vec<u64>,
}

impl Prediction {
    /// Predicted − baseline, negative for a speedup.
    pub fn delta_ns(&self) -> i64 {
        self.predicted_ns as i64 - self.baseline_ns as i64
    }

    /// Baseline / predicted (> 1 means the intervention helps).
    pub fn speedup(&self) -> f64 {
        if self.predicted_ns == 0 {
            1.0
        } else {
            self.baseline_ns as f64 / self.predicted_ns as f64
        }
    }
}

// ---------------------------------------------------------------------
// Causal-graph reconstruction
// ---------------------------------------------------------------------

/// Handler-trigger identity: mirrors [`Trigger`] as a map key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum TrigKey {
    Start,
    SendDone(u64),
    RecvDone(u64),
    ComputeDone(u64),
    CopyDone(u64),
    GpuDone(u64),
}

impl From<Trigger> for TrigKey {
    fn from(t: Trigger) -> TrigKey {
        match t {
            Trigger::Start => TrigKey::Start,
            Trigger::SendDone { msg } => TrigKey::SendDone(msg),
            Trigger::RecvDone { msg } => TrigKey::RecvDone(msg),
            Trigger::ComputeDone { token } => TrigKey::ComputeDone(token),
            Trigger::CopyDone { token } => TrigKey::CopyDone(token),
            Trigger::GpuDone { token } => TrigKey::GpuDone(token),
        }
    }
}

/// One side effect of a dispatch, at a pure-work offset from its begin.
#[derive(Clone, Debug)]
enum Act {
    /// Launch recorded flow `fi` into the network.
    Launch(usize),
    /// Zero-byte send completing locally (SendDone to self).
    LocalSendDone(u64),
    /// RecvDone becomes deliverable (posted-match copy-out finished).
    CompleteRecv(u64),
    /// Synchronous compute finished.
    ComputeDone(u64),
    /// GPU-stream enqueue: serialized on the rank's stream, runs `dur`.
    Gpu { token: u64, dur: Duration },
    /// The rank's program called finish.
    Finish,
    /// Pure scaling anchor (a cost boundary with no side effect).
    Mark,
}

/// A dispatch with its side effects at layer-scaled pure-work offsets.
#[derive(Clone, Debug, Default)]
struct DispatchPlan {
    /// `(pure offset from begin, act)`, sorted by offset.
    acts: Vec<(Duration, Act)>,
    /// Pure cost of the whole handler (busy horizon advance).
    end_off: Duration,
}

/// Replay event. Mirrors the simulator's `Ev` one-to-one so the event
/// interleaving (and the queue's `(time, seq)` total order) matches the
/// original run's.
enum REv {
    /// Network engine step for a live flow.
    Net(FlowId),
    /// A protocol/data arrival at its destination rank (recorded flow
    /// index): Eager/Rts/Cts/Rndv handling.
    Arrive(usize),
    /// A completion delivery waking a handler.
    Deliver { rank: u32, key: TrigKey },
    /// Start recorded flow `fi` now.
    Launch(usize),
}

struct QSched<'a>(&'a mut EventQueue<REv>);

impl FlowScheduler for QSched<'_> {
    fn schedule(&mut self, at: Time, flow: FlowId) -> EventKey {
        self.0.schedule(at, REv::Net(flow))
    }
    fn cancel(&mut self, key: EventKey) {
        self.0.cancel(key);
    }
}

/// Per-layer duration multipliers (identity unless `ScaleLayer`).
#[derive(Clone, Copy, Debug)]
struct Factors {
    callback: f64,
    protocol: f64,
    matching: f64,
    compute: f64,
    gpu: f64,
    copy: f64,
    network: f64,
}

impl Factors {
    fn identity() -> Factors {
        Factors {
            callback: 1.0,
            protocol: 1.0,
            matching: 1.0,
            compute: 1.0,
            gpu: 1.0,
            copy: 1.0,
            network: 1.0,
        }
    }
}

fn scale_dur(d: Duration, f: f64) -> Duration {
    if f == 1.0 {
        d
    } else {
        Duration::from_nanos((d.as_nanos() as f64 * f).round() as u64)
    }
}

/// Predict the schedule of `data`'s run under `iv`.
///
/// See the module docs for the exactness contract. Returns an error for
/// recordings the replay cannot be faithful to: pre-what-if recordings
/// (no link parameters / windows), runs with dropped or retransmitted
/// flows, or a structural divergence during replay.
pub fn predict(data: &ObsData, iv: &Intervention) -> Result<Prediction, String> {
    Replay::build(data, iv)?.run()
}

struct Replay<'a> {
    data: &'a ObsData,
    nranks: usize,
    /// Intervened per-rank preemption schedule (noise ∪ stalls, minus
    /// whatever the intervention removed).
    sched: Vec<Schedule>,
    plans: Vec<DispatchPlan>,
    /// `(rank, trigger) → dispatch indices`, in recorded order.
    fifo: HashMap<(u32, TrigKey), VecDeque<usize>>,
    /// Scaled pure durations of protocol spans, keyed by message and
    /// kind (0 = CtsSend, 1 = DataLaunch, 2 = Unexpected).
    proto: HashMap<(u64, u8), Duration>,
    /// Per-message flow indices by class.
    cts_flow: HashMap<u64, usize>,
    rndv_flow: HashMap<u64, usize>,
    net: Network,
    factors: Factors,
}

impl<'a> Replay<'a> {
    fn build(data: &'a ObsData, iv: &Intervention) -> Result<Replay<'a>, String> {
        let nranks = data.nranks as usize;
        if nranks == 0 || data.dispatches.is_empty() {
            return Err("empty recording".into());
        }
        if data.link_caps.len() != data.link_labels.len() || data.link_caps.is_empty() {
            return Err("recording lacks link parameters (made before the what-if engine?)".into());
        }
        if data.noise_windows.len() != nranks || data.stall_windows.len() != nranks {
            return Err("recording lacks per-rank preemption windows".into());
        }
        let dropped: u32 = data.msgs.iter().map(|m| m.drops).sum();
        let retrans: u32 = data.msgs.iter().map(|m| m.retransmits).sum();
        if dropped > 0 || retrans > 0 {
            return Err(format!(
                "recording contains loss recovery ({dropped} drops, {retrans} retransmits); \
                 counterfactual replay is not defined for re-randomized recovery"
            ));
        }

        let mut factors = Factors::identity();
        if let Intervention::ScaleLayer { layer, factor } = iv {
            match layer {
                Layer::Callback => factors.callback = *factor,
                Layer::Protocol => factors.protocol = *factor,
                Layer::Matching => factors.matching = *factor,
                Layer::Compute => factors.compute = *factor,
                Layer::Gpu => factors.gpu = *factor,
                Layer::Copy => factors.copy = *factor,
                Layer::Network => factors.network = *factor,
                Layer::Blocked => {
                    return Err("blocked time is derived waiting; it cannot be scaled".into())
                }
            }
        }

        // Recorded (ground-truth) preemption schedules: the union of
        // noise and stall windows reproduces the simulator's composed
        // defer/finish-work arithmetic exactly. Used to strip recorded
        // timestamps down to pure work.
        let to_sched = |wins: &[(u64, u64)]| -> Vec<(Time, Time)> {
            wins.iter().map(|&(s, e)| (Time(s), Time(e))).collect()
        };
        let mut rec_sched = Vec::with_capacity(nranks);
        let mut sched = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let noise = to_sched(&data.noise_windows[r]);
            let stalls = to_sched(&data.stall_windows[r]);
            let mut both = noise.clone();
            both.extend_from_slice(&stalls);
            rec_sched.push(Schedule::new(both));
            let kept: Vec<(Time, Time)> = match iv {
                Intervention::NoiseOff => stalls,
                Intervention::RankNoiseOff(rr) if *rr as usize == r => stalls,
                Intervention::StallsOff => noise,
                _ => {
                    sched.push(rec_sched[r].clone());
                    continue;
                }
            };
            sched.push(Schedule::new(kept));
        }

        // The network, rebuilt from recorded pristine parameters (the
        // class is diagnostics-only in the flow engine, so a placeholder
        // is fine — interventions select links by recorded label).
        let mut links = Vec::with_capacity(data.link_caps.len());
        for i in 0..data.link_caps.len() {
            let mut cap = data.link_caps[i];
            let mut lat = data.link_lat_ns[i] as f64;
            if let Intervention::ScaleLink { pattern, factor } = iv {
                if data.link_labels[i].starts_with(pattern.as_str()) {
                    cap *= factor;
                    lat /= factor;
                }
            }
            if factors.network != 1.0 {
                cap /= factors.network;
                lat *= factors.network;
            }
            links.push(Link {
                class: LinkClass::Backbone,
                capacity: cap,
                latency: Duration::from_nanos(lat.round() as u64),
            });
        }
        if let Intervention::ScaleLink { pattern, .. } = iv {
            if !data
                .link_labels
                .iter()
                .any(|l| l.starts_with(pattern.as_str()))
            {
                return Err(format!("no link label starts with {pattern:?}"));
            }
        }
        let net = Network::new(links);

        // Per-message flow indices. Duplicates mean retransmission.
        let mut eager_flow = HashMap::new();
        let mut rts_flow = HashMap::new();
        let mut cts_flow = HashMap::new();
        let mut rndv_flow = HashMap::new();
        for (fi, f) in data.flows.iter().enumerate() {
            let map = match f.class {
                FlowClass::Eager => &mut eager_flow,
                FlowClass::Rts => &mut rts_flow,
                FlowClass::Cts => &mut cts_flow,
                FlowClass::Rndv => &mut rndv_flow,
                FlowClass::Copy | FlowClass::Ack => continue,
            };
            let m = f.msg.ok_or("protocol flow without a message")?;
            if map.insert(m, fi).is_some() {
                return Err(format!(
                    "message {m} has duplicate {} flows (retransmission?)",
                    f.class.label()
                ));
            }
        }

        // Scaled pure protocol-span durations.
        let mut proto = HashMap::new();
        for p in &data.protocols {
            let pure = rec_sched[p.rank as usize].work_in(Time(p.begin_ns), Time(p.end_ns));
            let (k, f) = match p.kind {
                ProtoKind::CtsSend => (0u8, factors.protocol),
                ProtoKind::DataLaunch => (1, factors.protocol),
                ProtoKind::Unexpected => (2, factors.protocol),
            };
            proto.insert((p.msg, k), scale_dur(pure, f));
        }

        // --- Rebuild per-dispatch action lists -------------------------
        // Dispatches are serialized per rank (next begin ≥ previous end)
        // and every anchored side effect lands at finish_work(begin, c)
        // with cost c > 0, i.e. strictly inside (begin, end]. Assignment
        // by binary search over the rank's dispatch list is therefore
        // unambiguous.
        let mut by_rank: Vec<Vec<usize>> = vec![Vec::new(); nranks];
        for (di, d) in data.dispatches.iter().enumerate() {
            by_rank[d.rank as usize].push(di);
        }
        for list in &mut by_rank {
            list.sort_by_key(|&di| data.dispatches[di].begin_ns);
        }
        let assign = |rank: u32, t_ns: u64| -> Result<usize, String> {
            let list = &by_rank[rank as usize];
            // Last dispatch with begin < t.
            let i = list.partition_point(|&di| data.dispatches[di].begin_ns < t_ns);
            if i == 0 {
                return Err(format!("no dispatch on rank {rank} contains t={t_ns}ns"));
            }
            let di = list[i - 1];
            if t_ns > data.dispatches[di].end_ns {
                return Err(format!(
                    "t={t_ns}ns on rank {rank} falls between dispatches"
                ));
            }
            Ok(di)
        };

        // Raw (unscaled) actions per dispatch, with the layer the cost
        // delta leading to each anchor belongs to.
        #[derive(Clone, Copy, PartialEq)]
        enum DeltaLayer {
            Callback,
            Protocol,
            Matching,
            Compute,
        }
        let mut raw: Vec<Vec<(u64, u32, DeltaLayer, Act)>> =
            vec![Vec::new(); data.dispatches.len()];
        let mut push = |di: usize, t_ns: u64, seq: u32, dl: DeltaLayer, act: Act| {
            raw[di].push((t_ns, seq, dl, act));
        };

        for (mi, m) in data.msgs.iter().enumerate() {
            let m_id = mi as u64;
            // The send side.
            let posted = m
                .posted_ns
                .ok_or_else(|| format!("message {m_id} has no posting time"))?;
            let di = assign(m.src, posted)?;
            if m.eager {
                let fi = *eager_flow
                    .get(&m_id)
                    .ok_or_else(|| format!("message {m_id}: eager flow missing"))?;
                push(di, posted, 0, DeltaLayer::Callback, Act::Launch(fi));
                if m.bytes == 0 {
                    push(
                        di,
                        posted,
                        1,
                        DeltaLayer::Callback,
                        Act::LocalSendDone(m_id),
                    );
                }
            } else {
                let fi = *rts_flow
                    .get(&m_id)
                    .ok_or_else(|| format!("message {m_id}: RTS flow missing"))?;
                push(di, posted, 0, DeltaLayer::Callback, Act::Launch(fi));
            }
            // The receive side.
            if let Some(rp) = m.recv_posted_ns {
                let di = assign(m.dst, rp)?;
                push(di, rp, 0, DeltaLayer::Callback, Act::Mark);
                if m.unexpected && m.eager {
                    // Unexpected-queue copy-out; RecvDone at its end.
                    let ready = m.recv_ready_ns.ok_or_else(|| {
                        format!("message {m_id}: unexpected eager without recv_ready")
                    })?;
                    push(di, ready, 1, DeltaLayer::Matching, Act::CompleteRecv(m_id));
                } else if m.unexpected {
                    // Pending-RTS match: CTS handshake runs inside the
                    // posting dispatch.
                    let cts = m.cts_launch_ns.ok_or_else(|| {
                        format!("message {m_id}: unexpected rendezvous without CTS launch")
                    })?;
                    let fi = *cts_flow
                        .get(&m_id)
                        .ok_or_else(|| format!("message {m_id}: CTS flow missing"))?;
                    push(di, cts, 1, DeltaLayer::Protocol, Act::Launch(fi));
                }
            }
        }
        for c in &data.computes {
            if c.gpu {
                // The stream-enqueue instant is not recorded; anchoring
                // at the recorded start is exact whenever the stream was
                // idle (the common case) and an approximation otherwise.
                let di = assign_gpu(&by_rank, data, c.rank, c.begin_ns)?;
                let dur = scale_dur(Duration::from_nanos(c.end_ns - c.begin_ns), factors.gpu);
                push(
                    di,
                    c.begin_ns.min(data.dispatches[di].end_ns),
                    0,
                    DeltaLayer::Callback,
                    Act::Gpu {
                        token: c.token,
                        dur,
                    },
                );
            } else {
                let di = assign(c.rank, c.begin_ns)?;
                push(di, c.begin_ns, 0, DeltaLayer::Callback, Act::Mark);
                push(
                    di,
                    c.end_ns,
                    1,
                    DeltaLayer::Compute,
                    Act::ComputeDone(c.token),
                );
            }
        }
        for (fi, f) in data.flows.iter().enumerate() {
            if f.class == FlowClass::Copy {
                let di = assign(f.rank, f.launch_ns)?;
                push(di, f.launch_ns, 0, DeltaLayer::Callback, Act::Launch(fi));
            }
        }
        if data.per_rank_finish_ns.len() != nranks {
            return Err("recording lacks per-rank finish times".into());
        }
        for (r, &f) in data.per_rank_finish_ns.iter().enumerate() {
            let di = assign(r as u32, f)?;
            push(di, f, 0, DeltaLayer::Callback, Act::Finish);
        }

        // Convert anchors to layer-scaled pure offsets from each
        // dispatch begin. Pure deltas between consecutive anchors are
        // scaled by the layer that caused the delta, then re-accumulated.
        let mut plans = Vec::with_capacity(data.dispatches.len());
        for (di, d) in data.dispatches.iter().enumerate() {
            let rs = &rec_sched[d.rank as usize];
            let begin = Time(d.begin_ns);
            let mut items = std::mem::take(&mut raw[di]);
            items.sort_by_key(|&(t, seq, _, _)| (t, seq));
            let mut acts = Vec::with_capacity(items.len());
            let mut prev_pure = Duration::ZERO;
            let mut prev_scaled = Duration::ZERO;
            for (t_ns, _, dl, act) in items {
                let pure = rs.work_in(begin, Time(t_ns));
                let delta =
                    Duration::from_nanos(pure.as_nanos().saturating_sub(prev_pure.as_nanos()));
                let f = match dl {
                    DeltaLayer::Callback => factors.callback,
                    DeltaLayer::Protocol => factors.protocol,
                    DeltaLayer::Matching => factors.matching,
                    DeltaLayer::Compute => factors.compute,
                };
                let scaled = prev_scaled + scale_dur(delta, f);
                prev_pure = prev_pure.max(pure);
                prev_scaled = scaled;
                acts.push((scaled, act));
            }
            let total = rs.work_in(begin, Time(d.end_ns));
            let tail = Duration::from_nanos(total.as_nanos().saturating_sub(prev_pure.as_nanos()));
            let end_off = prev_scaled + scale_dur(tail, factors.callback);
            plans.push(DispatchPlan { acts, end_off });
        }

        let mut fifo: HashMap<(u32, TrigKey), VecDeque<usize>> = HashMap::new();
        for (di, d) in data.dispatches.iter().enumerate() {
            fifo.entry((d.rank, d.trigger.into()))
                .or_default()
                .push_back(di);
        }

        Ok(Replay {
            data,
            nranks,
            sched,
            plans,
            fifo,
            proto,
            cts_flow,
            rndv_flow,
            net,
            factors,
        })
    }

    fn run(mut self) -> Result<Prediction, String> {
        let data = self.data;
        let mut q: EventQueue<REv> = EventQueue::new();
        let mut busy = vec![Time::ZERO; self.nranks];
        let mut gpu_busy = vec![Time::ZERO; self.nranks];
        let mut finished: Vec<Option<Time>> = vec![None; self.nranks];
        let mut finished_count = 0usize;
        // Network slab slot → recorded flow index.
        let mut net2rec: Vec<usize> = Vec::new();

        for r in 0..self.nranks {
            q.schedule_untracked(
                Time::ZERO,
                REv::Deliver {
                    rank: r as u32,
                    key: TrigKey::Start,
                },
            );
        }

        let cpu_ready = |sched: &[Schedule], busy: &[Time], rank: usize, t: Time| -> Time {
            sched[rank].defer(t.max(busy[rank]))
        };

        // Generous cap: structural divergence must not hang the caller.
        let max_events = 64 * (data.dispatches.len() + data.flows.len() + 16) as u64;
        let mut events = 0u64;
        while let Some((t, ev)) = q.pop() {
            events += 1;
            if events > max_events {
                return Err("replay exceeded its event budget (structural divergence?)".into());
            }
            match ev {
                REv::Net(fid) => {
                    let mut sched = QSched(&mut q);
                    let step = self.net.handle_event(t, fid, &mut sched);
                    match step {
                        NetStep::Progress => {}
                        NetStep::Drained { flow, .. } => {
                            let fi = net2rec[flow.0 as usize];
                            let f = &data.flows[fi];
                            if matches!(f.class, FlowClass::Eager | FlowClass::Rndv) {
                                let m = f.msg.expect("data flow has a message");
                                q.schedule_untracked(
                                    t,
                                    REv::Deliver {
                                        rank: data.msgs[m as usize].src,
                                        key: TrigKey::SendDone(m),
                                    },
                                );
                            }
                        }
                        NetStep::Delivered(d) => {
                            let fi = net2rec[d.flow.0 as usize];
                            let f = &data.flows[fi];
                            match f.class {
                                FlowClass::Copy => q.schedule_untracked(
                                    t,
                                    REv::Deliver {
                                        rank: f.rank,
                                        key: TrigKey::CopyDone(f.token),
                                    },
                                ),
                                _ => q.schedule_untracked(t, REv::Arrive(fi)),
                            }
                        }
                        NetStep::Dropped(_) => return Err("replayed network dropped a flow".into()),
                    }
                }
                REv::Launch(fi) => {
                    let f = &data.flows[fi];
                    let links: Vec<LinkId> = f.links.iter().map(|&l| LinkId(l)).collect();
                    let bytes = if f.class == FlowClass::Copy {
                        scale_dur(Duration::from_nanos(f.bytes), self.factors.copy).as_nanos()
                    } else {
                        f.bytes
                    };
                    let mut sched = QSched(&mut q);
                    let fid = self.net.start_flow(
                        t,
                        FlowSpec {
                            path: Path::new(&links),
                            bytes,
                            tag: 0,
                        },
                        &mut sched,
                    );
                    let slot = fid.0 as usize;
                    if net2rec.len() <= slot {
                        net2rec.resize(slot + 1, usize::MAX);
                    }
                    net2rec[slot] = fi;
                }
                REv::Arrive(fi) => {
                    let f = &data.flows[fi];
                    let m = f.msg.expect("protocol flow has a message") as usize;
                    let mr = &data.msgs[m];
                    match f.class {
                        FlowClass::Eager => {
                            let dst = mr.dst as usize;
                            if finished[dst].is_some() {
                                continue;
                            }
                            if mr.unexpected {
                                let e = cpu_ready(&self.sched, &busy, dst, t);
                                let pure = self
                                    .proto
                                    .get(&(m as u64, 2))
                                    .copied()
                                    .unwrap_or(Duration::ZERO);
                                busy[dst] = self.sched[dst].finish_work(e, pure);
                            } else {
                                q.schedule_untracked(
                                    t,
                                    REv::Deliver {
                                        rank: mr.dst,
                                        key: TrigKey::RecvDone(m as u64),
                                    },
                                );
                            }
                        }
                        FlowClass::Rts => {
                            let dst = mr.dst as usize;
                            if finished[dst].is_some() {
                                continue;
                            }
                            if mr.unexpected {
                                let e = cpu_ready(&self.sched, &busy, dst, t);
                                let pure = self
                                    .proto
                                    .get(&(m as u64, 2))
                                    .copied()
                                    .unwrap_or(Duration::ZERO);
                                busy[dst] = self.sched[dst].finish_work(e, pure);
                            } else {
                                // Posted match: CTS handshake at cpu_ready.
                                let e = cpu_ready(&self.sched, &busy, dst, t);
                                let pure = self
                                    .proto
                                    .get(&(m as u64, 0))
                                    .copied()
                                    .unwrap_or(Duration::ZERO);
                                let end = self.sched[dst].finish_work(e, pure);
                                busy[dst] = end;
                                let cfi = *self
                                    .cts_flow
                                    .get(&(m as u64))
                                    .ok_or_else(|| format!("message {m}: CTS flow missing"))?;
                                q.schedule_untracked(end, REv::Launch(cfi));
                            }
                        }
                        FlowClass::Cts => {
                            let src = mr.src as usize;
                            if finished[src].is_some() {
                                continue;
                            }
                            let ready = cpu_ready(&self.sched, &busy, src, t);
                            if ready > t {
                                q.schedule_untracked(ready, REv::Arrive(fi));
                                continue;
                            }
                            let pure = self
                                .proto
                                .get(&(m as u64, 1))
                                .copied()
                                .unwrap_or(Duration::ZERO);
                            let end = self.sched[src].finish_work(t, pure);
                            busy[src] = end;
                            let rfi = *self
                                .rndv_flow
                                .get(&(m as u64))
                                .ok_or_else(|| format!("message {m}: payload flow missing"))?;
                            q.schedule_untracked(end, REv::Launch(rfi));
                        }
                        FlowClass::Rndv => {
                            let dst = mr.dst as usize;
                            if finished[dst].is_some() {
                                continue;
                            }
                            q.schedule_untracked(
                                t,
                                REv::Deliver {
                                    rank: mr.dst,
                                    key: TrigKey::RecvDone(m as u64),
                                },
                            );
                        }
                        FlowClass::Copy | FlowClass::Ack => {
                            unreachable!("copies/acks never take the arrival path")
                        }
                    }
                }
                REv::Deliver { rank, key } => {
                    let r = rank as usize;
                    if finished[r].is_some() {
                        continue;
                    }
                    let ready = cpu_ready(&self.sched, &busy, r, t);
                    if ready > t {
                        q.schedule_untracked(ready, REv::Deliver { rank, key });
                        continue;
                    }
                    let di = self
                        .fifo
                        .get_mut(&(rank, key))
                        .and_then(|f| f.pop_front())
                        .ok_or_else(|| {
                            format!("rank {rank}: no recorded dispatch for {key:?} (divergence)")
                        })?;
                    let plan = &self.plans[di];
                    for (off, act) in &plan.acts {
                        let at = self.sched[r].finish_work(t, *off);
                        match act {
                            Act::Launch(fi) => q.schedule_untracked(at, REv::Launch(*fi)),
                            Act::LocalSendDone(m) => q.schedule_untracked(
                                at,
                                REv::Deliver {
                                    rank,
                                    key: TrigKey::SendDone(*m),
                                },
                            ),
                            Act::CompleteRecv(m) => q.schedule_untracked(
                                at,
                                REv::Deliver {
                                    rank,
                                    key: TrigKey::RecvDone(*m),
                                },
                            ),
                            Act::ComputeDone(tok) => q.schedule_untracked(
                                at,
                                REv::Deliver {
                                    rank,
                                    key: TrigKey::ComputeDone(*tok),
                                },
                            ),
                            Act::Gpu { token, dur } => {
                                let start = gpu_busy[r].max(at);
                                let done = start + *dur;
                                gpu_busy[r] = done;
                                q.schedule_untracked(
                                    done,
                                    REv::Deliver {
                                        rank,
                                        key: TrigKey::GpuDone(*token),
                                    },
                                );
                            }
                            Act::Finish => {
                                if finished[r].is_none() {
                                    finished[r] = Some(at);
                                    finished_count += 1;
                                }
                            }
                            Act::Mark => {}
                        }
                    }
                    let end = self.sched[r].finish_work(t, plan.end_off);
                    busy[r] = busy[r].max(end);
                }
            }
            if finished_count == self.nranks {
                break;
            }
        }

        if finished_count != self.nranks {
            return Err(format!(
                "replay deadlocked: {} of {} ranks finished (structural divergence)",
                finished_count, self.nranks
            ));
        }
        let per_rank: Vec<u64> = finished
            .into_iter()
            .map(|f| f.expect("all finished").as_nanos())
            .collect();
        let predicted = per_rank.iter().copied().max().unwrap_or(0);
        Ok(Prediction {
            baseline_ns: data.makespan_ns(),
            predicted_ns: predicted,
            per_rank_finish_ns: per_rank,
        })
    }
}

/// Dispatch assignment for a GPU span: the recorded begin is the stream
/// start (`max(enqueue, stream busy)`), which can postdate the enqueuing
/// dispatch. Fall back to the last dispatch beginning before it.
fn assign_gpu(
    by_rank: &[Vec<usize>],
    data: &ObsData,
    rank: u32,
    begin_ns: u64,
) -> Result<usize, String> {
    let list = &by_rank[rank as usize];
    let i = list.partition_point(|&di| data.dispatches[di].begin_ns < begin_ns);
    if i == 0 {
        return Err(format!("gpu span on rank {rank} precedes every dispatch"));
    }
    Ok(list[i - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(Intervention::parse("noop").unwrap(), Intervention::Noop);
        assert_eq!(
            Intervention::parse("noise-off").unwrap(),
            Intervention::NoiseOff
        );
        assert_eq!(
            Intervention::parse("rank-noise-off=7").unwrap(),
            Intervention::RankNoiseOff(7)
        );
        assert_eq!(
            Intervention::parse("stalls-off").unwrap(),
            Intervention::StallsOff
        );
        assert_eq!(
            Intervention::parse("scale-link=NicTx:2").unwrap(),
            Intervention::ScaleLink {
                pattern: "NicTx".into(),
                factor: 2.0
            }
        );
        match Intervention::parse("speedup=network:20").unwrap() {
            Intervention::ScaleLayer { layer, factor } => {
                assert_eq!(layer, Layer::Network);
                assert!((factor - 0.8).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Intervention::parse("bogus").is_err());
        assert!(Intervention::parse("scale-link=NicTx:-1").is_err());
        assert!(Intervention::parse("speedup=blocked:200").is_err());
    }

    #[test]
    fn refuses_pre_whatif_recordings() {
        let data = ObsData {
            nranks: 2,
            ..ObsData::default()
        };
        assert!(predict(&data, &Intervention::Noop).is_err());
    }

    #[test]
    fn blocked_layer_cannot_be_scaled() {
        let mut data = ObsData {
            nranks: 1,
            link_labels: vec!["Backbone".into()],
            link_caps: vec![1e9],
            link_lat_ns: vec![100],
            noise_windows: vec![vec![]],
            stall_windows: vec![vec![]],
            per_rank_finish_ns: vec![10],
            ..ObsData::default()
        };
        data.dispatches.push(crate::record::DispatchSpan {
            rank: 0,
            begin_ns: 0,
            end_ns: 10,
            trigger: Trigger::Start,
        });
        let err = predict(
            &data,
            &Intervention::ScaleLayer {
                layer: Layer::Blocked,
                factor: 0.5,
            },
        )
        .unwrap_err();
        assert!(err.contains("cannot be scaled"), "{err}");
    }
}
