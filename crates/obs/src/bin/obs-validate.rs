//! Validate exported observability artifacts (used by CI).
//!
//! Usage: `obs-validate <trace.json> [metrics.csv] [critical.txt]`
//!
//! Exits non-zero with a diagnostic if the Chrome trace fails to parse,
//! spans on a serial track partially overlap, async begin/end events
//! don't pair up, the metrics CSV is malformed, or the critical-path
//! report's layer percentages don't sum to 100.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.len() > 3 {
        eprintln!("usage: obs-validate <trace.json> [metrics.csv] [critical.txt]");
        return ExitCode::from(2);
    }

    let trace_path = &args[0];
    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-validate: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match adapt_obs::validate_chrome(&text) {
        Ok(s) => {
            println!(
                "{trace_path}: OK — {} events ({} complete spans on {} tracks, \
                 {} async spans, {} counters)",
                s.events, s.complete_spans, s.tracks, s.async_spans, s.counters
            );
        }
        Err(e) => {
            eprintln!("{trace_path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(csv_path) = args.get(1) {
        let text = match std::fs::read_to_string(csv_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-validate: cannot read {csv_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match adapt_obs::validate_metrics_csv(&text) {
            Ok(rows) => println!("{csv_path}: OK — {rows} metric rows"),
            Err(e) => {
                eprintln!("{csv_path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(report_path) = args.get(2) {
        let text = match std::fs::read_to_string(report_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-validate: cannot read {report_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match adapt_obs::validate_critical_report(&text) {
            Ok(sum) => println!("{report_path}: OK — layer percentages sum to {sum:.1}%"),
            Err(e) => {
                eprintln!("{report_path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
