//! Validate exported observability artifacts (used by CI).
//!
//! Usage: `obs-validate <artifact> [artifact ...]`
//!
//! Each file's kind is sniffed from its content, so the historical
//! positional form `obs-validate trace.json metrics.csv critical.txt`
//! keeps working and streaming summaries (`--summary-out`) or flight
//! dumps can be appended anywhere on the line:
//!
//! - `{"format": "adapt-obs-summary-v1"` → streaming telemetry summary
//! - `{"format": "adapt-obs-health-v1"`  → health-monitor artifact
//! - the metrics CSV header                → gauge/summary metrics CSV
//! - any other `{`                         → Chrome trace (full or flight fragment)
//! - anything else                         → critical-path report
//!
//! Exits non-zero with a diagnostic on the first invalid artifact.

use std::process::ExitCode;

/// Validate one artifact by content; `Ok` is the success line to print.
fn check(path: &str, text: &str) -> Result<String, String> {
    let head = text.trim_start();
    if head.starts_with(&format!("{{\"format\": \"{}\"", adapt_obs::SUMMARY_FORMAT)) {
        let s = adapt_obs::validate_summary(text)?;
        return Ok(format!(
            "{path}: OK — summary of {} ranks ({} msgs, {} flows, {} classes, \
             {} hot links)",
            s.ranks, s.msgs, s.flows, s.classes, s.hot_links
        ));
    }
    if head.starts_with(&format!("{{\"format\": \"{}\"", adapt_obs::HEALTH_FORMAT)) {
        let h = adapt_obs::validate_health(text)?;
        return Ok(format!(
            "{path}: OK — health of {} ranks ({} snapshots, {} alerts, {} kept)",
            h.ranks, h.snapshots, h.alerts, h.kept_alerts
        ));
    }
    if text.lines().next() == Some(adapt_obs::CSV_HEADER) {
        let rows = adapt_obs::validate_metrics_csv(text)?;
        return Ok(format!("{path}: OK — {rows} metric rows"));
    }
    if head.starts_with('{') {
        let s = adapt_obs::validate_chrome(text)?;
        return Ok(format!(
            "{path}: OK — {} events ({} complete spans on {} tracks, \
             {} async spans, {} counters)",
            s.events, s.complete_spans, s.tracks, s.async_spans, s.counters
        ));
    }
    let sum = adapt_obs::validate_critical_report(text)?;
    Ok(format!("{path}: OK — layer percentages sum to {sum:.1}%"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: obs-validate <artifact> [artifact ...]");
        return ExitCode::from(2);
    }
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-validate: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check(path, &text) {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
