//! What-if driver: counterfactual predictions, causal speedup sweeps,
//! and run differencing over exported `adapt-obs-v1` recordings.
//!
//! Usage:
//!   obs-whatif predict <rec.json> --iv SPEC [--iv SPEC ...] [--actual NS]
//!   obs-whatif sweep   <rec.json> [--pcts P1,P2,...]
//!   obs-whatif diff    <a.json> <b.json> [--json] [--gate PCT]
//!
//! Intervention SPECs (see `adapt_obs::Intervention::parse`):
//!   noop | noise-off | rank-noise-off=R | stalls-off |
//!   scale-link=PATTERN:FACTOR | scale-layer=LAYER:FACTOR | speedup=LAYER:PCT
//!
//! `diff --gate PCT` exits 1 when run B's makespan regresses more than
//! PCT percent over run A's — the CI regression gate. `predict --actual`
//! prints the predicted-vs-actual error against a ground-truth re-run.

use std::process::ExitCode;

use adapt_obs::{diff_runs, from_json, predict, render_prediction, render_validation};
use adapt_obs::{render_sweep, speedup_sweep, Intervention, ObsData};

const USAGE: &str = "usage: obs-whatif predict <rec.json> --iv SPEC [--iv SPEC ...] [--actual NS]
       obs-whatif sweep   <rec.json> [--pcts P1,P2,...]
       obs-whatif diff    <a.json> <b.json> [--json] [--gate PCT]";

fn load(path: &str) -> Result<ObsData, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_predict(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut ivs: Vec<Intervention> = Vec::new();
    let mut actual: Option<u64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iv" => {
                let spec = it.next().ok_or("--iv needs a SPEC")?;
                ivs.push(Intervention::parse(spec)?);
            }
            "--actual" => {
                let ns = it.next().ok_or("--actual needs a nanosecond count")?;
                actual = Some(ns.parse().map_err(|e| format!("--actual {ns}: {e}"))?);
            }
            _ if path.is_none() => path = Some(a.clone()),
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    let path = path.ok_or("predict needs a recording path")?;
    if ivs.is_empty() {
        ivs.push(Intervention::Noop);
    }
    let data = load(&path)?;
    for iv in &ivs {
        let p = predict(&data, iv)?;
        match actual {
            Some(ns) => print!("{}", render_validation(iv, &p, ns)),
            None => print!("{}", render_prediction(iv, &p)),
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_sweep(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut pcts = vec![5.0, 10.0, 25.0, 50.0];
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--pcts" => {
                let list = it.next().ok_or("--pcts needs a comma-separated list")?;
                pcts = list
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--pcts {s}: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            _ if path.is_none() => path = Some(a.clone()),
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    let path = path.ok_or("sweep needs a recording path")?;
    let data = load(&path)?;
    let rows = speedup_sweep(&data, &pcts);
    print!("{}", render_sweep(&data, &rows));
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut json = false;
    let mut gate: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--gate" => {
                let pct = it.next().ok_or("--gate needs a percentage")?;
                gate = Some(pct.parse().map_err(|e| format!("--gate {pct}: {e}"))?);
            }
            _ if paths.len() < 2 => paths.push(a),
            _ => return Err(format!("unexpected argument {a}")),
        }
    }
    if paths.len() != 2 {
        return Err("diff needs exactly two recording paths".into());
    }
    let a = load(paths[0])?;
    let b = load(paths[1])?;
    let d = diff_runs(&a, &b);
    if json {
        print!("{}", d.to_json());
    } else {
        print!("{}", d.render());
    }
    if let Some(pct) = gate {
        if d.regression_pct() > pct {
            eprintln!(
                "obs-whatif: REGRESSION — makespan {:.2}% worse than baseline (gate {pct}%)",
                d.regression_pct()
            );
            return Ok(ExitCode::FAILURE);
        }
        eprintln!(
            "obs-whatif: gate OK — makespan change {:+.2}% within {pct}%",
            d.regression_pct()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let out = match cmd.as_str() {
        "predict" => cmd_predict(rest),
        "sweep" => cmd_sweep(rest),
        "diff" => cmd_diff(rest),
        _ => {
            eprintln!("obs-whatif: unknown command {cmd}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match out {
        Ok(code) => code,
        Err(e) => {
            eprintln!("obs-whatif: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
