//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Layout: process 1 holds one thread track per rank, process 2 one
//! thread track per link that saw traffic. Serial CPU activity (handler
//! dispatches, protocol actions) becomes complete `"X"` events on the
//! rank tracks — they are serialized by each rank's busy horizon, so
//! they nest or tile but never overlap. Concurrent activity (message
//! lifetimes, compute/GPU work, collective phases, per-link flow
//! residency) becomes async `"b"`/`"e"` pairs keyed by `cat` + `id`.
//! Sampled gauges become `"C"` counter events.
//!
//! Timestamps are microseconds with three decimals — exactly the
//! nanosecond clock, no rounding — and events are emitted in the
//! deterministic record order, so the output is byte-identical across
//! runs of the same configuration.

use crate::record::{FlowClass, GaugeMetric, ObsData, Trigger};

/// Format a nanosecond instant as the trace's microsecond timestamp.
pub(crate) fn ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Format a gauge value: integers stay integers, fractions get a fixed
/// six decimals (both render deterministically).
pub(crate) fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Minimal JSON string escape (labels are ASCII identifiers, but stay
/// safe regardless).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

const PID_RANKS: u32 = 1;
const PID_LINKS: u32 = 2;
const PID_HEALTH: u32 = 5;

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Append one raw event object (the body without braces).
    fn ev(&mut self, body: String) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(&body);
        self.out.push('}');
    }

    fn meta_name(&mut self, which: &str, pid: u32, tid: Option<u32>, name: &str) {
        let tid_part = tid.map(|t| format!("\"tid\":{t},")).unwrap_or_default();
        self.ev(format!(
            "\"name\":\"{which}\",\"ph\":\"M\",\"pid\":{pid},{tid_part}\"args\":{{\"name\":\"{}\"}}",
            esc(name)
        ));
    }

    fn complete(
        &mut self,
        name: &str,
        cat: &str,
        tid: u32,
        begin_ns: u64,
        end_ns: u64,
        args: &str,
    ) {
        self.ev(format!(
            "\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{PID_RANKS},\
             \"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}",
            ts(begin_ns),
            ts(end_ns.saturating_sub(begin_ns)),
        ));
    }

    #[allow(clippy::too_many_arguments)] // flat event fields
    fn async_ev(
        &mut self,
        ph: char,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        id: &str,
        t_ns: u64,
        args: &str,
    ) {
        self.ev(format!(
            "\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"pid\":{pid},\
             \"tid\":{tid},\"id\":\"{id}\",\"ts\":{},\"args\":{{{args}}}",
            ts(t_ns),
        ));
    }

    fn counter(&mut self, name: &str, pid: u32, t_ns: u64, value: f64) {
        self.ev(format!(
            "\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\
             \"args\":{{\"value\":{}}}",
            ts(t_ns),
            fmt_num(value),
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Render recorded run data as a Chrome trace-event JSON document.
pub fn chrome_trace(data: &ObsData) -> String {
    let mut e = Emitter::new();

    // Track metadata. Only links that actually carried a flow (or were
    // sampled) get a track; a big machine has hundreds of idle lanes.
    e.meta_name("process_name", PID_RANKS, None, "ranks");
    e.meta_name("process_name", PID_LINKS, None, "links");
    for r in 0..data.nranks {
        e.meta_name("thread_name", PID_RANKS, Some(r), &format!("rank {r}"));
    }
    let mut used_links: Vec<u32> = data
        .flows
        .iter()
        .flat_map(|f| f.links.iter().copied())
        .chain(data.gauges.iter().filter_map(|g| {
            matches!(g.metric, GaugeMetric::LinkUtil | GaugeMetric::LinkFlows).then_some(g.index)
        }))
        .collect();
    used_links.sort_unstable();
    used_links.dedup();
    for &l in &used_links {
        let label = data
            .link_labels
            .get(l as usize)
            .map(String::as_str)
            .unwrap_or("link");
        e.meta_name("thread_name", PID_LINKS, Some(l), &format!("L{l} {label}"));
    }

    // Serial CPU activity: handler dispatches and protocol actions.
    for d in &data.dispatches {
        let args = match d.trigger {
            Trigger::Start => String::new(),
            Trigger::SendDone { msg } | Trigger::RecvDone { msg } => format!("\"msg\":{msg}"),
            Trigger::ComputeDone { token }
            | Trigger::CopyDone { token }
            | Trigger::GpuDone { token } => format!("\"token\":{token}"),
        };
        e.complete(
            d.trigger.label(),
            "dispatch",
            d.rank,
            d.begin_ns,
            d.end_ns,
            &args,
        );
    }
    for p in &data.protocols {
        e.complete(
            p.kind.label(),
            "protocol",
            p.rank,
            p.begin_ns,
            p.end_ns,
            &format!("\"msg\":{}", p.msg),
        );
    }

    // Concurrent activity: compute/GPU spans, collective phases,
    // message lifetimes.
    for (i, c) in data.computes.iter().enumerate() {
        let name = if c.gpu { "gpu" } else { "compute" };
        let id = format!("c{i}");
        let args = format!("\"token\":{}", c.token);
        e.async_ev(
            'b', name, "compute", PID_RANKS, c.rank, &id, c.begin_ns, &args,
        );
        e.async_ev('e', name, "compute", PID_RANKS, c.rank, &id, c.end_ns, "");
    }
    for p in &data.phases {
        let id = format!("p{}.{}", p.rank, p.phase);
        let name = format!("phase {}", p.phase);
        let ph = if p.begin { 'b' } else { 'e' };
        e.async_ev(ph, &name, "phase", PID_RANKS, p.rank, &id, p.t_ns, "");
    }
    for (i, m) in data.msgs.iter().enumerate() {
        let Some(posted) = m.posted_ns else { continue };
        let end = m
            .recv_ready_ns
            .or(m.delivered_ns)
            .or(m.drained_ns)
            .unwrap_or(posted);
        let id = format!("m{i}");
        let name = format!("m{i} {}->{}", m.src, m.dst);
        let args = format!(
            "\"bytes\":{},\"tag\":{},\"eager\":{}",
            m.bytes, m.tag, m.eager
        );
        e.async_ev('b', &name, "msg", PID_RANKS, m.src, &id, posted, &args);
        if let Some(t) = m.matched_ns {
            e.async_ev(
                'n',
                "matched",
                "msg",
                PID_RANKS,
                m.dst,
                &id,
                t,
                &format!("\"unexpected\":{}", m.unexpected),
            );
        }
        e.async_ev(
            'e',
            &name,
            "msg",
            PID_RANKS,
            m.src,
            &id,
            end.max(posted),
            "",
        );
    }

    // Link residency: one async span per (flow, link) on the link track.
    for (i, f) in data.flows.iter().enumerate() {
        let end = f
            .drained_ns
            .or(f.delivered_ns)
            .unwrap_or(f.launch_ns)
            .max(f.launch_ns);
        let args = format!("\"bytes\":{},\"rank\":{}", f.bytes, f.rank);
        let name = match f.class {
            FlowClass::Copy => format!("copy f{i}"),
            c => format!("{} f{i}", c.label()),
        };
        for &l in &f.links {
            let id = format!("f{i}.{l}");
            e.async_ev('b', &name, "flow", PID_LINKS, l, &id, f.launch_ns, &args);
            e.async_ev('e', &name, "flow", PID_LINKS, l, &id, end, "");
        }
    }

    // Time-series gauges as counters.
    for g in &data.gauges {
        match g.metric {
            GaugeMetric::LinkUtil | GaugeMetric::LinkFlows => {
                let name = format!("{}.L{}", g.metric.label(), g.index);
                e.counter(&name, PID_LINKS, g.t_ns, g.value);
            }
            m => e.counter(m.label(), PID_RANKS, g.t_ns, g.value),
        }
    }

    // Health-monitor alerts: zero-duration markers on a dedicated
    // process, one track per detector. Traces recorded without a
    // monitor carry no health process at all.
    if !data.alerts.is_empty() {
        e.meta_name("process_name", PID_HEALTH, None, "health alerts");
        for k in crate::monitor::AlertKind::ALL {
            e.meta_name("thread_name", PID_HEALTH, Some(k.index() as u32), k.label());
        }
        for a in &data.alerts {
            let subject = match a.kind {
                crate::monitor::AlertKind::Straggler => format!("rank {}", a.subject),
                crate::monitor::AlertKind::HotLink => {
                    let label = data
                        .link_labels
                        .get(a.subject as usize)
                        .map(String::as_str)
                        .unwrap_or("link");
                    format!("L{} {}", a.subject, crate::topo_label(label))
                }
                _ => "world".to_string(),
            };
            let name = format!("{} {subject}", a.kind.label());
            let args = format!(
                "\"subject\":{},\"value\":{},\"threshold\":{}",
                a.subject, a.value, a.threshold
            );
            e.ev(format!(
                "\"name\":\"{}\",\"cat\":\"health\",\"ph\":\"X\",\"pid\":{PID_HEALTH},\
                 \"tid\":{},\"ts\":{},\"dur\":0.000,\"args\":{{{args}}}",
                esc(&name),
                a.kind.index(),
                ts(a.t_ns),
            ));
        }
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::*;

    #[test]
    fn ts_keeps_nanosecond_precision() {
        assert_eq!(ts(0), "0.000");
        assert_eq!(ts(1), "0.001");
        assert_eq!(ts(1_234_567), "1234.567");
    }

    #[test]
    fn fmt_num_is_stable() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(0.5), "0.500000");
    }

    #[test]
    fn empty_data_renders_valid_header() {
        let data = ObsData {
            nranks: 2,
            ..ObsData::default()
        };
        let json = chrome_trace(&data);
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
        assert!(json.contains("rank 1"));
        crate::validate::validate_chrome(&json).unwrap();
    }

    #[test]
    fn spans_and_counters_round_trip_through_the_validator() {
        let mut data = ObsData {
            nranks: 1,
            link_labels: vec!["Backbone".into()],
            ..ObsData::default()
        };
        data.dispatches.push(DispatchSpan {
            rank: 0,
            begin_ns: 0,
            end_ns: 100,
            trigger: Trigger::Start,
        });
        data.protocols.push(ProtoSpan {
            rank: 0,
            begin_ns: 20,
            end_ns: 80,
            kind: ProtoKind::CtsSend,
            msg: 0,
        });
        data.flows.push(FlowRec {
            class: FlowClass::Eager,
            msg: Some(0),
            rank: 0,
            token: 0,
            bytes: 64,
            links: vec![0],
            launch_ns: 10,
            drained_ns: Some(50),
            delivered_ns: Some(60),
        });
        data.gauges.push(GaugeRec {
            t_ns: 0,
            metric: GaugeMetric::LinkUtil,
            index: 0,
            value: 0.25,
        });
        let json = chrome_trace(&data);
        let summary = crate::validate::validate_chrome(&json).unwrap();
        assert_eq!(summary.complete_spans, 2);
        assert_eq!(summary.async_spans, 1);
        assert_eq!(summary.counters, 1);
    }
}
